#!/usr/bin/env python3
"""Benchmark: compiled-tape execution vs the reference interpreter.

Evaluates one fixed, deterministic list of candidate alphas twice — once on
``AlphaEvaluator(compiled=False)`` (the per-day, per-operation interpreter
loop) and once on ``AlphaEvaluator(compiled=True)`` (the
:mod:`repro.compile` pipeline: flat tape, pre-resolved dispatch, static
hoisting and fused batched inference) — and records:

* full-evaluation throughput (train + inference) for both paths;
* **inference-stage** throughput for both paths, measured as the difference
  between a run producing the valid+test splits and a run producing none
  (training always executes), which is the stage the fused batch targets;
* a hard **parity check**: every prediction array must be bit-for-bit
  identical between the two paths (the whole design contract).

Results are written to ``benchmarks/results/BENCH_compile.json`` (the
source of truth, with a copy at the repository root — see
``benchmarks/README.md``).  ``cpu_count`` is recorded so
single-core CI numbers are interpretable; the compiled speedup is
single-process by nature and does not depend on core count.

Run with::

    python benchmarks/bench_compile.py [--programs N] [--repeats R] [--smoke]

``--smoke`` shrinks the program list and skips nothing else — CI uses it as
a fast compile-parity gate (non-zero exit on any parity violation).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))


from common import build_programs, reports_identical, write_bench_json
from repro.compile import compile_program
from repro.core import AlphaEvaluator, Dimensions
from repro.experiments.configs import SMOKE, make_taskset

#: Shared evaluator settings so both paths time identical work.
EVALUATOR_KWARGS = {"max_train_steps": SMOKE.max_train_steps}
EVALUATOR_SEED = 0
SPLITS = ("valid", "test")


def time_runs(evaluator, programs, splits, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock for running every program."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for program in programs:
            evaluator.run(program, splits=splits)
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(num_programs: int = 32, repeats: int = 3) -> dict:
    taskset = make_taskset(SMOKE, use_cache=False)
    dims = Dimensions(taskset.num_features, taskset.window)
    programs = build_programs(dims, num_programs)
    fused_eligible = sum(
        1 for program in programs if compile_program(program).fused_inference
    )

    interpreter = AlphaEvaluator(
        taskset, seed=EVALUATOR_SEED, compiled=False, **EVALUATOR_KWARGS
    )
    compiled = AlphaEvaluator(
        taskset, seed=EVALUATOR_SEED, compiled=True, **EVALUATOR_KWARGS
    )

    # ----- parity: the hard contract --------------------------------------
    parity = True
    for program in programs:
        left = interpreter.run(program, splits=SPLITS)
        right = compiled.run(program, splits=SPLITS)
        for split in SPLITS:
            parity &= left[split].tobytes() == right[split].tobytes()
        parity &= reports_identical(
            interpreter.evaluate(program).report, compiled.evaluate(program).report
        )

    # ----- timing ----------------------------------------------------------
    interp_full = time_runs(interpreter, programs, SPLITS, repeats)
    compiled_full = time_runs(compiled, programs, SPLITS, repeats)
    # Training always runs; a no-split run isolates the inference stage.
    interp_train = time_runs(interpreter, programs, (), repeats)
    compiled_train = time_runs(compiled, programs, (), repeats)
    interp_inference = max(interp_full - interp_train, 1e-9)
    compiled_inference = max(compiled_full - compiled_train, 1e-9)

    def throughput(seconds: float) -> float:
        return round(len(programs) / seconds, 3)

    payload = {
        "benchmark": "compiled-tape execution vs interpreter",
        "scale": SMOKE.name,
        "num_programs": len(programs),
        "fused_eligible_programs": fused_eligible,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "interpreter": {
            "full_seconds": round(interp_full, 4),
            "full_candidates_per_second": throughput(interp_full),
            "inference_seconds": round(interp_inference, 4),
            "inference_candidates_per_second": throughput(interp_inference),
        },
        "compiled": {
            "full_seconds": round(compiled_full, 4),
            "full_candidates_per_second": throughput(compiled_full),
            "inference_seconds": round(compiled_inference, 4),
            "inference_candidates_per_second": throughput(compiled_inference),
        },
        "full_speedup": round(interp_full / compiled_full, 3),
        "inference_speedup": round(interp_inference / compiled_inference, 3),
        "bitwise_identical_to_interpreter": parity,
    }
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--programs", type=int, default=32,
                        help="number of candidate alphas in the fixed budget")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions (best is reported)")
    parser.add_argument("--smoke", action="store_true",
                        help="small program list; used as the CI parity gate")
    args = parser.parse_args(argv)

    num_programs = 8 if args.smoke else args.programs
    repeats = 1 if args.smoke else args.repeats
    payload = run_benchmark(num_programs, repeats)
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)

    if not args.smoke:
        path = write_bench_json("compile", payload)
        print(f"\nsaved {path}")

    if not payload["bitwise_identical_to_interpreter"]:
        print("ERROR: compiled execution differs from the interpreter",
              file=sys.stderr)
        return 1
    if args.smoke:
        print("\ncompile-parity smoke check passed "
              f"({payload['num_programs']} programs, "
              f"{payload['fused_eligible_programs']} fused-eligible)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
