#!/usr/bin/env python3
"""Benchmark: the pluggable data-backend layer (repro.data.backends).

Measures what each stage of the data path costs and what the
:class:`~repro.data.FileBackend` panel cache buys, and gates the layer's
two bitwise contracts:

* **synthetic parity** — :class:`~repro.data.SyntheticBackend` produces the
  pre-backend-layer panel bit for bit (the default scenario's guarantee);
* **round-trip parity** — a synthetic panel exported to per-stock CSVs and
  loaded back through the validating :class:`~repro.data.FileBackend` is
  bitwise identical (full-precision export), so file-backed scenarios
  reproduce synthetic results exactly;
* **clean-panel identity** — loading clean data under every registered
  repair policy produces the bitwise-identical panel (repair is a no-op on
  clean inputs);
* **repair determinism** — loading a corrupted directory twice under the
  ``robust`` policy produces bitwise-identical repaired panels.

Recorded: synthetic generation and task-set build time, CSV export and
cold/warm file-load time (the warm path hits the content-signature cache),
the repaired (dirty → ``robust``) load time, weekly resample time, and the
cache speedup as the headline number.  Results land in
``benchmarks/results/BENCH_data.json`` (source of truth, with a root-level
copy — see ``benchmarks/README.md``).

Run with::

    python benchmarks/bench_data.py [--stocks K] [--days T] [--smoke]

``--smoke`` shrinks the panel but keeps both parity gates — CI uses it as
the data-layer parity check (non-zero exit on any violation).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from common import write_bench_json
from repro.data import (
    CorruptionSpec,
    FileBackend,
    MarketConfig,
    SyntheticBackend,
    SyntheticMarket,
    export_panel_csv,
    inject_corruption,
    load_csv_directory,
    panels_bitwise_equal,
    repair_policy_names,
    resample_panel,
)

SEED = 2021


def timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--stocks", type=int, default=80)
    parser.add_argument("--days", type=int, default=420)
    parser.add_argument("--smoke", action="store_true",
                        help="CI sizing; parity gates only")
    args = parser.parse_args(argv)
    if args.smoke:
        args.stocks, args.days = 30, 200

    config = MarketConfig(num_stocks=args.stocks, num_days=args.days)
    backend = SyntheticBackend(config, seed=SEED)

    panel, generate_seconds = timed(backend.load_panel)
    _, taskset_seconds = timed(lambda: backend.build_taskset())
    direct = SyntheticMarket(config, seed=SEED).generate()
    synthetic_parity = panels_bitwise_equal(panel, direct)

    weekly, weekly_seconds = timed(lambda: resample_panel(panel, "weekly"))

    with tempfile.TemporaryDirectory() as directory:
        _, export_seconds = timed(lambda: export_panel_csv(panel, directory))
        file_backend = FileBackend(
            directory, sector_map=Path(directory) / "sectors.txt"
        )
        FileBackend._CACHE.clear()
        loaded, cold_seconds = timed(file_backend.load_panel)
        _, warm_seconds = timed(file_backend.load_panel)
        roundtrip_parity = panels_bitwise_equal(loaded, panel)

        # Clean-panel identity: every registered repair policy is a no-op
        # on clean data.
        clean_identity = all(
            panels_bitwise_equal(
                load_csv_directory(directory, exclude=("sectors.txt",),
                                   repair=policy),
                loaded,
            )
            for policy in repair_policy_names()
        )

    # Repair determinism: a corrupted directory loads bitwise-identically
    # across repeated loads under the robust policy.
    with tempfile.TemporaryDirectory() as directory:
        export_panel_csv(panel, directory)
        inject_corruption(Path(directory), CorruptionSpec(events=2, seed=7),
                          exclude=("sectors.txt",))
        repaired, repaired_seconds = timed(
            lambda: load_csv_directory(directory, exclude=("sectors.txt",),
                                       repair="robust"))
        repair_determinism = panels_bitwise_equal(
            repaired,
            load_csv_directory(directory, exclude=("sectors.txt",),
                               repair="robust"),
        )

    cache_speedup = cold_seconds / max(warm_seconds, 1e-9)
    payload = {
        "benchmark": "data-backend layer: file-panel cache (warm vs cold load)",
        "num_stocks": args.stocks,
        "num_days": args.days,
        "synthetic": {
            "generate_seconds": round(generate_seconds, 4),
            "taskset_seconds": round(taskset_seconds, 4),
        },
        "file": {
            "export_seconds": round(export_seconds, 4),
            "cold_load_seconds": round(cold_seconds, 4),
            "warm_load_seconds": round(warm_seconds, 6),
            "repaired_load_seconds": round(repaired_seconds, 4),
        },
        "resample": {
            "weekly_seconds": round(weekly_seconds, 4),
            "weekly_bars": weekly.num_days,
        },
        "parity": {
            "synthetic_bitwise": synthetic_parity,
            "roundtrip_bitwise": roundtrip_parity,
            "clean_repair_identity": clean_identity,
            "repair_determinism": repair_determinism,
        },
        "speedup": round(cache_speedup, 1),
    }

    ok = (synthetic_parity and roundtrip_parity and clean_identity
          and repair_determinism)
    if args.smoke:
        print("data-parity smoke check "
              f"{'passed' if ok else 'FAILED'}: synthetic={synthetic_parity}, "
              f"roundtrip={roundtrip_parity}, "
              f"clean_repair_identity={clean_identity}, "
              f"repair_determinism={repair_determinism}")
    else:
        path = write_bench_json("data", payload)
        print(f"synthetic generate {generate_seconds:.3f}s, "
              f"taskset build {taskset_seconds:.3f}s "
              f"({args.stocks} stocks x {args.days} days)")
        print(f"CSV export {export_seconds:.3f}s, cold load {cold_seconds:.3f}s, "
              f"warm load {warm_seconds * 1e3:.2f}ms "
              f"(cache speedup {cache_speedup:.0f}x)")
        print(f"repaired load (dirty -> robust) {repaired_seconds:.3f}s")
        print(f"weekly resample {weekly_seconds:.3f}s -> {weekly.num_days} bars")
        print(f"parity: synthetic={synthetic_parity}, "
              f"roundtrip={roundtrip_parity}, "
              f"clean_repair_identity={clean_identity}, "
              f"repair_determinism={repair_determinism}")
        print(f"wrote {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
