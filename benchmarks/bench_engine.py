#!/usr/bin/env python3
"""Benchmark: the unified execution-engine layer.

Measures what the engine layer (:mod:`repro.engine`) buys on top of the
per-program execution paths it replaced, behind a **hard bitwise-parity
gate** across all five paths:

* **parity gate** — for every benchmarked program the valid/test prediction
  panels of the reference interpreter, the compiled day-loop
  (``time_batched=False``), the time-batched compiled path, a
  :class:`~repro.engine.fleet.FleetEngine` evaluation with stacking off and
  one with stacking on must be bit-for-bit identical (non-zero exit on any
  divergence);
* **fleet evaluation throughput** — evaluating an N-program fleet (with the
  duplicate rate a real mined fleet has) through one ``FleetEngine`` — one
  shared context, one data pass, canonical dedup — versus the per-program
  loop of building and running a fresh evaluator per program;
* **cross-program mega-batching** — a fleet-size scaling curve over mining
  generation snapshots (:func:`common.build_generation`): at each fleet
  size P the per-program loop, the non-stacked fleet, the stacked fleet
  (signature groups executing as one ``(P, ...)`` tape) and the stacked
  fleet with **program-axis chunking** (matrix-heavy kernels split into
  cache-resident P-chunks) are timed; the largest point is the
  ``programs_per_second_stacked`` headline and must clear a >= 3x stacked
  speedup at >= 100 unique programs post-dedup;
* **static-predict time batching** — for programs whose whole ``Predict()``
  tape is day-loop invariant, the full train+inference evaluation with the
  engine's time-batched fast path on versus off (the fast path collapses
  the training stage into one vectorised ``(T, K, ...)`` kernel call).

Results are written to ``benchmarks/results/BENCH_engine.json`` (the source
of truth, with a copy at the repository root — see ``benchmarks/README.md``).

Run with::

    python benchmarks/bench_engine.py [--programs N] [--stocks K] [--smoke]

``--smoke`` shrinks the universe and program count but keeps the full
five-way parity gate (including at least one multi-program stack group) —
CI uses it as the engine-parity gate.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from common import build_generation, build_programs, write_bench_json
from repro.core import AlphaEvaluator, Dimensions
from repro.data import MarketConfig, Split, SyntheticMarket, build_taskset
from repro.engine import FleetEngine, run_protocol

EVALUATOR_SEED = 0
SPLITS = ("valid", "test")


def build_taskset_for(num_stocks: int):
    market = SyntheticMarket(
        MarketConfig(num_stocks=num_stocks, num_days=260), seed=2021
    )
    return build_taskset(
        market.generate(), split=Split(train=136, valid=40, test=40)
    )


def make_evaluator(taskset, **kwargs) -> AlphaEvaluator:
    return AlphaEvaluator(
        taskset, seed=EVALUATOR_SEED, max_train_steps=None, **kwargs
    )


def check_parity(taskset, programs) -> tuple[bool, int, int]:
    """The hard gate: five execution paths, bitwise-identical panels.

    Returns ``(parity, num_static_predict, stack_groups)``.
    """
    interpreter = make_evaluator(taskset, engine="interpreter")
    compiled_loop = make_evaluator(taskset, time_batched=False)
    compiled_batched = make_evaluator(taskset, time_batched=True)
    fleet = FleetEngine(make_evaluator(taskset), stacked=False)
    stacked_fleet = FleetEngine(make_evaluator(taskset), stacked=True)
    for program in programs:
        fleet.add(program)
        stacked_fleet.add(program)
    fleet_runs = fleet.run(splits=SPLITS)
    stacked_runs = stacked_fleet.run(splits=SPLITS)

    parity = True
    num_static = 0
    for program in programs:
        reference = interpreter.run(program, splits=SPLITS)
        paths = {
            "compiled-loop": compiled_loop.run(program, splits=SPLITS),
            "time-batched": compiled_batched.run(program, splits=SPLITS),
            "fleet": fleet_runs[program.name],
            "stacked-fleet": stacked_runs[program.name],
        }
        if compiled_batched.make_backend(program).supports_static_predict:
            num_static += 1
        for label, predictions in paths.items():
            for split in SPLITS:
                if predictions[split].tobytes() != reference[split].tobytes():
                    print(f"PARITY VIOLATION: {program.name} on {split} "
                          f"via {label}", file=sys.stderr)
                    parity = False
    return parity, num_static, stacked_fleet.stack_groups


def bench_fleet(taskset, programs, repeats: int = 3) -> dict:
    """Fleet evaluation through the engine vs the per-program loop."""
    per_program = []
    for _ in range(repeats):
        start = time.perf_counter()
        for program in programs:
            # the pre-engine shape: one fresh evaluator per served program
            make_evaluator(taskset).evaluate(program)
        per_program.append(time.perf_counter() - start)

    fleet_seconds = []
    unique = 0
    for _ in range(repeats):
        start = time.perf_counter()
        fleet = FleetEngine(make_evaluator(taskset))
        for program in programs:
            fleet.add(program)
        fleet.evaluate()
        fleet_seconds.append(time.perf_counter() - start)
        unique = fleet.num_unique

    loop_best = min(per_program)
    fleet_best = min(fleet_seconds)
    return {
        "num_programs": len(programs),
        "unique_programs": unique,
        "per_program_loop_seconds": round(loop_best, 4),
        "fleet_engine_seconds": round(fleet_best, 4),
        "programs_per_second_loop": round(len(programs) / loop_best, 2),
        "programs_per_second_fleet": round(len(programs) / fleet_best, 2),
        "speedup": round(loop_best / fleet_best, 2),
    }


def bench_stacked_scaling(taskset, sizes=(8, 32, 128, 200),
                          repeats: int = 2, program_chunk: int = 32) -> dict:
    """Fleet-size scaling of the stacked executor over generation snapshots.

    At each size P a fresh mining-generation fleet is built and four paths
    are timed end to end: the per-program loop (fresh evaluator per member),
    the non-stacked ``FleetEngine`` (dedup + shared data pass only), the
    stacked ``FleetEngine`` (signature groups executing as ``(P, ...)``
    tapes) and the stacked fleet with an explicit ``program_chunk`` — the
    program axis of matrix-heavy kernels split into cache-resident chunks
    (before/after for the chunking knob; bitwise-identical output).  The
    largest point is the headline.
    """
    dims = Dimensions(taskset.num_features, taskset.window)
    curve = []
    for size in sizes:
        programs = build_generation(dims, size)

        loop_best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for program in programs:
                make_evaluator(taskset).evaluate(program)
            loop_best = min(loop_best, time.perf_counter() - start)

        timings = {}
        unique = stack_groups = 0
        # (stacked, program_chunk): chunk 0 disables program-axis chunking,
        # so the third run is the explicit before/after of the knob.
        for stacked, chunk in ((False, 0), (True, 0), (True, program_chunk)):
            best = float("inf")
            for _ in range(repeats):
                fleet = FleetEngine(
                    make_evaluator(taskset), stacked=stacked,
                    program_chunk=chunk,
                )
                for program in programs:
                    fleet.add(program)
                start = time.perf_counter()
                fleet.evaluate()
                best = min(best, time.perf_counter() - start)
            timings[(stacked, chunk)] = best
            if stacked and not chunk:
                unique = fleet.num_unique
                stack_groups = fleet.stack_groups
        unchunked = timings[(True, 0)]
        chunked = timings[(True, program_chunk)]
        curve.append({
            "num_programs": size,
            "unique_programs": unique,
            "stack_groups": stack_groups,
            "program_chunk": program_chunk,
            "per_program_loop_seconds": round(loop_best, 4),
            "fleet_seconds": round(timings[(False, 0)], 4),
            "stacked_fleet_seconds": round(unchunked, 4),
            "stacked_chunked_seconds": round(chunked, 4),
            "programs_per_second_loop": round(size / loop_best, 2),
            "programs_per_second_fleet": round(size / timings[(False, 0)], 2),
            "programs_per_second_stacked": round(size / unchunked, 2),
            "programs_per_second_stacked_chunked": round(size / chunked, 2),
            "stacked_speedup_vs_loop": round(loop_best / unchunked, 2),
            "stacked_speedup_vs_fleet": round(
                timings[(False, 0)] / unchunked, 2
            ),
            "chunked_speedup_vs_stacked": round(unchunked / chunked, 2),
        })
    headline = curve[-1]
    return {
        "scaling_curve": curve,
        "num_programs": headline["num_programs"],
        "unique_programs": headline["unique_programs"],
        "stack_groups": headline["stack_groups"],
        "programs_per_second_stacked": headline["programs_per_second_stacked"],
        "stacked_speedup_vs_loop": headline["stacked_speedup_vs_loop"],
        "stacked_speedup_vs_fleet": headline["stacked_speedup_vs_fleet"],
    }


def bench_static_predict(taskset, programs, repeats: int = 3) -> dict:
    """Full evaluation of static-predict programs: day loop vs time batching."""
    evaluator = make_evaluator(taskset)
    static = [
        program for program in programs
        if evaluator.make_backend(program).supports_static_predict
    ]
    if not static:
        return {"num_programs": 0}

    def run_all(time_batched: bool) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for program in static:
                run_protocol(
                    evaluator.make_backend(program),
                    taskset,
                    splits=SPLITS,
                    day_indices=evaluator.train_day_indices(),
                    time_batched=time_batched,
                )
            best = min(best, time.perf_counter() - start)
        return best

    loop_seconds = run_all(time_batched=False)
    batched_seconds = run_all(time_batched=True)
    return {
        "num_programs": len(static),
        "day_loop_seconds": round(loop_seconds, 4),
        "time_batched_seconds": round(batched_seconds, 4),
        "speedup": round(loop_seconds / batched_seconds, 1),
    }


def run_benchmark(num_programs: int = 18, num_stocks: int = 40,
                  smoke: bool = False) -> dict:
    taskset = build_taskset_for(num_stocks)
    dims = Dimensions(taskset.num_features, taskset.window)
    # max_mutations=6 over three cycling bases yields the duplicate rate a
    # mined fleet has (identical early candidates dedup canonically).
    programs = build_programs(dims, num_programs, max_mutations=6, rename=True)
    # The parity gate additionally covers a generation snapshot, so the
    # stacked path is exercised on >= 1 multi-program signature group.
    parity_programs = programs + build_generation(
        dims, 8 if smoke else 16, jitter_seed=31
    )
    seen: set[str] = set()
    parity_programs = [
        program.copy(name=f"parity_{index}")
        for index, program in enumerate(parity_programs)
    ]

    parity, num_static, parity_groups = check_parity(taskset, parity_programs)
    fleet = bench_fleet(taskset, programs)
    if smoke:
        stacked = bench_stacked_scaling(taskset, sizes=(16,), repeats=1)
    else:
        stacked = bench_stacked_scaling(taskset)
    static = bench_static_predict(taskset, programs)

    return {
        "benchmark": "unified execution engine: fleet batching, stacked "
                     "fleet kernels and static-predict time vectorization",
        "num_programs": len(programs),
        "num_stocks": taskset.num_tasks,
        "train_days": taskset.split.train,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "parity_interpreter_compiled_fleet_time_batched_stacked": bool(parity),
        "parity_programs": len(parity_programs),
        "parity_stack_groups": parity_groups,
        "static_predict_programs": num_static,
        "fleet_evaluation": fleet,
        "stacked_fleet": stacked,
        "static_predict_time_batching": static,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--programs", type=int, default=18,
                        help="number of programs in the benchmarked fleet")
    parser.add_argument("--stocks", type=int, default=40,
                        help="number of simulated stocks")
    parser.add_argument("--smoke", action="store_true",
                        help="small fleet/universe; used as the CI "
                             "engine-parity gate")
    args = parser.parse_args(argv)

    if args.smoke:
        payload = run_benchmark(num_programs=8, num_stocks=30, smoke=True)
    else:
        payload = run_benchmark(args.programs, args.stocks)
    print(json.dumps(payload, indent=2, sort_keys=True))

    if not args.smoke:
        path = write_bench_json("engine", payload)
        print(f"\nsaved {path}")

    if not payload["parity_interpreter_compiled_fleet_time_batched_stacked"]:
        print("ERROR: execution paths diverge bitwise", file=sys.stderr)
        return 1
    if payload["static_predict_programs"] < 1:
        print("ERROR: no static-predict program exercised the time-batched "
              "path", file=sys.stderr)
        return 1
    if payload["parity_stack_groups"] < 1:
        print("ERROR: no multi-program stack group exercised the stacked "
              "path", file=sys.stderr)
        return 1
    static = payload["static_predict_time_batching"]
    if not args.smoke and static.get("speedup", 0.0) < 1.5:
        print("ERROR: static-predict time batching is less than 1.5x faster "
              f"than the day loop ({static.get('speedup')}x)", file=sys.stderr)
        return 1
    stacked = payload["stacked_fleet"]
    if not args.smoke:
        if stacked["unique_programs"] < 100:
            print("ERROR: stacked headline fleet has fewer than 100 unique "
                  f"programs post-dedup ({stacked['unique_programs']})",
                  file=sys.stderr)
            return 1
        if stacked["stacked_speedup_vs_loop"] < 3.0:
            print("ERROR: stacked fleet is less than 3x faster than the "
                  f"per-program loop ({stacked['stacked_speedup_vs_loop']}x)",
                  file=sys.stderr)
            return 1
    if args.smoke:
        print("\nengine-parity smoke check passed "
              f"({payload['parity_programs']} programs, "
              f"{payload['static_predict_programs']} static-predict, "
              f"{payload['parity_stack_groups']} stack groups, "
              "5 execution paths bitwise identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
