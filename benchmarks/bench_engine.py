#!/usr/bin/env python3
"""Benchmark: the unified execution-engine layer.

Measures what the engine layer (:mod:`repro.engine`) buys on top of the
per-program execution paths it replaced, behind a **hard bitwise-parity
gate** across all four paths:

* **parity gate** — for every benchmarked program the valid/test prediction
  panels of the reference interpreter, the compiled day-loop
  (``time_batched=False``), the time-batched compiled path and a
  :class:`~repro.engine.fleet.FleetEngine` evaluation must be bit-for-bit
  identical (non-zero exit on any divergence);
* **fleet evaluation throughput** — evaluating an N-program fleet (with the
  duplicate rate a real mined fleet has) through one ``FleetEngine`` — one
  shared context, one data pass, canonical dedup — versus the per-program
  loop of building and running a fresh evaluator per program;
* **static-predict time batching** — for programs whose whole ``Predict()``
  tape is day-loop invariant, the full train+inference evaluation with the
  engine's time-batched fast path on versus off (the fast path collapses
  the training stage into one vectorised ``(T, K, ...)`` kernel call).

Results are written to ``benchmarks/results/BENCH_engine.json`` (the source
of truth, with a copy at the repository root — see ``benchmarks/README.md``).

Run with::

    python benchmarks/bench_engine.py [--programs N] [--stocks K] [--smoke]

``--smoke`` shrinks the universe and program count but keeps the full
four-way parity gate — CI uses it as the engine-parity gate.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from common import build_programs, write_bench_json
from repro.core import AlphaEvaluator, Dimensions
from repro.data import MarketConfig, Split, SyntheticMarket, build_taskset
from repro.engine import FleetEngine, run_protocol

EVALUATOR_SEED = 0
SPLITS = ("valid", "test")


def build_taskset_for(num_stocks: int):
    market = SyntheticMarket(
        MarketConfig(num_stocks=num_stocks, num_days=260), seed=2021
    )
    return build_taskset(
        market.generate(), split=Split(train=136, valid=40, test=40)
    )


def make_evaluator(taskset, **kwargs) -> AlphaEvaluator:
    return AlphaEvaluator(
        taskset, seed=EVALUATOR_SEED, max_train_steps=None, **kwargs
    )


def check_parity(taskset, programs) -> tuple[bool, int]:
    """The hard gate: four execution paths, bitwise-identical panels.

    Returns ``(parity, num_static_predict)``.
    """
    interpreter = make_evaluator(taskset, engine="interpreter")
    compiled_loop = make_evaluator(taskset, time_batched=False)
    compiled_batched = make_evaluator(taskset, time_batched=True)
    fleet = FleetEngine(make_evaluator(taskset))
    for program in programs:
        fleet.add(program)
    fleet_runs = fleet.run(splits=SPLITS)

    parity = True
    num_static = 0
    for program in programs:
        reference = interpreter.run(program, splits=SPLITS)
        paths = {
            "compiled-loop": compiled_loop.run(program, splits=SPLITS),
            "time-batched": compiled_batched.run(program, splits=SPLITS),
            "fleet": fleet_runs[program.name],
        }
        if compiled_batched.make_backend(program).supports_static_predict:
            num_static += 1
        for label, predictions in paths.items():
            for split in SPLITS:
                if predictions[split].tobytes() != reference[split].tobytes():
                    print(f"PARITY VIOLATION: {program.name} on {split} "
                          f"via {label}", file=sys.stderr)
                    parity = False
    return parity, num_static


def bench_fleet(taskset, programs, repeats: int = 3) -> dict:
    """Fleet evaluation through the engine vs the per-program loop."""
    per_program = []
    for _ in range(repeats):
        start = time.perf_counter()
        for program in programs:
            # the pre-engine shape: one fresh evaluator per served program
            make_evaluator(taskset).evaluate(program)
        per_program.append(time.perf_counter() - start)

    fleet_seconds = []
    unique = 0
    for _ in range(repeats):
        start = time.perf_counter()
        fleet = FleetEngine(make_evaluator(taskset))
        for program in programs:
            fleet.add(program)
        fleet.evaluate()
        fleet_seconds.append(time.perf_counter() - start)
        unique = fleet.num_unique

    loop_best = min(per_program)
    fleet_best = min(fleet_seconds)
    return {
        "num_programs": len(programs),
        "unique_programs": unique,
        "per_program_loop_seconds": round(loop_best, 4),
        "fleet_engine_seconds": round(fleet_best, 4),
        "programs_per_second_loop": round(len(programs) / loop_best, 2),
        "programs_per_second_fleet": round(len(programs) / fleet_best, 2),
        "speedup": round(loop_best / fleet_best, 2),
    }


def bench_static_predict(taskset, programs, repeats: int = 3) -> dict:
    """Full evaluation of static-predict programs: day loop vs time batching."""
    evaluator = make_evaluator(taskset)
    static = [
        program for program in programs
        if evaluator.make_backend(program).supports_static_predict
    ]
    if not static:
        return {"num_programs": 0}

    def run_all(time_batched: bool) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for program in static:
                run_protocol(
                    evaluator.make_backend(program),
                    taskset,
                    splits=SPLITS,
                    day_indices=evaluator.train_day_indices(),
                    time_batched=time_batched,
                )
            best = min(best, time.perf_counter() - start)
        return best

    loop_seconds = run_all(time_batched=False)
    batched_seconds = run_all(time_batched=True)
    return {
        "num_programs": len(static),
        "day_loop_seconds": round(loop_seconds, 4),
        "time_batched_seconds": round(batched_seconds, 4),
        "speedup": round(loop_seconds / batched_seconds, 1),
    }


def run_benchmark(num_programs: int = 18, num_stocks: int = 40) -> dict:
    taskset = build_taskset_for(num_stocks)
    dims = Dimensions(taskset.num_features, taskset.window)
    # max_mutations=6 over three cycling bases yields the duplicate rate a
    # mined fleet has (identical early candidates dedup canonically).
    programs = build_programs(dims, num_programs, max_mutations=6, rename=True)

    parity, num_static = check_parity(taskset, programs)
    fleet = bench_fleet(taskset, programs)
    static = bench_static_predict(taskset, programs)

    return {
        "benchmark": "unified execution engine: fleet batching and "
                     "static-predict time vectorization",
        "num_programs": len(programs),
        "num_stocks": taskset.num_tasks,
        "train_days": taskset.split.train,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "parity_interpreter_compiled_fleet_time_batched": bool(parity),
        "static_predict_programs": num_static,
        "fleet_evaluation": fleet,
        "static_predict_time_batching": static,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--programs", type=int, default=18,
                        help="number of programs in the benchmarked fleet")
    parser.add_argument("--stocks", type=int, default=40,
                        help="number of simulated stocks")
    parser.add_argument("--smoke", action="store_true",
                        help="small fleet/universe; used as the CI "
                             "engine-parity gate")
    args = parser.parse_args(argv)

    if args.smoke:
        payload = run_benchmark(num_programs=8, num_stocks=30)
    else:
        payload = run_benchmark(args.programs, args.stocks)
    print(json.dumps(payload, indent=2, sort_keys=True))

    if not args.smoke:
        path = write_bench_json("engine", payload)
        print(f"\nsaved {path}")

    if not payload["parity_interpreter_compiled_fleet_time_batched"]:
        print("ERROR: execution paths diverge bitwise", file=sys.stderr)
        return 1
    if payload["static_predict_programs"] < 1:
        print("ERROR: no static-predict program exercised the time-batched "
              "path", file=sys.stderr)
        return 1
    static = payload["static_predict_time_batching"]
    if not args.smoke and static.get("speedup", 0.0) < 1.5:
        print("ERROR: static-predict time batching is less than 1.5x faster "
              f"than the day loop ({static.get('speedup')}x)", file=sys.stderr)
        return 1
    if args.smoke:
        print("\nengine-parity smoke check passed "
              f"({payload['num_programs']} programs, "
              f"{payload['static_predict_programs']} static-predict, "
              "4 execution paths bitwise identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
