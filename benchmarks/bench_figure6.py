"""Benchmark: Figure 6 — evolutionary trajectories (best validation IC as the
search progresses) for the best alpha of every mining round."""

from common import bench_config, report
from repro.experiments import run_figure6


def test_figure6(benchmark):
    config = bench_config()
    result = benchmark.pedantic(run_figure6, args=(config,), iterations=1, rounds=1)
    report(result, "figure6")

    assert len(result.rows) == config.num_rounds
    for row in result.rows:
        # Trajectories are monotone non-decreasing in the best fitness.
        assert row["at_100"] >= row["at_25"] - 1e-12
    # The raw series are available for plotting.
    assert all(points for points in result.metadata["series"].values())
