#!/usr/bin/env python3
"""Benchmark: telemetry overhead and observational parity.

The telemetry subsystem (:mod:`repro.obs`) promises two things, and this
benchmark turns both into gates:

* **bitwise parity** — enabling telemetry changes no prediction bit on any
  of the four execution paths (reference interpreter, compiled day-loop,
  time-batched compiled, :class:`~repro.engine.fleet.FleetEngine`): every
  benchmarked program's valid/test panels are compared byte for byte with
  telemetry off vs on (non-zero exit on any divergence);
* **disabled overhead < 5%** — the instrumented hot paths cost one boolean
  test per stage while telemetry is off.  There is no un-instrumented
  build to compare against, so the overhead is *defined* operationally:
  disabled and enabled timing samples of the compiled full-evaluation
  workload are interleaved (so machine drift hits both alike) and

      disabled_overhead_pct = (min(disabled) / min(all samples) - 1) * 100

  Minima are the standard noise-floor estimator (scheduling jitter only
  ever adds time), and since an enabled run does strictly more work,
  ``min(all samples)`` is the tightest available proxy for the
  un-instrumented baseline; the gate is ``< 5``.  ``enabled_overhead_pct``
  (same definition over the enabled samples) is reported for context but
  not gated — it includes the real cost of recording.

Results are written to ``benchmarks/results/BENCH_obs.json`` (source of
truth, with a root-level copy — see ``benchmarks/README.md``).

Run with::

    python benchmarks/bench_obs.py [--programs N] [--stocks K]
                                   [--repeats R] [--smoke]

``--smoke`` shrinks the workload but keeps both gates — CI runs it as the
telemetry-parity/overhead gate.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from common import build_programs, write_bench_json
from repro.core import AlphaEvaluator, Dimensions
from repro.data import MarketConfig, Split, SyntheticMarket, build_taskset
from repro.engine import FleetEngine
from repro.obs import TELEMETRY, telemetry_session

EVALUATOR_SEED = 0
SPLITS = ("valid", "test")


def build_taskset_for(num_stocks: int):
    market = SyntheticMarket(
        MarketConfig(num_stocks=num_stocks, num_days=260), seed=2021
    )
    return build_taskset(
        market.generate(), split=Split(train=136, valid=40, test=40)
    )


def make_evaluator(taskset, **kwargs) -> AlphaEvaluator:
    return AlphaEvaluator(
        taskset, seed=EVALUATOR_SEED, max_train_steps=None, **kwargs
    )


# ---------------------------------------------------------------------------
# parity: telemetry off vs on, all four execution paths
# ---------------------------------------------------------------------------

def _panels_all_paths(taskset, programs) -> dict[str, bytes]:
    """``"<program>/<path>/<split>"`` → prediction bytes, four paths each."""
    interpreter = make_evaluator(taskset, engine="interpreter")
    compiled_loop = make_evaluator(taskset, time_batched=False)
    compiled_batched = make_evaluator(taskset, time_batched=True)
    fleet = FleetEngine(make_evaluator(taskset))
    for program in programs:
        fleet.add(program)
    fleet_runs = fleet.run(splits=SPLITS)

    panels: dict[str, bytes] = {}
    for program in programs:
        paths = {
            "interpreter": interpreter.run(program, splits=SPLITS),
            "compiled-loop": compiled_loop.run(program, splits=SPLITS),
            "time-batched": compiled_batched.run(program, splits=SPLITS),
            "fleet": fleet_runs[program.name],
        }
        for label, predictions in paths.items():
            for split in SPLITS:
                panels[f"{program.name}/{label}/{split}"] = (
                    predictions[split].tobytes()
                )
    return panels


def check_parity(taskset, programs) -> bool:
    """The observational-parity gate: telemetry on/off, bitwise identical."""
    TELEMETRY.disable()
    disabled = _panels_all_paths(taskset, programs)
    with telemetry_session():
        enabled = _panels_all_paths(taskset, programs)
    parity = True
    for key, reference in disabled.items():
        if enabled[key] != reference:
            print(f"PARITY VIOLATION: {key} changed with telemetry enabled",
                  file=sys.stderr)
            parity = False
    return parity


# ---------------------------------------------------------------------------
# overhead: interleaved disabled/enabled timings of the compiled workload
# ---------------------------------------------------------------------------

def bench_overhead(taskset, programs, repeats: int = 7,
                   inner: int = 3) -> dict:
    """Interleaved disabled/enabled timings (see the module docstring).

    Each timed sample runs the workload ``inner`` times so one sample is
    long enough (hundreds of ms) for scheduling jitter not to dominate.
    """
    evaluator = make_evaluator(taskset, time_batched=True)

    def run_workload() -> None:
        for _ in range(inner):
            for program in programs:
                evaluator.run(program, splits=SPLITS)

    run_workload()  # warm caches outside the timed region

    disabled: list[float] = []
    enabled: list[float] = []
    for _ in range(repeats):
        TELEMETRY.disable()
        start = time.perf_counter()
        run_workload()
        disabled.append(time.perf_counter() - start)

        with telemetry_session():
            start = time.perf_counter()
            run_workload()
            enabled.append(time.perf_counter() - start)

    best = min(disabled + enabled)
    return {
        "repeats": repeats,
        "inner_iterations": inner,
        "num_programs": len(programs),
        "disabled_seconds": [round(s, 4) for s in disabled],
        "enabled_seconds": [round(s, 4) for s in enabled],
        "median_disabled_seconds": round(statistics.median(disabled), 4),
        "median_enabled_seconds": round(statistics.median(enabled), 4),
        "best_seconds": round(best, 4),
        "disabled_overhead_pct": round(
            (min(disabled) / best - 1.0) * 100.0, 2
        ),
        "enabled_overhead_pct": round(
            (min(enabled) / best - 1.0) * 100.0, 2
        ),
    }


def run_benchmark(num_programs: int = 18, num_stocks: int = 40,
                  repeats: int = 7) -> dict:
    taskset = build_taskset_for(num_stocks)
    dims = Dimensions(taskset.num_features, taskset.window)
    programs = build_programs(dims, num_programs, max_mutations=6, rename=True)

    parity = check_parity(taskset, programs)
    overhead = bench_overhead(taskset, programs, repeats=repeats)

    return {
        "benchmark": "telemetry: disabled-path overhead and on/off "
                     "bitwise parity across all four execution paths",
        "num_programs": len(programs),
        "num_stocks": taskset.num_tasks,
        "train_days": taskset.split.train,
        "parity_telemetry_on_off": bool(parity),
        "overhead": overhead,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--programs", type=int, default=18,
                        help="number of programs in the benchmarked workload")
    parser.add_argument("--stocks", type=int, default=40,
                        help="number of simulated stocks")
    parser.add_argument("--repeats", type=int, default=7,
                        help="interleaved disabled/enabled timing repeats")
    parser.add_argument("--smoke", action="store_true",
                        help="small workload; used as the CI telemetry "
                             "parity/overhead gate")
    args = parser.parse_args(argv)

    if args.smoke:
        payload = run_benchmark(num_programs=8, num_stocks=30, repeats=5)
    else:
        payload = run_benchmark(args.programs, args.stocks, args.repeats)
    print(json.dumps(payload, indent=2, sort_keys=True))

    if not args.smoke:
        path = write_bench_json("obs", payload)
        print(f"\nsaved {path}")

    if not payload["parity_telemetry_on_off"]:
        print("ERROR: enabling telemetry changed prediction bits",
              file=sys.stderr)
        return 1
    overhead = payload["overhead"]["disabled_overhead_pct"]
    if overhead >= 5.0:
        print(f"ERROR: disabled-telemetry overhead {overhead}% >= 5% "
              "(hot-path guards are supposed to cost one boolean test)",
              file=sys.stderr)
        return 1
    if args.smoke:
        print("\ntelemetry smoke check passed "
              f"({payload['num_programs']} programs, 4 execution paths "
              f"bitwise identical on/off, disabled overhead {overhead}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
