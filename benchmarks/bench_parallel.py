#!/usr/bin/env python3
"""Benchmark: parallel candidate-evaluation throughput over shared panels.

Evaluates one fixed list of candidate alphas (equal candidate budget) with
an :class:`repro.parallel.pool.EvaluationPool` at several worker counts and
records candidates/second for each, next to a pure in-process serial
baseline.  The pool publishes the task-set panel into shared memory once
(``shm_bytes``) and ships signature-grouped stacked batches to the workers.

The run also enforces the subsystem's correctness contracts:

* **parity gate** — the pool's fitness reports must be bitwise identical to
  serial ``AlphaEvaluator.evaluate`` results for every program and every
  worker count;
* **leak gate** — no ``repro-panel-*`` segment may remain in ``/dev/shm``
  after the pools close.

Results are written to ``benchmarks/results/BENCH_parallel.json`` (the
source of truth, with a copy at the repository root — see
``benchmarks/README.md``).  The headline ``speedup`` (best worker count vs
one worker) is recorded only when the machine has more than one CPU; a
1-core container records ``skipped_speedup_note`` instead, because every
worker count just time-slices the same core.

Run with::

    python benchmarks/bench_parallel.py [--programs N] [--workers 1 2 4]
    python benchmarks/bench_parallel.py --smoke   # CI gate: fast, no JSON
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))


from common import build_programs, reports_identical, write_bench_json
from repro.core import AlphaEvaluator, Dimensions
from repro.engine import stack_partition
from repro.experiments.configs import SMOKE, make_taskset
from repro.parallel import EvaluationPool, shared_segment_names

#: Evaluator settings shared by the serial baseline and every pool, so all
#: timings cover identical work and the parity check is meaningful.
EVALUATOR_KWARGS = {"max_train_steps": SMOKE.max_train_steps, "evaluate_test": False}
EVALUATOR_SEED = 0


def run_benchmark(num_programs: int = 48,
                  worker_counts: tuple[int, ...] = (1, 2, 4)) -> dict:
    """Time the fixed program list at every worker count; return the payload."""
    leaked_before = shared_segment_names()
    taskset = make_taskset(SMOKE, use_cache=False)
    dims = Dimensions(taskset.num_features, taskset.window)
    programs = build_programs(dims, num_programs)
    stack_groups = stack_partition(programs)

    serial_evaluator = AlphaEvaluator(taskset, seed=EVALUATOR_SEED, **EVALUATOR_KWARGS)
    start = time.perf_counter()
    serial_reports = [serial_evaluator.evaluate(program).report for program in programs]
    serial_seconds = time.perf_counter() - start

    workers_payload: dict[str, dict] = {}
    bitwise_identical = True
    shm_bytes = 0
    for num_workers in worker_counts:
        with EvaluationPool(
            taskset,
            num_workers=num_workers,
            evaluator_seed=EVALUATOR_SEED,
            **EVALUATOR_KWARGS,
        ) as pool:
            shm_bytes = pool.shm_bytes
            # Prime the pool so worker start-up cost is not billed to the
            # steady-state throughput measurement.
            pool.evaluate(programs[:num_workers])
            start = time.perf_counter()
            reports = pool.evaluate(programs)
            seconds = time.perf_counter() - start
        bitwise_identical &= all(
            reports_identical(got, want) for got, want in zip(reports, serial_reports)
        )
        workers_payload[str(num_workers)] = {
            "seconds": round(seconds, 4),
            "candidates_per_second": round(len(programs) / seconds, 3),
        }
        print(
            f"workers={num_workers}: {seconds:.2f}s "
            f"({len(programs) / seconds:.2f} candidates/s)"
        )

    first = str(worker_counts[0])
    best = max(
        workers_payload,
        key=lambda count: workers_payload[count]["candidates_per_second"],
    )
    payload = {
        "benchmark": "parallel candidate-evaluation throughput",
        "scale": SMOKE.name,
        "num_programs": len(programs),
        "equal_candidate_budget": True,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "shared_panel_bytes": shm_bytes,
        "stack_signature_groups": len(stack_groups),
        "serial_baseline": {
            "seconds": round(serial_seconds, 4),
            "candidates_per_second": round(len(programs) / serial_seconds, 3),
        },
        "workers": workers_payload,
        "bitwise_identical_to_serial": bitwise_identical,
        "no_leaked_segments": shared_segment_names() == leaked_before,
    }
    if os.cpu_count() == 1:
        # A speedup headline measured on one core is noise dressed up as a
        # regression: every worker count time-slices the same CPU.  Record
        # why the headline is absent instead of publishing a ~1x number.
        payload["skipped_speedup_note"] = (
            "speedup headline skipped: single-CPU machine, worker counts "
            "time-slice one core (parity gate still enforced)"
        )
    else:
        payload["speedup"] = round(
            workers_payload[best]["candidates_per_second"]
            / workers_payload[first]["candidates_per_second"],
            3,
        )
        payload["speedup_workers"] = int(best)
    return payload


def check_gates(payload: dict) -> int:
    """Exit status of the correctness gates shared by both modes."""
    status = 0
    if not payload["bitwise_identical_to_serial"]:
        print("ERROR: pool reports differ from serial evaluation", file=sys.stderr)
        status = 1
    if not payload["no_leaked_segments"]:
        print("ERROR: leaked repro-panel-* segments in /dev/shm", file=sys.stderr)
        status = 1
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--programs", type=int, default=48,
                        help="number of candidate alphas in the fixed budget")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                        help="worker counts to benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="CI parity/leak gate: a small fixed budget on "
                             "forced 1- and 2-worker pools; exits non-zero "
                             "on any gate failure and writes no JSON")
    args = parser.parse_args(argv)

    if args.smoke:
        payload = run_benchmark(num_programs=12, worker_counts=(1, 2))
        print(json.dumps(payload, indent=2, sort_keys=True))
        status = check_gates(payload)
        print("smoke gates:", "FAILED" if status else "passed")
        return status

    payload = run_benchmark(args.programs, tuple(args.workers))
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    path = write_bench_json("parallel", payload)
    print(f"\nsaved {path}")
    return check_gates(payload)


if __name__ == "__main__":
    sys.exit(main())
