#!/usr/bin/env python3
"""Benchmark: incremental streaming evaluation vs full recompute.

Serves a deterministic alpha fleet through the streaming subsystem
(:mod:`repro.stream`) over a 250-day warm history and measures what the
incremental executor buys: once an :class:`~repro.stream.server.AlphaServer`
is warm, advancing the whole fleet by one arriving day costs one
``Predict()`` tape pass per unique alpha, while the no-state alternative —
what a naive serving loop would do — recomputes the full training history
plus every inference day so far on *each* new bar.  Recorded:

* per-day bar latency (mean and p95) and alpha-days/second throughput of
  the warm server;
* the wall-clock cost of one full fleet recompute (the per-arriving-day
  cost of the naive loop), and the resulting speedup;
* the hard **parity check** via the online backtest driver: streamed
  predictions must equal the offline batch path bit for bit, and the
  online backtest metrics must equal the offline backtest of those batch
  predictions (non-zero exit on any violation).

Results are written to ``benchmarks/results/BENCH_stream.json`` (the source
of truth, with a copy at the repository root — see ``benchmarks/README.md``).

Run with::

    python benchmarks/bench_stream.py [--programs N] [--serve-days D] [--smoke]

``--smoke`` shrinks the fleet and the universe but keeps the 250-day warm
history and the full parity check — CI uses it as the stream-parity gate.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np

from common import build_programs, write_bench_json
from repro.core import AlphaEvaluator, Dimensions
from repro.data import MarketConfig, Split, SyntheticMarket, build_taskset
from repro.stream import OnlineBacktestDriver

#: Days of training history the server warms over.
WARM_DAYS = 250
EVALUATOR_SEED = 0


def build_taskset_for(num_stocks: int, serve_days: int):
    """A task set with a 250-day warm history and ``serve_days`` to stream."""
    valid = serve_days // 2
    test = serve_days - valid
    # build_taskset needs warm-up (30) + window (13) - 1 leading days, one
    # trailing day for the last label, and the split itself.
    num_days = 30 + 13 - 1 + WARM_DAYS + valid + test + 1
    market = SyntheticMarket(
        MarketConfig(num_stocks=num_stocks, num_days=num_days), seed=2021
    )
    return build_taskset(
        market.generate(), split=Split(train=WARM_DAYS, valid=valid, test=test)
    )


def run_benchmark(num_programs: int = 6, num_stocks: int = 40,
                  serve_days: int = 60) -> dict:
    taskset = build_taskset_for(num_stocks, serve_days)
    dims = Dimensions(taskset.num_features, taskset.window)
    programs = build_programs(dims, num_programs, max_mutations=4, rename=True)

    # ----- incremental serving (timed warm start + per-bar latencies) ------
    driver = OnlineBacktestDriver(
        taskset, programs, seed=EVALUATOR_SEED, max_train_steps=None,
        long_k=min(10, taskset.num_tasks // 4),
        short_k=min(10, taskset.num_tasks // 4),
    )
    warm_start = time.perf_counter()
    server = driver.build_server()
    warm_seconds = time.perf_counter() - warm_start
    served = driver.stream(server)
    latencies = np.asarray(server.bar_latencies)

    # ----- parity: streamed vs batch vs offline backtest -------------------
    # verify() reuses the streamed pass above, so the fleet is served once.
    report = driver.verify(server, served, strict_parity=False)

    # ----- full recompute: the per-arriving-day cost without carried state -
    evaluator = AlphaEvaluator(
        taskset, seed=EVALUATOR_SEED, max_train_steps=None, compiled=True
    )
    recompute_start = time.perf_counter()
    for program in programs:
        evaluator.run(program, splits=("valid", "test"))
    recompute_seconds = time.perf_counter() - recompute_start

    mean_bar = float(latencies.mean())
    stats = server.stats()
    payload = {
        "benchmark": "incremental streaming evaluation vs full recompute",
        "warm_history_days": WARM_DAYS,
        "serve_days": int(latencies.size),
        "num_stocks": taskset.num_tasks,
        "num_programs": len(programs),
        "unique_executors": server.num_unique,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "warm_start_seconds": round(warm_seconds, 4),
        "incremental": {
            "mean_bar_latency_ms": round(mean_bar * 1e3, 4),
            "p95_bar_latency_ms": round(float(np.percentile(latencies, 95)) * 1e3, 4),
            "alpha_days_per_second": round(stats["alpha_days_per_second"], 1),
        },
        "full_recompute": {
            "fleet_seconds_per_day": round(recompute_seconds, 4),
            "note": "one full train+inference pass of the whole fleet — the "
                    "cost a stateless serving loop pays on every arriving day",
        },
        "speedup_vs_full_recompute": round(recompute_seconds / mean_bar, 1),
        "parity_incremental_batch_backtest": bool(report.parity),
    }
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--programs", type=int, default=6,
                        help="number of alphas in the served fleet")
    parser.add_argument("--stocks", type=int, default=40,
                        help="number of simulated stocks")
    parser.add_argument("--serve-days", type=int, default=60,
                        help="number of streamed (valid+test) days")
    parser.add_argument("--smoke", action="store_true",
                        help="small fleet/universe; used as the CI stream-"
                             "parity gate")
    args = parser.parse_args(argv)

    if args.smoke:
        payload = run_benchmark(num_programs=3, num_stocks=30, serve_days=20)
    else:
        payload = run_benchmark(args.programs, args.stocks, args.serve_days)
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)

    if not args.smoke:
        path = write_bench_json("stream", payload)
        print(f"\nsaved {path}")

    if not payload["parity_incremental_batch_backtest"]:
        print("ERROR: streamed predictions diverge from the offline batch "
              "path", file=sys.stderr)
        return 1
    if payload["speedup_vs_full_recompute"] < 5.0:
        print("ERROR: incremental serving is less than 5x faster than full "
              f"recompute ({payload['speedup_vs_full_recompute']}x)",
              file=sys.stderr)
        return 1
    if args.smoke:
        print("\nstream-parity smoke check passed "
              f"({payload['num_programs']} programs, "
              f"{payload['speedup_vs_full_recompute']}x vs full recompute)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
