"""Benchmark: Table 1 — mining a weakly correlated alpha with an existing
domain-expert-designed alpha (alpha_D_0 vs alpha_AE_D_0 vs alpha_G_0)."""

from common import bench_config, report
from repro.experiments import run_table1


def test_table1(benchmark):
    config = bench_config()
    result = benchmark.pedantic(run_table1, args=(config,), iterations=1, rounds=1)
    report(result, "table1")

    rows = {row["alpha"]: row for row in result.rows}
    # Shape check: the evolved alpha improves on its domain-expert
    # initialisation (small tolerance: test-split ICs are noisy at this scale).
    assert rows["alpha_AE_D_0"]["ic"] >= rows["alpha_D_0"]["ic"] - 0.02
