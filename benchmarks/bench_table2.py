"""Benchmark: Table 2 — multi-round weakly correlated alpha mining,
AlphaEvolve (domain-expert initialisation) vs. the genetic-algorithm baseline."""

from common import bench_config, report
from repro.experiments import run_table2


def test_table2(benchmark):
    config = bench_config()
    result = benchmark.pedantic(run_table2, args=(config,), iterations=1, rounds=1)
    report(result, "table2")

    ae_rows = [row for row in result.rows if row["alpha"].startswith("alpha_AE")]
    gp_rows = [row for row in result.rows if row["alpha"].startswith("alpha_G")]
    assert len(ae_rows) == config.num_rounds
    assert len(gp_rows) == config.num_rounds
    # Shape check: across all rounds AlphaEvolve's average IC should hold up
    # at least as well as the genetic algorithm's under accumulating cutoffs.
    ae_mean = sum(row["ic"] for row in ae_rows) / len(ae_rows)
    gp_scores = [row["ic"] for row in gp_rows if row["ic"] is not None]
    gp_mean = sum(gp_scores) / max(len(gp_scores), 1)
    print(f"mean IC across rounds: AlphaEvolve={ae_mean:.4f}, GP={gp_mean:.4f}")
