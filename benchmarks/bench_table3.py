"""Benchmark: Table 3 — weakly correlated alpha mining across the four
initialisations (D / NOOP / R / NN) over five rounds."""

from common import bench_config, report
from repro.experiments import run_table3


def test_table3(benchmark):
    config = bench_config()
    result = benchmark.pedantic(run_table3, args=(config,), iterations=1, rounds=1)
    report(result, "table3")

    rounds = {row["round"] for row in result.rows}
    assert rounds == set(range(config.num_rounds))
    # Every round except the first must report a correlation against the
    # previously accepted best alphas.
    for row in result.rows:
        if row["round"] > 0:
            assert row["correlation"] is not None
