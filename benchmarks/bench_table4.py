"""Benchmark: Table 4 — ablation of the parameter-updating function on the
best alpha of every mining round (the ``*_P`` rows)."""

from common import bench_config, report
from repro.experiments import run_table4


def test_table4(benchmark):
    config = bench_config()
    result = benchmark.pedantic(run_table4, args=(config,), iterations=1, rounds=1)
    report(result, "table4")

    assert len(result.rows) % 2 == 0
    pairs = [(result.rows[i], result.rows[i + 1]) for i in range(0, len(result.rows), 2)]
    for base, ablated in pairs:
        assert ablated["alpha"] == base["alpha"] + "_P"
