"""Benchmark: Table 5 — comparison of AlphaEvolve alphas with the complex
machine-learning alphas (Rank_LSTM and RSR, mean ± std over seeds)."""

from common import bench_config, report
from repro.experiments import run_table5


def test_table5(benchmark):
    config = bench_config()
    result = benchmark.pedantic(run_table5, args=(config,), iterations=1, rounds=1)
    report(result, "table5")

    rows = {row["alpha"]: row for row in result.rows}
    assert set(rows) == {"alpha_AE_D_0", "alpha_AE_NN_1", "Rank_LSTM", "RSR"}
    # Shape check: the evolved alpha beats both complex machine-learning alphas
    # (small tolerance: test-split ICs are noisy at this scale).
    assert rows["alpha_AE_D_0"]["ic"] >= rows["Rank_LSTM"]["ic"] - 0.02
    assert rows["alpha_AE_D_0"]["ic"] >= rows["RSR"]["ic"] - 0.02
