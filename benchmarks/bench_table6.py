"""Benchmark: Table 6 — efficiency of the pruning technique: number of
searched alphas with and without prune-before-evaluate fingerprinting under
the same wall-clock budget."""

from common import bench_config, report
from repro.experiments import run_table6


def test_table6(benchmark):
    config = bench_config()
    result = benchmark.pedantic(run_table6, args=(config,), iterations=1, rounds=1)
    report(result, "table6")

    by_pruning = {}
    for row in result.rows:
        by_pruning.setdefault(row["alpha"].rstrip("_N"), {})[row["pruning"]] = row
    # Shape check: pruning lets the search process strictly more candidates
    # within the same time budget for every initialisation.
    for name, variants in by_pruning.items():
        assert variants[True]["searched"] > variants[False]["searched"], name
