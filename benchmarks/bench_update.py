#!/usr/bin/env python3
"""Benchmark: bounded delta-replay of point corrections vs full replay.

Serves a deterministic alpha fleet through the streaming subsystem
(:mod:`repro.stream`) over a 250-day warm history, then injects a **late
point correction** — a restated bar a few days back — and measures what the
bounded delta-replay engine buys: ``AlphaServer.correct_bar`` rewinds each
alpha to its newest clean snapshot (or spins up over its compile-time
lookback bound) and replays only the invalidated suffix, while the
alternative without carried state rebuilds the server — full warm-start
training plus re-streaming every served day of the corrected history.
Recorded, per served-history length T:

* wall-clock of the delta correction and of the full warm-start replay, and
  the resulting speedup — ~linear in T / max_lookback, since the delta path
  replays a bounded suffix while the full path replays everything;
* the hard **bitwise parity gate**: the delta-replayed suffix predictions,
  and the predictions of the days served *after* the correction, must equal
  the fully replayed server bit for bit (non-zero exit on any violation).

Results are written to ``benchmarks/results/BENCH_update.json`` (the source
of truth, with a copy at the repository root — see ``benchmarks/README.md``).

Run with::

    python benchmarks/bench_update.py [--programs N] [--stocks K] [--smoke]

``--smoke`` shrinks the universe, fleet and history but keeps the full
bitwise parity gate — CI uses it as the delta-replay parity gate.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np

from common import build_programs, write_bench_json
from repro.core import Dimensions
from repro.data import MarketConfig, Split, SyntheticMarket, build_taskset
from repro.stream import AlphaServer

#: Days of training history the servers warm over.
WARM_DAYS = 250
EVALUATOR_SEED = 0
#: Suffix length of the benchmarked correction: the restated bar sits this
#: many days before the end of the served history, so the delta path
#: replays a short, history-independent suffix while the full path grows
#: with T.  Small enough to stay inside the default unbounded-lookback
#: snapshot ring (depth 8).
SUFFIX_DAYS = 6
#: Days served *after* the correction on both servers, so the parity gate
#: covers the corrected rolling state, not just the replayed suffix.
TAIL_DAYS = 4


def build_taskset_for(num_stocks: int, serve_days: int, warm_days: int):
    """A task set with ``warm_days`` of history and ``serve_days`` to stream."""
    valid = serve_days // 2
    test = serve_days - valid
    # build_taskset needs warm-up (30) + window (13) - 1 leading days, one
    # trailing day for the last label, and the split itself.
    num_days = 30 + 13 - 1 + warm_days + valid + test + 1
    market = SyntheticMarket(
        MarketConfig(num_stocks=num_stocks, num_days=num_days), seed=2021
    )
    return build_taskset(
        market.generate(), split=Split(train=warm_days, valid=valid, test=test)
    )


def build_server(taskset, programs) -> AlphaServer:
    server = AlphaServer(taskset, seed=EVALUATOR_SEED, max_train_steps=None)
    for program in programs:
        server.register(program)
    server.warm_start()
    return server


def stream_bars(server, features, labels, start: int, stop: int) -> list:
    """Serve days ``start .. stop`` and return the per-day prediction dicts."""
    served = []
    for day in range(start, stop):
        served.append(server.on_bar(features[day]))
        server.reveal(labels[day])
    return served


def bench_history(taskset, programs, history: int) -> dict:
    """Delta vs full-replay correction at one served-history length."""
    features = np.concatenate([
        taskset.split_features("valid"), taskset.split_features("test"),
    ])
    labels = np.concatenate([
        taskset.split_labels("valid"), taskset.split_labels("test"),
    ])
    day = history - SUFFIX_DAYS
    corrected_features = np.array(features, copy=True)
    corrected_features[day] = corrected_features[day] * 1.01

    # ----- delta path: serve the history, then correct_bar ------------------
    server = build_server(taskset, programs)
    stream_bars(server, features, labels, 0, history)
    delta_start = time.perf_counter()
    delta_suffix = server.correct_bar(day, features=corrected_features[day])
    delta_seconds = time.perf_counter() - delta_start
    replayed = server.corrections[-1].replayed_days

    # ----- full path: rebuild and re-stream the corrected history ----------
    full_start = time.perf_counter()
    full = build_server(taskset, programs)
    full_served = stream_bars(full, corrected_features, labels, 0, history)
    full_seconds = time.perf_counter() - full_start

    # ----- hard bitwise parity gate ----------------------------------------
    parity = True
    names = server.names
    for offset in range(SUFFIX_DAYS):
        for name in names:
            if (delta_suffix[name][offset].tobytes()
                    != full_served[day + offset][name].tobytes()):
                parity = False
    # The corrected rolling state must also serve the future identically.
    delta_tail = stream_bars(server, corrected_features, labels,
                             history, history + TAIL_DAYS)
    full_tail = stream_bars(full, corrected_features, labels,
                            history, history + TAIL_DAYS)
    for delta_day, full_day in zip(delta_tail, full_tail):
        for name in names:
            if delta_day[name].tobytes() != full_day[name].tobytes():
                parity = False

    return {
        "history_days": history,
        "correction_day": day,
        "replayed_days": replayed,
        "delta_replay_seconds": round(delta_seconds, 5),
        "full_replay_seconds": round(full_seconds, 4),
        "speedup_vs_full_replay": round(full_seconds / delta_seconds, 1),
        "parity_delta_vs_full_replay": bool(parity),
    }


def run_benchmark(num_programs: int = 4, num_stocks: int = 40,
                  histories=(60, 120, 250), warm_days: int = WARM_DAYS) -> dict:
    taskset = build_taskset_for(
        num_stocks, max(histories) + TAIL_DAYS, warm_days
    )
    dims = Dimensions(taskset.num_features, taskset.window)
    programs = build_programs(dims, num_programs, max_mutations=4, rename=True)

    curve = [bench_history(taskset, programs, history)
             for history in histories]
    headline = curve[-1]
    return {
        "benchmark": "bounded delta-replay of point corrections vs full "
                     "warm-start replay",
        "warm_history_days": warm_days,
        "num_stocks": taskset.num_tasks,
        "num_programs": len(programs),
        "correction_suffix_days": SUFFIX_DAYS,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "speedup_curve": curve,
        "history_days": headline["history_days"],
        "speedup_vs_full_replay": headline["speedup_vs_full_replay"],
        "parity_delta_vs_full_replay": all(
            point["parity_delta_vs_full_replay"] for point in curve
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--programs", type=int, default=4,
                        help="number of alphas in the served fleet")
    parser.add_argument("--stocks", type=int, default=40,
                        help="number of simulated stocks")
    parser.add_argument("--smoke", action="store_true",
                        help="small fleet/universe/history; used as the CI "
                             "delta-replay parity gate")
    args = parser.parse_args(argv)

    if args.smoke:
        payload = run_benchmark(num_programs=3, num_stocks=20,
                                histories=(16,), warm_days=40)
    else:
        payload = run_benchmark(args.programs, args.stocks)
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)

    if not args.smoke:
        path = write_bench_json("update", payload)
        print(f"\nsaved {path}")

    if not payload["parity_delta_vs_full_replay"]:
        print("ERROR: delta-replayed corrections diverge bitwise from a "
              "full warm-start replay", file=sys.stderr)
        return 1
    if not args.smoke and payload["speedup_vs_full_replay"] < 10.0:
        print("ERROR: delta replay is less than 10x faster than a full "
              f"replay at {payload['history_days']}-day history "
              f"({payload['speedup_vs_full_replay']}x)", file=sys.stderr)
        return 1
    if args.smoke:
        print("\ndelta-replay parity smoke check passed "
              f"({payload['num_programs']} programs, "
              f"{payload['speedup_vs_full_replay']}x vs full replay)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
