"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or its figure through
:mod:`repro.experiments.runner` and prints the resulting rows next to the
paper's reference numbers, so the *shape* of the reproduction can be checked
at a glance.  Absolute values differ from the paper because the data
substrate is a synthetic market and the search budgets are laptop-scale (see
DESIGN.md section 2 and EXPERIMENTS.md).

Scale selection: set ``REPRO_BENCH_SCALE=smoke`` for a fast CI-sized run or
``REPRO_BENCH_SCALE=laptop`` (default) for the configuration used to fill
EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import numpy as np

from repro.core import Dimensions, Mutator, get_initialization
from repro.experiments import ExperimentConfig, LAPTOP, PAPER_REFERENCE, SMOKE, save_result

__all__ = [
    "bench_config",
    "build_generation",
    "build_programs",
    "report",
    "reports_identical",
    "telemetry_block",
    "write_bench_json",
]


def build_programs(dims: Dimensions, count: int, seed: int = 11,
                   max_mutations: int = 5, rename: bool = False) -> list:
    """A deterministic mixed bag of initialisation alphas and mutants.

    Shared by every benchmark that needs a fixed candidate list: bases cycle
    the D / NN / R initialisations and candidate ``i`` receives
    ``i % max_mutations`` mutations.  ``rename=True`` gives each program a
    positional name (used where programs double as serving registrations).
    """
    mutator = Mutator(dims, seed=seed)
    bases = [get_initialization(code, dims, seed=seed) for code in ("D", "NN", "R")]
    programs = []
    while len(programs) < count:
        program = bases[len(programs) % len(bases)]
        for _ in range(len(programs) % max_mutations):
            program = mutator.mutate(program)
        if rename:
            program = program.copy(name=f"alpha_{len(programs)}")
        programs.append(program)
    return programs


def build_generation(dims: Dimensions, count: int, seed: int = 11,
                     jitter_seed: int = 29) -> list:
    """A deterministic mining-generation snapshot of ``count`` candidates.

    Models what :class:`~repro.core.evolution.CandidateScorer` actually
    receives from a converged evolutionary population: a handful of
    structural ancestors (the D / NN / R initialisations plus one structural
    mutant each), a majority of **param-tweak children** — the mutator's
    params-only move resamples an operation's parameters without touching
    the tape, so children share their parent's stack signature — and every
    fourth slot an **elite clone** carried forward unchanged (elitism
    re-scores survivors each generation; clones dedup canonically).  The
    elite family dominates the slot cycle the way a converged population
    concentrates on its fittest structure.
    """
    from repro.config import make_rng
    from repro.core.ops import sample_params
    from repro.core.program import COMPONENTS, Operation

    mutator = Mutator(dims, seed=seed)
    bases = [get_initialization(code, dims, seed=seed)
             for code in ("D", "NN", "R")]
    parents = list(bases)
    while len(parents) < 6:
        parents.append(mutator.mutate(bases[len(parents) % 3]))

    rng = make_rng(jitter_seed)

    def jitter_params(program, name):
        child = program.copy(name=name)
        for component in COMPONENTS:
            operations = child.component(component)
            for index, operation in enumerate(operations):
                if operation.spec.param_names:
                    operations[index] = Operation.make(
                        operation.spec.name, operation.inputs,
                        operation.output,
                        sample_params(operation.spec, dims, rng),
                    )
        return child

    # Parent indices for the child slots, weighted toward the elite family
    # (0 = D base, 3 = its structural mutant); the matrix-heavy NN family
    # (1, 4) is the converged population's minority.
    cycle = [0, 3, 2, 0, 3, 5, 0, 3, 1, 0, 3, 2, 0, 3, 5, 4]
    programs = []
    while len(programs) < count:
        index = len(programs)
        if index % 4 == 3:
            parent = parents[(index // 4) % len(parents)]
            programs.append(parent.copy(name=f"alpha_{index}"))
        else:
            parent = parents[cycle[index % len(cycle)]]
            programs.append(jitter_params(parent, f"alpha_{index}"))
    return programs


def reports_identical(left, right) -> bool:
    """Bitwise comparison of two fitness reports (NaN-aware).

    The parity predicate of the CI smoke gates: every field must match
    exactly (``ic_valid`` NaNs compare equal, as both sides produce them for
    degenerate candidates).
    """
    same_ic = (left.ic_valid == right.ic_valid) or (
        np.isnan(left.ic_valid) and np.isnan(right.ic_valid)
    )
    return (
        left.fitness == right.fitness
        and same_ic
        and left.is_valid == right.is_valid
        and left.reason == right.reason
        and np.array_equal(left.daily_ic_valid, right.daily_ic_valid)
    )

#: Where each benchmark drops its rendered table and JSON rows — the single
#: source of truth for benchmark artifacts (see benchmarks/README.md).
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Repository root; ``BENCH_*.json`` copies land here for discoverability.
REPO_ROOT = RESULTS_DIR.parent.parent


def telemetry_block() -> dict:
    """The shared ``telemetry`` block every benchmark JSON carries.

    Host facts plus whatever instruments the process-wide telemetry
    registry holds at write time (empty unless the benchmark ran inside a
    :func:`repro.obs.telemetry_session`), so artifacts record where and
    under what observed conditions they were measured.
    """
    from repro.obs import TELEMETRY, host_info

    return {"host": host_info(), "instruments": TELEMETRY.snapshot()}


def write_bench_json(name: str, payload: dict) -> Path:
    """Persist one benchmark payload as ``BENCH_<name>.json``.

    ``benchmarks/results/`` is the single source of truth; the root-level
    ``BENCH_<name>.json`` is a byte-identical convenience copy written in
    the same call, so the two can never drift apart.  Returns the primary
    (results-dir) path.  A shared ``telemetry`` block
    (:func:`telemetry_block`) is attached unless the payload already
    carries one.
    """
    payload = dict(payload)
    payload.setdefault("telemetry", telemetry_block())
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    primary = RESULTS_DIR / f"BENCH_{name}.json"
    primary.write_text(text)
    (REPO_ROOT / f"BENCH_{name}.json").write_text(text)
    return primary


def bench_config() -> ExperimentConfig:
    """The experiment configuration selected through ``REPRO_BENCH_SCALE``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "laptop").lower()
    if scale == "smoke":
        return SMOKE
    if scale == "laptop":
        # A slightly trimmed laptop configuration so the full benchmark suite
        # finishes within a few minutes while keeping every protocol intact.
        return LAPTOP.scaled(
            max_candidates=400,
            round_time_budget_seconds=4.0,
            pruning_time_budget_seconds=4.0,
            nn_epochs=2,
            nn_num_seeds=3,
            nn_hidden_sizes=(16, 32),
            nn_sequence_lengths=(4, 8),
            nn_loss_alphas=(0.1, 1.0),
        )
    raise ValueError(f"unknown REPRO_BENCH_SCALE {scale!r}; use 'smoke' or 'laptop'")


def report(result, experiment: str) -> None:
    """Print the measured table (bypassing pytest capture) and persist it.

    The rendered table plus the paper's reference rows go to the real stdout
    (so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` shows
    them), to ``benchmarks/results/<experiment>.txt``, and the structured rows
    to ``benchmarks/results/<experiment>.json``.
    """
    lines = ["", result.rendered]
    reference = PAPER_REFERENCE.get(experiment)
    if reference:
        lines.append(f"\nPaper reference ({experiment}):")
        for row in reference:
            lines.append("  " + ", ".join(f"{key}={value}" for key, value in row.items()))
    lines.append("")
    text = "\n".join(lines)
    print(text, file=sys.__stdout__, flush=True)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
    save_result(result, RESULTS_DIR)
