"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or its figure through
:mod:`repro.experiments.runner` and prints the resulting rows next to the
paper's reference numbers, so the *shape* of the reproduction can be checked
at a glance.  Absolute values differ from the paper because the data
substrate is a synthetic market and the search budgets are laptop-scale (see
DESIGN.md section 2 and EXPERIMENTS.md).

Scale selection: set ``REPRO_BENCH_SCALE=smoke`` for a fast CI-sized run or
``REPRO_BENCH_SCALE=laptop`` (default) for the configuration used to fill
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from repro.experiments import ExperimentConfig, LAPTOP, PAPER_REFERENCE, SMOKE, save_result

__all__ = ["bench_config", "report"]

#: Where each benchmark drops its rendered table and JSON rows.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_config() -> ExperimentConfig:
    """The experiment configuration selected through ``REPRO_BENCH_SCALE``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "laptop").lower()
    if scale == "smoke":
        return SMOKE
    if scale == "laptop":
        # A slightly trimmed laptop configuration so the full benchmark suite
        # finishes within a few minutes while keeping every protocol intact.
        return LAPTOP.scaled(
            max_candidates=400,
            round_time_budget_seconds=4.0,
            pruning_time_budget_seconds=4.0,
            nn_epochs=2,
            nn_num_seeds=3,
            nn_hidden_sizes=(16, 32),
            nn_sequence_lengths=(4, 8),
            nn_loss_alphas=(0.1, 1.0),
        )
    raise ValueError(f"unknown REPRO_BENCH_SCALE {scale!r}; use 'smoke' or 'laptop'")


def report(result, experiment: str) -> None:
    """Print the measured table (bypassing pytest capture) and persist it.

    The rendered table plus the paper's reference rows go to the real stdout
    (so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` shows
    them), to ``benchmarks/results/<experiment>.txt``, and the structured rows
    to ``benchmarks/results/<experiment>.json``.
    """
    lines = ["", result.rendered]
    reference = PAPER_REFERENCE.get(experiment)
    if reference:
        lines.append(f"\nPaper reference ({experiment}):")
        for row in reference:
            lines.append("  " + ", ".join(f"{key}={value}" for key, value in row.items()))
    lines.append("")
    text = "\n".join(lines)
    print(text, file=sys.__stdout__, flush=True)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
    save_result(result, RESULTS_DIR)
