"""Make the shared ``common`` helpers importable when pytest-benchmark runs
from the repository root (``pytest benchmarks/ --benchmark-only``)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
