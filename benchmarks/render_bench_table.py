#!/usr/bin/env python3
"""Render the README's benchmark table from the ``BENCH_*.json`` artifacts.

Auto-discovers every ``benchmarks/results/BENCH_*.json`` (the single source
of truth — see ``benchmarks/README.md``) and prints the markdown table
embedded in ``README.md`` under "Measured performance", so the published
numbers are always regenerable from the artifacts that back them.  Known
benchmarks render their headline rows through the registry below; an
artifact without a registered renderer still appears as a generic row, so a
new ``bench_*.py`` shows up in the table the moment its JSON lands.
Missing artifacts simply do not contribute rows, so the table can be
rendered from a partial benchmark run.

Run with::

    python benchmarks/render_bench_table.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

Row = tuple[str, str, str]


def discover() -> dict[str, dict]:
    """name → payload for every ``BENCH_<name>.json`` in the results dir."""
    artifacts: dict[str, dict] = {}
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        try:
            artifacts[name] = json.loads(path.read_text())
        except json.JSONDecodeError as exc:  # pragma: no cover - corrupt file
            print(f"note: skipping unreadable {path}: {exc}", file=sys.stderr)
    return artifacts


# ---------------------------------------------------------------------------
# Per-benchmark headline renderers (name -> payload -> rows)
# ---------------------------------------------------------------------------

def _render_compile(payload: dict) -> list[Row]:
    return [
        (
            "compiled tape vs interpreter (inference stage)",
            f"{payload['inference_speedup']}x",
            f"`bench_compile.py`, {payload['num_programs']} programs, "
            "bitwise parity",
        ),
        (
            "compiled tape vs interpreter (full evaluation)",
            f"{payload['full_speedup']}x",
            f"`bench_compile.py`, "
            f"{payload['compiled']['full_candidates_per_second']} "
            "candidates/s compiled",
        ),
    ]


def _render_parallel(payload: dict) -> list[Row]:
    workers = payload.get("workers", {})
    serial = payload["serial_baseline"]["candidates_per_second"]
    if not workers or not serial:
        return []
    if "skipped_speedup_note" in payload:
        return [(
            "evaluation pool vs serial",
            "n/a",
            f"`bench_parallel.py` on {payload['cpu_count']} CPU(s): "
            "speedup headline skipped (single core), bitwise parity held",
        )]
    count, best = max(
        workers.items(), key=lambda item: item[1]["candidates_per_second"]
    )
    return [(
        f"evaluation pool, {count} workers vs serial",
        f"{best['candidates_per_second'] / serial:.2f}x",
        f"`bench_parallel.py` on {payload['cpu_count']} CPU(s), "
        "bitwise parity",
    )]


def _render_stream(payload: dict) -> list[Row]:
    return [(
        "incremental serving vs full recompute (per arriving day)",
        f"{payload['speedup_vs_full_recompute']}x",
        f"`bench_stream.py`, {payload['warm_history_days']}-day warm "
        f"history, {payload['incremental']['mean_bar_latency_ms']} ms "
        "mean bar latency, bitwise parity",
    )]


def _render_update(payload: dict) -> list[Row]:
    return [(
        "delta-replay of a late correction vs full warm-start replay",
        f"{payload['speedup_vs_full_replay']}x",
        f"`bench_update.py`, {payload['history_days']}-day served history, "
        f"{payload['speedup_curve'][-1]['replayed_days']} days replayed, "
        "bitwise parity with the full replay",
    )]


def _render_engine(payload: dict) -> list[Row]:
    rows: list[Row] = []
    static = payload.get("static_predict_time_batching", {})
    if static.get("num_programs"):
        rows.append((
            "static-predict time batching vs per-day loop (full evaluation)",
            f"{static['speedup']}x",
            f"`bench_engine.py`, {static['num_programs']} static-predict "
            "programs, 5-way bitwise parity",
        ))
    fleet = payload.get("fleet_evaluation", {})
    if fleet.get("num_programs"):
        rows.append((
            "fleet evaluation through one engine vs per-program loop",
            f"{fleet['speedup']}x",
            f"`bench_engine.py`, {fleet['num_programs']} programs "
            f"({fleet['unique_programs']} unique after canonical dedup), "
            f"{fleet['programs_per_second_fleet']} programs/s",
        ))
    stacked = payload.get("stacked_fleet", {})
    if stacked.get("num_programs"):
        rows.append((
            "stacked fleet kernels vs per-program loop (mining generation)",
            f"{stacked['stacked_speedup_vs_loop']}x",
            f"`bench_engine.py`, {stacked['num_programs']} programs "
            f"({stacked['unique_programs']} unique, "
            f"{stacked['stack_groups']} stack groups), "
            f"{stacked['programs_per_second_stacked']} programs/s",
        ))
    return rows


def _render_data(payload: dict) -> list[Row]:
    return [(
        "file-backend panel cache (warm vs cold CSV load)",
        f"{payload['speedup']}x",
        f"`bench_data.py`, {payload['num_stocks']} stocks x "
        f"{payload['num_days']} days, synthetic + CSV round-trip "
        "bitwise parity",
    )]


def _render_obs(payload: dict) -> list[Row]:
    overhead = payload.get("overhead", {})
    if "disabled_overhead_pct" not in overhead:
        return []
    return [(
        "telemetry overhead (disabled / enabled) on compiled full evaluation",
        f"{overhead['disabled_overhead_pct']}% / "
        f"{overhead['enabled_overhead_pct']}%",
        f"`bench_obs.py`, {payload['num_programs']} programs, "
        "on/off bitwise parity across 4 execution paths",
    )]


def _render_generic(name: str, payload: dict) -> list[Row]:
    """Fallback row for an artifact without a registered renderer."""
    speedup = payload.get("speedup") or payload.get("headline_speedup")
    if speedup is None:
        print(f"note: BENCH_{name}.json has no registered renderer and no "
              "top-level 'speedup' key; add one to RENDERERS in "
              "render_bench_table.py", file=sys.stderr)
        return []
    return [(
        payload.get("benchmark", name),
        f"{speedup}x",
        f"`bench_{name}.py`",
    )]


#: Known headline renderers, in the order their rows appear in the table.
RENDERERS = {
    "compile": _render_compile,
    "parallel": _render_parallel,
    "stream": _render_stream,
    "update": _render_update,
    "engine": _render_engine,
    "data": _render_data,
    "obs": _render_obs,
}


def render() -> str:
    """The markdown benchmark table (one row per recorded headline number)."""
    artifacts = discover()
    rows: list[Row] = []
    for name, renderer in RENDERERS.items():
        payload = artifacts.pop(name, None)
        if payload is None:
            print(f"note: benchmarks/results/BENCH_{name}.json missing; "
                  f"run benchmarks/bench_{name}.py", file=sys.stderr)
            continue
        rows.extend(renderer(payload))
    for name, payload in artifacts.items():  # discovered but unregistered
        rows.extend(_render_generic(name, payload))

    lines = [
        "| workload | speedup | details |",
        "| --- | --- | --- |",
    ]
    for workload, speedup, details in rows:
        lines.append(f"| {workload} | **{speedup}** | {details} |")
    return "\n".join(lines)


if __name__ == "__main__":
    print(render())
