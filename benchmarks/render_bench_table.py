#!/usr/bin/env python3
"""Render the README's benchmark table from the ``BENCH_*.json`` artifacts.

Reads ``benchmarks/results/BENCH_{parallel,compile,stream}.json`` (the
single source of truth — see ``benchmarks/README.md``) and prints the
markdown table embedded in ``README.md`` under "Measured performance", so
the published numbers are always regenerable from the artifacts that back
them.  Missing artifacts are skipped with a note instead of failing, so the
table can be rendered from a partial benchmark run.

Run with::

    python benchmarks/render_bench_table.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _load(name: str) -> dict | None:
    path = RESULTS_DIR / f"BENCH_{name}.json"
    if not path.exists():
        print(f"note: {path} missing; run benchmarks/bench_{name}.py",
              file=sys.stderr)
        return None
    return json.loads(path.read_text())


def render() -> str:
    """The markdown benchmark table (one row per recorded headline number)."""
    rows: list[tuple[str, str, str]] = []

    compile_bench = _load("compile")
    if compile_bench:
        rows.append((
            "compiled tape vs interpreter (inference stage)",
            f"{compile_bench['inference_speedup']}x",
            f"`bench_compile.py`, {compile_bench['num_programs']} programs, "
            "bitwise parity",
        ))
        rows.append((
            "compiled tape vs interpreter (full evaluation)",
            f"{compile_bench['full_speedup']}x",
            f"`bench_compile.py`, "
            f"{compile_bench['compiled']['full_candidates_per_second']} "
            "candidates/s compiled",
        ))

    parallel_bench = _load("parallel")
    if parallel_bench:
        workers = parallel_bench.get("workers", {})
        serial = parallel_bench["serial_baseline"]["candidates_per_second"]
        if workers and serial:
            count, best = max(
                workers.items(), key=lambda item: item[1]["candidates_per_second"]
            )
            rows.append((
                f"evaluation pool, {count} workers vs serial",
                f"{best['candidates_per_second'] / serial:.2f}x",
                f"`bench_parallel.py` on {parallel_bench['cpu_count']} CPU(s), "
                "bitwise parity",
            ))

    stream_bench = _load("stream")
    if stream_bench:
        rows.append((
            "incremental serving vs full recompute (per arriving day)",
            f"{stream_bench['speedup_vs_full_recompute']}x",
            f"`bench_stream.py`, {stream_bench['warm_history_days']}-day warm "
            f"history, {stream_bench['incremental']['mean_bar_latency_ms']} ms "
            "mean bar latency, bitwise parity",
        ))

    lines = [
        "| workload | speedup | details |",
        "| --- | --- | --- |",
    ]
    for workload, speedup, details in rows:
        lines.append(f"| {workload} | **{speedup}** | {details} |")
    return "\n".join(lines)


if __name__ == "__main__":
    print(render())
