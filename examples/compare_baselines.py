#!/usr/bin/env python3
"""Compare AlphaEvolve against the paper's baselines on one market.

Runs, on the same synthetic task set:

* ``alpha_D_0``     — the hand-written domain-expert alpha (no search);
* ``alpha_AE_D_0``  — AlphaEvolve initialised with the expert alpha;
* ``alpha_G_0``     — the genetic-programming formulaic-alpha miner;
* ``Rank_LSTM``     — the LSTM + ranking-loss baseline;
* ``RSR``           — the relational stock-ranking baseline.

All approaches are evaluated with the same long-short backtest on the test
split (Sharpe ratio and IC), mirroring Tables 1 and 5 of the paper.

Run with::

    python examples/compare_baselines.py
"""

from __future__ import annotations

from repro.backtest import BacktestEngine
from repro.baselines.genetic import GeneticAlphaMiner, GeneticConfig
from repro.baselines.neural import TrainingConfig, train_rank_lstm, train_rsr
from repro.core import Dimensions, EvolutionConfig, MiningSession, domain_expert_alpha
from repro.data import MarketConfig, Split, SyntheticMarket, build_taskset


def main() -> None:
    panel = SyntheticMarket(MarketConfig(num_stocks=80, num_days=420), seed=5).generate()
    taskset = build_taskset(panel, split=Split(train=255, valid=60, test=60))
    dims = Dimensions(taskset.num_features, taskset.window)
    engine = BacktestEngine(taskset, long_k=10, short_k=10)
    results: list[tuple[str, float, float]] = []

    # --------------------------------------------------------- AlphaEvolve
    session = MiningSession(
        taskset,
        evolution_config=EvolutionConfig(
            population_size=25, tournament_size=8, max_candidates=400
        ),
        long_k=10,
        short_k=10,
        max_train_steps=60,
        seed=1,
    )
    expert = session.evaluate_alpha(domain_expert_alpha(dims), name="alpha_D_0")
    results.append((expert.name, expert.sharpe, expert.ic))
    evolved = session.search(domain_expert_alpha(dims), name="alpha_AE_D_0",
                             enforce_cutoff=False)
    results.append((evolved.name, evolved.sharpe, evolved.ic))

    # --------------------------------------------------- genetic programming
    miner = GeneticAlphaMiner(
        taskset,
        GeneticConfig(population_size=25, tournament_size=8, max_candidates=400),
        backtest_engine=engine,
        seed=1,
    )
    gp_result = miner.run()
    gp_test = engine.evaluate(miner.evaluate_tree(gp_result.best.tree, "test"),
                              split="test", name="alpha_G_0")
    results.append(("alpha_G_0", gp_test.sharpe, gp_test.ic))
    print("Best GP formula:", gp_result.best.tree.render())

    # ------------------------------------------------------ neural baselines
    config = TrainingConfig(sequence_length=8, hidden_size=32, loss_alpha=0.1,
                            epochs=2, batch_days=60, seed=0)
    lstm_model, lstm_outcome = train_rank_lstm(taskset, config)
    lstm_test = engine.evaluate(lstm_outcome.predictions["test"], split="test",
                                name="Rank_LSTM")
    results.append(("Rank_LSTM", lstm_test.sharpe, lstm_test.ic))

    _, rsr_outcome = train_rsr(taskset, lstm_model, config)
    rsr_test = engine.evaluate(rsr_outcome.predictions["test"], split="test", name="RSR")
    results.append(("RSR", rsr_test.sharpe, rsr_test.ic))

    # ---------------------------------------------------------------- table
    print("\n{:<14} {:>12} {:>10}".format("alpha", "Sharpe", "IC"))
    print("-" * 38)
    for name, sharpe, ic in results:
        print(f"{name:<14} {sharpe:>12.4f} {ic:>10.4f}")


if __name__ == "__main__":
    main()
