#!/usr/bin/env python3
"""Write an alpha by hand, evaluate it, and (optionally) use your own data.

This example shows the lower-level API:

* build an :class:`~repro.core.AlphaProgram` operation by operation — here a
  "new class" alpha with a genuine parameter: it accumulates an exponential
  moving average of realised returns per stock in ``Update()`` and combines
  it with an extracted momentum feature in ``Predict()``;
* evaluate it with and without the parameter-updating function (the Table 4
  ablation);
* inspect the pruned version and the dependency structure;
* optionally load real OHLCV CSVs instead of the simulator by passing a
  directory as the first command-line argument (one CSV per stock with
  ``date,open,high,low,close,volume`` columns).

Run with::

    python examples/custom_alpha_and_real_data.py [path/to/csv/directory]
"""

from __future__ import annotations

import sys

from repro.core import (
    AlphaEvaluator,
    AlphaProgram,
    INPUT_MATRIX,
    LABEL,
    Operand,
    Operation,
    PREDICTION,
    prune_program,
)
from repro.data import MarketConfig, Split, SyntheticMarket, build_taskset, load_csv_directory


def build_custom_alpha() -> AlphaProgram:
    """A hand-written 'new class' alpha: momentum plus a learned return EMA."""
    momentum = Operand.scalar(2)      # extracted momentum feature
    ema = Operand.scalar(3)           # parameter: EMA of realised returns
    decay = Operand.scalar(4)         # constant 0.97
    one_minus = Operand.scalar(5)     # constant 0.03
    scaled_ema = Operand.scalar(6)
    scaled_label = Operand.scalar(7)
    ma5 = Operand.scalar(8)
    close = Operand.scalar(9)

    setup = [
        Operation.make("s_const", (), decay, {"constant": 0.97}),
        Operation.make("s_const", (), one_minus, {"constant": 0.03}),
    ]
    predict = [
        # momentum = close / ma5 extracted from the input matrix's latest day
        Operation.make("get_scalar", (INPUT_MATRIX,), close, {"row": 11, "col": 12}),
        Operation.make("get_scalar", (INPUT_MATRIX,), ma5, {"row": 0, "col": 12}),
        Operation.make("s_div", (close, ma5), momentum),
        # prediction = momentum + learned per-stock return EMA
        Operation.make("s_add", (momentum, ema), PREDICTION),
    ]
    update = [
        # ema <- 0.97 * ema + 0.03 * realised_return
        Operation.make("s_mul", (ema, decay), scaled_ema),
        Operation.make("s_mul", (LABEL, one_minus), scaled_label),
        Operation.make("s_add", (scaled_ema, scaled_label), ema),
    ]
    return AlphaProgram(setup=setup, predict=predict, update=update, name="alpha_custom")


def load_data(argv: list[str]):
    if len(argv) > 1:
        print(f"Loading OHLCV CSVs from {argv[1]} ...")
        panel = load_csv_directory(argv[1])
        return build_taskset(panel)
    print("No data directory given - using the synthetic NASDAQ-like simulator.")
    panel = SyntheticMarket(MarketConfig(num_stocks=80, num_days=420), seed=42).generate()
    return build_taskset(panel, split=Split(train=255, valid=60, test=60))


def main() -> None:
    taskset = load_data(sys.argv)
    print("Task set:", taskset.describe())

    alpha = build_custom_alpha()
    print("\nCustom alpha:\n")
    print(alpha.render())

    pruned = prune_program(alpha)
    print(f"\nPruning: kept {pruned.kept_operations} operations, "
          f"removed {pruned.removed_operations}, redundant={pruned.is_redundant}")

    evaluator = AlphaEvaluator(taskset, seed=0)
    with_update = evaluator.evaluate(alpha, use_update=True)
    without_update = evaluator.evaluate(alpha, use_update=False)
    print("\nParameter-updating ablation (validation IC):")
    print(f"  with Update():    {with_update.ic_valid:8.4f}")
    print(f"  without Update(): {without_update.ic_valid:8.4f}")
    print("\nTest IC with Update():", f"{with_update.ic_test:8.4f}")


if __name__ == "__main__":
    main()
