#!/usr/bin/env python3
"""Mine a *set* of weakly correlated alphas, the paper's headline use case.

A hedge fund does not want one great alpha — it wants several alphas whose
portfolio returns are mutually weakly correlated (|rho| <= 15 %) so the risk
diversifies.  This example runs the multi-round protocol of Section 5.4.1:

* each round evolves a new alpha under correlation cutoffs against every
  previously accepted alpha;
* the best alpha per round (by Sharpe ratio) is accepted into the set ``A``;
* at the end the pairwise correlation matrix of the mined set is printed.

Run with::

    python examples/mine_weakly_correlated_set.py
"""

from __future__ import annotations

import numpy as np

from repro.backtest import pearson_correlation
from repro.core import Dimensions, EvolutionConfig, MiningSession, get_initialization
from repro.data import MarketConfig, Split, SyntheticMarket, build_taskset

NUM_ROUNDS = 3
INITIALIZATIONS = ("D", "R", "NN")


def main() -> None:
    panel = SyntheticMarket(MarketConfig(num_stocks=80, num_days=420), seed=11).generate()
    taskset = build_taskset(panel, split=Split(train=255, valid=60, test=60))
    dims = Dimensions(taskset.num_features, taskset.window)

    session = MiningSession(
        taskset,
        evolution_config=EvolutionConfig(
            population_size=25, tournament_size=8, max_candidates=300
        ),
        long_k=10,
        short_k=10,
        max_train_steps=50,
        seed=3,
    )

    for round_index in range(NUM_ROUNDS):
        candidates = []
        for code in INITIALIZATIONS:
            name = f"alpha_AE_{code}_{round_index}"
            mined = session.search(
                get_initialization(code, dims, seed=round_index),
                name=name,
                enforce_cutoff=bool(session.accepted),
            )
            candidates.append(mined)
            print(
                f"round {round_index}  {name:<18} sharpe={mined.sharpe:8.3f}  "
                f"ic={mined.ic:7.4f}  corr_with_A={mined.correlation_with_accepted:7.4f}"
            )
        best = max(candidates, key=lambda mined: mined.sharpe)
        session.accept(best)
        print(f"round {round_index}  accepted -> {best.name}\n")

    print("Mined set A:")
    for row in session.describe_accepted():
        print(f"  {row['alpha']:<18} sharpe={row['sharpe']:8.3f}  ic={row['ic']:7.4f}")

    print("\nPairwise correlation of validation portfolio returns:")
    accepted = session.accepted
    names = [alpha.name for alpha in accepted]
    header = " " * 18 + "  ".join(f"{name[-8:]:>10}" for name in names)
    print(header)
    for alpha in accepted:
        correlations = [
            pearson_correlation(alpha.valid_returns, other.valid_returns)
            for other in accepted
        ]
        cells = "  ".join(f"{value:>10.3f}" for value in correlations)
        print(f"{alpha.name:<18}{cells}")

    off_diagonal = [
        abs(pearson_correlation(a.valid_returns, b.valid_returns))
        for i, a in enumerate(accepted)
        for b in accepted[i + 1:]
    ]
    if off_diagonal:
        print(f"\nmax |correlation| inside the mined set: {np.max(off_diagonal):.3f} "
              f"(cutoff {session.correlation_cutoff:.0%})")


if __name__ == "__main__":
    main()
