#!/usr/bin/env python3
"""Parallel alpha search: worker pool, evolution islands and checkpointing.

This walks through the parallel search subsystem (:mod:`repro.parallel`):

1. simulate a market and build the per-stock prediction tasks;
2. mine an alpha with an **island-model** search — several independent
   regularised-evolution populations exchanging their best candidates —
   with candidate evaluation fanned out to a pool of worker processes;
3. checkpoint the search state so a killed run resumes where it stopped;
4. compare against the serial controller on the same budget: the island
   search explores the same number of candidates and reports its results
   in the identical format.

Run with::

    python examples/parallel_search.py
"""

from __future__ import annotations

import os
import tempfile

from repro.core import Dimensions, EvolutionConfig, MiningSession, domain_expert_alpha
from repro.data import MarketConfig, Split, SyntheticMarket, build_taskset


def main() -> None:
    # ------------------------------------------------------------------ data
    market = SyntheticMarket(MarketConfig(num_stocks=80, num_days=420), seed=2021)
    panel = market.generate()
    taskset = build_taskset(panel, split=Split(train=255, valid=60, test=60))
    print("Task set:", taskset.describe())

    dims = Dimensions(taskset.num_features, taskset.window)
    seed_alpha = domain_expert_alpha(dims)
    workers = min(4, os.cpu_count() or 1)

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        # -------------------------------------------------- parallel session
        # num_islands > 1 selects the island-model controller; num_workers > 1
        # additionally evaluates each per-step candidate batch on a process
        # pool.  Checkpoints land in checkpoint_dir/<search name>.ckpt, and a
        # rerun of the same search name resumes from them automatically.
        session = MiningSession(
            taskset,
            evolution_config=EvolutionConfig(
                population_size=20,
                tournament_size=5,
                max_candidates=400,
                num_islands=4,
                num_workers=workers,
            ),
            long_k=10,
            short_k=10,
            max_train_steps=60,
            seed=7,
            checkpoint_dir=checkpoint_dir,
            checkpoint_interval=100,
        )
        print(f"\nIsland search: 4 islands, {workers} evaluation worker(s)")
        mined = session.search(seed_alpha, name="alpha_AE_P_0", enforce_cutoff=False)
        evolution = mined.evolution
        print(f"  searched alphas:    {int(mined.extras['searched_alphas'])}")
        print(f"  actually evaluated: {int(mined.extras['evaluated_alphas'])}")
        print(f"  migrations:         {evolution.migrations}")
        print(f"  island best IC:     "
              + ", ".join(f"{fitness:.4f}" for fitness in evolution.island_best_fitness))
        print(f"  wall clock:         {mined.extras['elapsed_seconds']:.2f}s")

        checkpoint = os.path.join(checkpoint_dir, "alpha_AE_P_0.ckpt")
        print(f"  checkpoint on disk: {os.path.exists(checkpoint)}")

        # ------------------------------------------------------ resume demo
        # Simulate a process restart after a crash: a fresh session with the
        # same configuration replays the same seeds, finds the checkpoint
        # under the same search name and resumes it.  Here the budget is
        # already exhausted, so it returns the same best program without
        # re-evaluating anything; after a mid-run kill it would continue
        # searching from the last checkpoint instead.
        restarted = MiningSession(
            taskset,
            evolution_config=session.evolution_config,
            long_k=10,
            short_k=10,
            max_train_steps=60,
            seed=7,
            checkpoint_dir=checkpoint_dir,
            checkpoint_interval=100,
        )
        resumed = restarted.search(seed_alpha, name="alpha_AE_P_0", enforce_cutoff=False)
        print("\nRestarted process resumes to the identical alpha:",
              resumed.program == mined.program)

    # --------------------------------------------------------- serial pendant
    serial_session = MiningSession(
        taskset,
        evolution_config=EvolutionConfig(
            population_size=20, tournament_size=5, max_candidates=400
        ),
        long_k=10,
        short_k=10,
        max_train_steps=60,
        seed=7,
    )
    serial = serial_session.search(seed_alpha, name="alpha_AE_S_0", enforce_cutoff=False)

    print("\n{:<14} {:>12} {:>10} {:>10}".format("alpha", "Sharpe", "IC", "islands"))
    for alpha in (mined, serial):
        print(f"{alpha.name:<14} {alpha.sharpe:>12.4f} {alpha.ic:>10.4f} "
              f"{int(alpha.extras['num_islands']):>10}")
    print("\nEvolved alpha (pruned for readability):\n")
    print(MiningSession.simplify(mined.program).render())


if __name__ == "__main__":
    main()
