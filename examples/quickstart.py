#!/usr/bin/env python3
"""Quickstart: evolve an alpha from a domain-expert seed and backtest it.

This walks through the full AlphaEvolve pipeline on a synthetic NASDAQ-like
market (no external data needed):

1. simulate a market and build the per-stock prediction tasks;
2. start from a hand-written moving-average-crossover alpha;
3. evolve it with AlphaEvolve for a small candidate budget;
4. backtest both alphas with the long-short strategy and compare.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import Dimensions, EvolutionConfig, MiningSession, domain_expert_alpha
from repro.data import MarketConfig, Split, SyntheticMarket, build_taskset


def main() -> None:
    # ------------------------------------------------------------------ data
    market = SyntheticMarket(MarketConfig(num_stocks=80, num_days=420), seed=2021)
    panel = market.generate()
    taskset = build_taskset(panel, split=Split(train=255, valid=60, test=60))
    print("Task set:", taskset.describe())

    # ------------------------------------------------------------ evolution
    session = MiningSession(
        taskset,
        evolution_config=EvolutionConfig(
            population_size=30, tournament_size=10, max_candidates=500
        ),
        long_k=10,
        short_k=10,
        max_train_steps=60,
        seed=7,
    )
    dims = Dimensions(taskset.num_features, taskset.window)
    seed_alpha = domain_expert_alpha(dims)
    print("\nDomain-expert alpha before evolving:\n")
    print(seed_alpha.render())

    expert = session.evaluate_alpha(seed_alpha, name="alpha_D_0")
    evolved = session.search(seed_alpha, name="alpha_AE_D_0", enforce_cutoff=False)

    # ------------------------------------------------------------- results
    print("\nEvolved alpha (pruned for readability):\n")
    print(session.simplify(evolved.program).render())

    print("\n{:<14} {:>12} {:>10}".format("alpha", "Sharpe", "IC"))
    for alpha in (expert, evolved):
        print(f"{alpha.name:<14} {alpha.sharpe:>12.4f} {alpha.ic:>10.4f}")
    print(
        f"\nCandidates searched: {int(evolved.extras['searched_alphas'])}, "
        f"actually evaluated: {int(evolved.extras['evaluated_alphas'])} "
        "(the rest were pruned or served from the fingerprint cache)"
    )


if __name__ == "__main__":
    main()
