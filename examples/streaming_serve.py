#!/usr/bin/env python3
"""Streaming serving: mine a small alpha fleet, then serve it day by day.

This drives the full online pipeline end-to-end on a synthetic market:

1. simulate a market and build the per-stock prediction tasks;
2. evolve two alphas from different initialisations (a tiny budget);
3. register them — plus a duplicate, to show canonical-IR deduplication —
   on an :class:`repro.stream.server.AlphaServer` and warm-start it over
   the training history;
4. stream the validation days through the server one bar at a time,
   suspending to disk and resuming halfway to show that a serving process
   can restart without replaying history;
5. run the online backtest driver, which asserts bitwise parity between
   the streamed predictions and the offline batch path, and print the
   backtest metrics with the serving latency statistics.

Run with::

    python examples/streaming_serve.py
"""

from __future__ import annotations

import os
import tempfile

from repro.core import Dimensions, EvolutionConfig, MiningSession, get_initialization
from repro.data import MarketConfig, Split, SyntheticMarket, build_taskset
from repro.stream import AlphaServer, OnlineBacktestDriver, load_state, save_state


def main() -> None:
    # ------------------------------------------------------------------ data
    market = SyntheticMarket(MarketConfig(num_stocks=60, num_days=360), seed=2021)
    taskset = build_taskset(market.generate(), split=Split(train=200, valid=55, test=55))
    print("Task set:", taskset.describe())

    # ------------------------------------------------------------ mine a fleet
    session = MiningSession(
        taskset,
        evolution_config=EvolutionConfig(max_candidates=150),
        max_train_steps=50,
        seed=7,
    )
    dims = Dimensions(taskset.num_features, taskset.window)
    fleet = []
    for i, code in enumerate(("D", "NN")):
        mined = session.search(
            get_initialization(code, dims, seed=7 + i),
            name=f"alpha_AE_{code}_{i}",
            enforce_cutoff=True,
        )
        session.accept(mined)
        fleet.append((mined.name, mined.program))
        print(f"mined {mined.name}: sharpe={mined.sharpe:.3f} ic={mined.ic:.4f}")

    # ------------------------------------------------- serve bars by hand
    def build_server(warm: bool = True) -> AlphaServer:
        server = AlphaServer(taskset, seed=0, max_train_steps=50)
        for name, program in fleet:
            server.register(program, name=name)
        # A duplicate registration: same program, new name.  The canonical-IR
        # fingerprint routes it to the existing executor, so it costs nothing
        # per bar.
        server.register(fleet[0][1], name="alpha_mirror")
        if warm:
            server.warm_start()
        return server

    server = build_server()
    features = taskset.split_features("valid")
    labels = taskset.split_labels("valid")
    half = features.shape[0] // 2
    for day in range(half):
        predictions = server.on_bar(features[day])
        server.reveal(labels[day])
    print(f"\nserved {server.days_served} bars; "
          f"{server.num_registered} alphas on {server.num_unique} executors")

    # Suspend mid-stream, resume in a fresh server, continue where we left off.
    state_path = os.path.join(tempfile.mkdtemp(prefix="repro-serve-"), "fleet.state")
    save_state(state_path, server.suspend())
    resumed = build_server(warm=False)
    resumed.resume(load_state(state_path))
    for day in range(half, features.shape[0]):
        predictions = resumed.on_bar(features[day])
        resumed.reveal(labels[day])
    print(f"resumed from {state_path} and served through day "
          f"{resumed.days_served} (last bar: "
          f"{ {name: round(float(pred[0]), 6) for name, pred in predictions.items()} })")

    # --------------------------------------- the full driver, with parity
    driver = OnlineBacktestDriver(
        taskset,
        [program for _, program in fleet],
        names=[name for name, _ in fleet],
        seed=0,
        max_train_steps=50,
    )
    report = driver.run()
    print("\n" + report.render())


if __name__ == "__main__":
    main()
