"""Setuptools entry point.

The offline environment this repository targets has no ``wheel`` package, so
PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``.  This
``setup.py`` enables the legacy ``pip install -e .`` code path.  Project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
