"""AlphaEvolve reproduction.

A from-scratch implementation of *"AlphaEvolve: A Learning Framework to
Discover Novel Alphas in Quantitative Investment"* (Cui et al., SIGMOD 2021):
an AutoML-style evolutionary framework that mines a weakly correlated set of
"new class" alphas — programs over scalar, vector and matrix operands that
combine the simplicity of formulaic alphas with the data-driven parameters of
machine-learning alphas.

Public API highlights
---------------------
* :mod:`repro.data`       — synthetic NASDAQ-like market, features, task sets
* :mod:`repro.core`       — the alpha language, evaluator, pruning and search
* :mod:`repro.compile`    — SSA IR, optimiser passes and the fused executor
* :mod:`repro.engine`     — the unified execution-engine layer: one
  train/inference protocol implementation, selectable backends
  (interpreter / compiled), fleet evaluation and time-batched fast paths
* :mod:`repro.backtest`   — long-short portfolio backtesting and metrics
* :mod:`repro.parallel`   — worker-pool evaluation, island evolution and
  checkpoint/resume for the search
* :mod:`repro.stream`     — incremental streaming serving of mined alphas
  (AlphaServer, suspend/resume, the online backtest driver)
* :mod:`repro.baselines`  — genetic-programming, Rank_LSTM and RSR baselines
* :mod:`repro.experiments`— runners that regenerate every table and figure

See ``docs/ARCHITECTURE.md`` for the subsystem map and ``docs/API.md`` for
runnable (doctested) examples of the public surface.
"""

from . import backtest, compile, config, core, data, engine, errors, parallel, stream
from .engine import ExecutionEngine, FleetEngine
from .stream import AlphaServer, IncrementalAlpha, OnlineBacktestDriver
from .backtest import BacktestEngine, BacktestResult, sharpe_ratio
from .core import (
    AlphaEvaluator,
    AlphaProgram,
    CorrelationFilter,
    Dimensions,
    EvolutionConfig,
    EvolutionController,
    MinedAlpha,
    MiningSession,
    Mutator,
    Operand,
    Operation,
    domain_expert_alpha,
    get_initialization,
    neural_network_alpha,
    prune_program,
)
from .data import (
    MarketConfig,
    Split,
    StockPanel,
    SyntheticMarket,
    TaskSet,
    UniverseFilter,
    build_taskset,
)

__version__ = "1.0.0"

__all__ = [
    "AlphaEvaluator",
    "AlphaProgram",
    "AlphaServer",
    "BacktestEngine",
    "BacktestResult",
    "CorrelationFilter",
    "Dimensions",
    "EvolutionConfig",
    "EvolutionController",
    "ExecutionEngine",
    "FleetEngine",
    "IncrementalAlpha",
    "MarketConfig",
    "MinedAlpha",
    "MiningSession",
    "Mutator",
    "OnlineBacktestDriver",
    "Operand",
    "Operation",
    "Split",
    "StockPanel",
    "SyntheticMarket",
    "TaskSet",
    "UniverseFilter",
    "__version__",
    "backtest",
    "build_taskset",
    "compile",
    "config",
    "core",
    "data",
    "domain_expert_alpha",
    "engine",
    "errors",
    "parallel",
    "get_initialization",
    "neural_network_alpha",
    "prune_program",
    "sharpe_ratio",
    "stream",
]
