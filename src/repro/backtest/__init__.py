"""Long-short backtesting substrate (Section 5.3 of the paper)."""

from .engine import BacktestEngine, BacktestResult
from .metrics import (
    annualized_return,
    annualized_volatility,
    daily_information_coefficient,
    information_coefficient,
    max_drawdown,
    pearson_correlation,
    sharpe_ratio,
)
from .portfolio import LongShortPortfolio, PortfolioWeights, long_short_returns

__all__ = [
    "BacktestEngine",
    "BacktestResult",
    "LongShortPortfolio",
    "PortfolioWeights",
    "annualized_return",
    "annualized_volatility",
    "daily_information_coefficient",
    "information_coefficient",
    "long_short_returns",
    "max_drawdown",
    "pearson_correlation",
    "sharpe_ratio",
]
