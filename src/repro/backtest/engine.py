"""Backtest engine: turns a prediction panel into the paper's metrics.

The engine wraps the long-short portfolio and metric functions into a single
call that produces a :class:`BacktestResult` with everything Tables 1-6
report: the annualised Sharpe ratio, the IC, the portfolio-return series
(used for the weak-correlation cutoff) and a few extra diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import LONG_POSITIONS, SHORT_POSITIONS
from ..data.dataset import TaskSet
from ..errors import BacktestError
from .metrics import (
    annualized_return,
    annualized_volatility,
    daily_information_coefficient,
    information_coefficient,
    max_drawdown,
    pearson_correlation,
    sharpe_ratio,
)
from .portfolio import LongShortPortfolio

__all__ = ["BacktestResult", "BacktestEngine"]


@dataclass
class BacktestResult:
    """Evaluation of one alpha's predictions on one split."""

    name: str
    split: str
    sharpe: float
    ic: float
    annual_return: float
    annual_volatility: float
    max_drawdown: float
    portfolio_returns: np.ndarray
    daily_ic: np.ndarray = field(default_factory=lambda: np.empty(0))

    def correlation_with(self, other: "BacktestResult") -> float:
        """Pearson correlation of the two portfolio-return series."""
        return pearson_correlation(self.portfolio_returns, other.portfolio_returns)

    def summary(self) -> dict[str, float]:
        """Compact dictionary used by experiment tables."""
        return {
            "sharpe": self.sharpe,
            "ic": self.ic,
            "annual_return": self.annual_return,
            "annual_volatility": self.annual_volatility,
            "max_drawdown": self.max_drawdown,
        }


class BacktestEngine:
    """Evaluates prediction panels against the realised returns of a task set."""

    def __init__(
        self,
        taskset: TaskSet,
        long_k: int = LONG_POSITIONS,
        short_k: int = SHORT_POSITIONS,
    ) -> None:
        self.taskset = taskset
        self.portfolio = LongShortPortfolio(long_k=long_k, short_k=short_k)

    def evaluate(
        self,
        predictions: np.ndarray,
        split: str = "test",
        name: str = "alpha",
    ) -> BacktestResult:
        """Backtest ``predictions`` (shape ``(N_split, K)``) on ``split``."""
        labels = self.taskset.split_labels(split)
        predictions = np.asarray(predictions, dtype=np.float64)
        if predictions.shape != labels.shape:
            raise BacktestError(
                f"predictions have shape {predictions.shape}, but the {split} "
                f"split expects {labels.shape}"
            )
        returns = self.portfolio.returns(predictions, labels)
        return BacktestResult(
            name=name,
            split=split,
            sharpe=sharpe_ratio(returns),
            ic=information_coefficient(predictions, labels),
            annual_return=annualized_return(returns),
            annual_volatility=annualized_volatility(returns),
            max_drawdown=max_drawdown(returns),
            portfolio_returns=returns,
            daily_ic=daily_information_coefficient(predictions, labels),
        )

    def portfolio_returns(self, predictions: np.ndarray, split: str = "valid") -> np.ndarray:
        """Just the daily long-short return series (used by the cutoff filter)."""
        labels = self.taskset.split_labels(split)
        predictions = np.asarray(predictions, dtype=np.float64)
        if predictions.shape != labels.shape:
            raise BacktestError(
                f"predictions have shape {predictions.shape}, but the {split} "
                f"split expects {labels.shape}"
            )
        return self.portfolio.returns(predictions, labels)
