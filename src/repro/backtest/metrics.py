"""Portfolio and prediction metrics (Section 5.3).

The paper evaluates alphas with two metrics:

* the **Information Coefficient (IC)** — the average daily cross-sectional
  Pearson correlation between predictions and realised returns (Eq. 1);
* the **Sharpe ratio** of a long-short portfolio built from the alpha's
  predictions, annualised over 252 trading days with a zero risk-free rate.

Alphas are compared against each other through the Pearson correlation of
their portfolio-return series; the hedge-fund standard for "weakly
correlated" is 15 %.
"""

from __future__ import annotations

import numpy as np

from ..config import RISK_FREE_RATE, TRADING_DAYS_PER_YEAR
from ..errors import BacktestError

__all__ = [
    "pearson_correlation",
    "sharpe_ratio",
    "annualized_return",
    "annualized_volatility",
    "max_drawdown",
    "daily_information_coefficient",
    "information_coefficient",
]


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Sample Pearson correlation between two 1-D series.

    Returns 0.0 when either series has zero variance (the convention used by
    both the fitness function and the correlation cutoff, where a degenerate
    series should count as uncorrelated rather than poison the comparison).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise BacktestError(f"series have different lengths: {x.size} vs {y.size}")
    if x.size < 2:
        return 0.0
    x_centered = x - x.mean()
    y_centered = y - y.mean()
    denominator = np.sqrt((x_centered**2).sum() * (y_centered**2).sum())
    if denominator <= 0:
        return 0.0
    return float((x_centered * y_centered).sum() / denominator)


def sharpe_ratio(
    portfolio_returns: np.ndarray,
    risk_free_rate: float = RISK_FREE_RATE,
    periods_per_year: int = TRADING_DAYS_PER_YEAR,
) -> float:
    """Annualised Sharpe ratio of a daily portfolio-return series.

    ``SR = (mean(R_p) * P - R_r) / (std(R_p) * sqrt(P))`` with ``P`` trading
    periods per year; the risk-free rate defaults to 0 as in the paper.
    Returns 0.0 for a constant return series.
    """
    returns = np.asarray(portfolio_returns, dtype=np.float64).ravel()
    if returns.size == 0:
        raise BacktestError("cannot compute the Sharpe ratio of an empty series")
    volatility = returns.std(ddof=1) if returns.size > 1 else 0.0
    if volatility <= 1e-15:
        return 0.0
    annual_return = returns.mean() * periods_per_year
    annual_volatility = volatility * np.sqrt(periods_per_year)
    return float((annual_return - risk_free_rate) / annual_volatility)


def annualized_return(portfolio_returns: np.ndarray,
                      periods_per_year: int = TRADING_DAYS_PER_YEAR) -> float:
    """Mean daily return scaled to a yearly horizon."""
    returns = np.asarray(portfolio_returns, dtype=np.float64).ravel()
    if returns.size == 0:
        raise BacktestError("cannot annualise an empty series")
    return float(returns.mean() * periods_per_year)


def annualized_volatility(portfolio_returns: np.ndarray,
                          periods_per_year: int = TRADING_DAYS_PER_YEAR) -> float:
    """Standard deviation of daily returns scaled to a yearly horizon."""
    returns = np.asarray(portfolio_returns, dtype=np.float64).ravel()
    if returns.size == 0:
        raise BacktestError("cannot annualise an empty series")
    volatility = returns.std(ddof=1) if returns.size > 1 else 0.0
    return float(volatility * np.sqrt(periods_per_year))


def max_drawdown(portfolio_returns: np.ndarray) -> float:
    """Maximum peak-to-trough drawdown of the compounded return path.

    Returned as a non-negative fraction (0.2 means a 20 % drawdown).
    """
    returns = np.asarray(portfolio_returns, dtype=np.float64).ravel()
    if returns.size == 0:
        raise BacktestError("cannot compute the drawdown of an empty series")
    nav = np.cumprod(1.0 + returns)
    running_peak = np.maximum.accumulate(nav)
    drawdowns = 1.0 - nav / running_peak
    return float(drawdowns.max())


def daily_information_coefficient(predictions: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-day cross-sectional Pearson correlation, shape ``(N,)``."""
    predictions = np.asarray(predictions, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if predictions.shape != labels.shape or predictions.ndim != 2:
        raise BacktestError(
            "predictions and labels must both be (days, stocks) arrays of the "
            f"same shape, got {predictions.shape} and {labels.shape}"
        )
    return np.array([
        pearson_correlation(predictions[day], labels[day])
        for day in range(predictions.shape[0])
    ])


def information_coefficient(predictions: np.ndarray, labels: np.ndarray) -> float:
    """The IC of Eq. 1: mean of the daily cross-sectional correlations."""
    series = daily_information_coefficient(predictions, labels)
    if series.size == 0:
        return 0.0
    return float(series.mean())
