"""Long-short portfolio construction (Section 5.3).

At every time step the strategy ranks all stocks by predicted return, buys
the top ``long_k`` (the long position), borrows and sells the bottom
``short_k`` (the short position), and balances the two books with a cash
position so the investment plan keeps a fixed ratio between the sides.  With
equal weighting inside each book and dollar-neutral sizing, the daily
portfolio return reduces to::

    R_p[t] = 0.5 * mean(realised returns of long stocks)
           - 0.5 * mean(realised returns of short stocks)

which is the quantity whose annualised mean/volatility ratio the paper
reports as the Sharpe ratio, and whose series is used for the 15 %
weak-correlation cutoff between alphas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import LONG_POSITIONS, SHORT_POSITIONS
from ..errors import BacktestError

__all__ = ["PortfolioWeights", "LongShortPortfolio", "long_short_returns"]


@dataclass(frozen=True)
class PortfolioWeights:
    """Per-stock weights of one trading day (long weights sum to +0.5, short to -0.5)."""

    weights: np.ndarray
    long_indices: np.ndarray
    short_indices: np.ndarray


class LongShortPortfolio:
    """Builds daily long-short weights from cross-sectional predictions."""

    def __init__(self, long_k: int = LONG_POSITIONS, short_k: int = SHORT_POSITIONS) -> None:
        if long_k <= 0 or short_k <= 0:
            raise BacktestError("long_k and short_k must be positive")
        self.long_k = long_k
        self.short_k = short_k

    def effective_books(self, num_stocks: int) -> tuple[int, int]:
        """Book sizes actually used for a universe of ``num_stocks``.

        When the universe is smaller than ``long_k + short_k`` (common in
        laptop-scale experiments) each book is shrunk to at most a third of
        the universe, so the long and short books never overlap.
        """
        if num_stocks < 2:
            raise BacktestError("need at least two stocks to build a long-short portfolio")
        cap = max(1, num_stocks // 3)
        return min(self.long_k, cap), min(self.short_k, cap)

    def daily_weights(self, predictions: np.ndarray) -> PortfolioWeights:
        """Weights for a single day given the cross-section of predictions."""
        predictions = np.asarray(predictions, dtype=np.float64).ravel()
        long_k, short_k = self.effective_books(predictions.size)
        order = np.argsort(predictions, kind="stable")
        short_indices = order[:short_k]
        long_indices = order[-long_k:]
        weights = np.zeros(predictions.size)
        weights[long_indices] = 0.5 / long_k
        weights[short_indices] = -0.5 / short_k
        return PortfolioWeights(
            weights=weights, long_indices=long_indices, short_indices=short_indices
        )

    def returns(self, predictions: np.ndarray, realized_returns: np.ndarray) -> np.ndarray:
        """Daily portfolio-return series for a panel of predictions.

        Parameters
        ----------
        predictions, realized_returns:
            Arrays of shape ``(N, K)``: each day's predictions are used to
            form the books, and the same day's realised (next-day) returns —
            the task labels — are what the books earn.
        """
        predictions = np.asarray(predictions, dtype=np.float64)
        realized_returns = np.asarray(realized_returns, dtype=np.float64)
        if predictions.shape != realized_returns.shape or predictions.ndim != 2:
            raise BacktestError(
                "predictions and realised returns must both be (days, stocks) "
                f"arrays of the same shape, got {predictions.shape} and "
                f"{realized_returns.shape}"
            )
        daily = np.empty(predictions.shape[0])
        for day in range(predictions.shape[0]):
            books = self.daily_weights(predictions[day])
            daily[day] = float(books.weights @ realized_returns[day])
        return daily

    def net_asset_value(self, predictions: np.ndarray, realized_returns: np.ndarray,
                        initial_nav: float = 1.0) -> np.ndarray:
        """Compounded NAV path starting from ``initial_nav``."""
        if initial_nav <= 0:
            raise BacktestError("initial_nav must be positive")
        returns = self.returns(predictions, realized_returns)
        return initial_nav * np.cumprod(1.0 + returns)


def long_short_returns(
    predictions: np.ndarray,
    realized_returns: np.ndarray,
    long_k: int = LONG_POSITIONS,
    short_k: int = SHORT_POSITIONS,
) -> np.ndarray:
    """Convenience wrapper: daily long-short returns for a prediction panel."""
    portfolio = LongShortPortfolio(long_k=long_k, short_k=short_k)
    return portfolio.returns(predictions, realized_returns)
