"""Baseline alpha-mining approaches the paper compares against.

* :mod:`repro.baselines.genetic` — the genetic-programming formulaic-alpha
  miner (``alpha_G``);
* :mod:`repro.baselines.neural`  — the complex machine-learning alphas
  (Rank_LSTM and RSR) together with the numpy autograd engine they run on.
"""

from . import genetic, neural
from .genetic import GeneticAlphaMiner, GeneticConfig, GeneticResult
from .neural import RankLSTM, RSRModel, TrainingConfig, train_rank_lstm, train_rsr

__all__ = [
    "GeneticAlphaMiner",
    "GeneticConfig",
    "GeneticResult",
    "RSRModel",
    "RankLSTM",
    "TrainingConfig",
    "genetic",
    "neural",
    "train_rank_lstm",
    "train_rsr",
]
