"""Genetic-programming formulaic-alpha baseline (``alpha_G``)."""

from .expression import (
    ConstantTerminal,
    ExpressionTree,
    FeatureTerminal,
    FunctionNode,
    Node,
    random_tree,
)
from .functions import FUNCTION_SET, GPFunction, get_function, list_functions
from .genetic import GeneticAlphaMiner, GeneticConfig, GeneticIndividual, GeneticResult

__all__ = [
    "ConstantTerminal",
    "ExpressionTree",
    "FUNCTION_SET",
    "FeatureTerminal",
    "FunctionNode",
    "GPFunction",
    "GeneticAlphaMiner",
    "GeneticConfig",
    "GeneticIndividual",
    "GeneticResult",
    "Node",
    "get_function",
    "list_functions",
    "random_tree",
]
