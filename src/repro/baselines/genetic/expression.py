"""Expression trees for the genetic-programming baseline.

A formulaic alpha is a tree whose internal nodes are primitives from
:mod:`repro.baselines.genetic.functions` and whose leaves are either feature
terminals (one of the paper's 13 feature types, read on the most recent day
of the input window) or ephemeral constants.  Trees are evaluated in a
vectorised way over a ``(days, stocks, features)`` terminal array, producing
a ``(days, stocks)`` prediction panel directly comparable to AlphaEvolve's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...config import make_rng
from ...errors import BaselineError
from .functions import GPFunction, get_function, list_functions

__all__ = ["Node", "FeatureTerminal", "ConstantTerminal", "FunctionNode",
           "ExpressionTree", "random_tree"]


class Node:
    """Base class of expression-tree nodes."""

    def evaluate(self, terminals: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def children(self) -> list["Node"]:
        """Direct children (empty for terminals)."""
        return []

    def copy(self) -> "Node":  # pragma: no cover - overridden
        raise NotImplementedError

    def render(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return 1 + sum(child.size() for child in self.children())

    def depth(self) -> int:
        """Depth of the subtree rooted here (a lone terminal has depth 1)."""
        if not self.children():
            return 1
        return 1 + max(child.depth() for child in self.children())


@dataclass
class FeatureTerminal(Node):
    """A leaf reading one feature type (column of the terminal array)."""

    feature: int
    name: str = ""

    def evaluate(self, terminals: np.ndarray) -> np.ndarray:
        return terminals[..., self.feature]

    def copy(self) -> "FeatureTerminal":
        return FeatureTerminal(self.feature, self.name)

    def render(self) -> str:
        return self.name or f"x{self.feature}"


@dataclass
class ConstantTerminal(Node):
    """A leaf holding an ephemeral constant."""

    value: float

    def evaluate(self, terminals: np.ndarray) -> np.ndarray:
        return np.full(terminals.shape[:-1], self.value)

    def copy(self) -> "ConstantTerminal":
        return ConstantTerminal(self.value)

    def render(self) -> str:
        return f"{self.value:.4g}"


@dataclass
class FunctionNode(Node):
    """An internal node applying a primitive to its children."""

    function: GPFunction
    operands: list[Node]

    def __post_init__(self) -> None:
        if len(self.operands) != self.function.arity:
            raise BaselineError(
                f"function {self.function.name} needs {self.function.arity} operands"
            )

    def evaluate(self, terminals: np.ndarray) -> np.ndarray:
        return self.function(*(child.evaluate(terminals) for child in self.operands))

    def children(self) -> list[Node]:
        return self.operands

    def copy(self) -> "FunctionNode":
        return FunctionNode(self.function, [child.copy() for child in self.operands])

    def render(self) -> str:
        if self.function.symbol and self.function.arity == 2:
            left, right = (child.render() for child in self.operands)
            return f"({left} {self.function.symbol} {right})"
        args = ", ".join(child.render() for child in self.operands)
        return f"{self.function.name}({args})"


@dataclass
class ExpressionTree:
    """A formulaic alpha: an expression tree plus bookkeeping."""

    root: Node
    feature_names: tuple[str, ...] = ()
    name: str = "alpha_G"

    def evaluate(self, terminals: np.ndarray) -> np.ndarray:
        """Evaluate over a ``(..., features)`` terminal array."""
        terminals = np.asarray(terminals, dtype=np.float64)
        if terminals.ndim < 1:
            raise BaselineError("terminal array must have a trailing feature axis")
        return self.root.evaluate(terminals)

    def copy(self, name: str | None = None) -> "ExpressionTree":
        """Deep-copy the tree."""
        return ExpressionTree(self.root.copy(), self.feature_names,
                              name if name is not None else self.name)

    def size(self) -> int:
        """Total number of nodes."""
        return self.root.size()

    def depth(self) -> int:
        """Tree depth."""
        return self.root.depth()

    def render(self) -> str:
        """Human-readable formula."""
        return self.root.render()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()

    # ------------------------------------------------------------------
    def nodes(self) -> list[tuple[Node, Node | None, int]]:
        """Flatten the tree into ``(node, parent, child_position)`` triples."""
        flat: list[tuple[Node, Node | None, int]] = []

        def visit(node: Node, parent: Node | None, position: int) -> None:
            flat.append((node, parent, position))
            for index, child in enumerate(node.children()):
                visit(child, node, index)

        visit(self.root, None, 0)
        return flat

    def replace_node(self, parent: Node | None, position: int, replacement: Node) -> None:
        """Replace the child of ``parent`` at ``position`` (or the root)."""
        if parent is None:
            self.root = replacement
        else:
            parent.children()[position] = replacement


def random_tree(
    num_features: int,
    feature_names: tuple[str, ...] = (),
    max_depth: int = 4,
    constant_probability: float = 0.15,
    grow: bool = True,
    seed: int | np.random.Generator | None = None,
) -> ExpressionTree:
    """Generate a random expression tree (gplearn's grow/full initialisation)."""
    if num_features <= 0:
        raise BaselineError("num_features must be positive")
    if max_depth < 1:
        raise BaselineError("max_depth must be at least 1")
    rng = make_rng(seed)
    functions = list_functions()

    def terminal() -> Node:
        if rng.random() < constant_probability:
            return ConstantTerminal(float(np.round(rng.normal(0.0, 1.0), 4)))
        feature = int(rng.integers(0, num_features))
        name = feature_names[feature] if feature < len(feature_names) else ""
        return FeatureTerminal(feature, name)

    def build(depth: int) -> Node:
        at_max = depth >= max_depth
        make_terminal = at_max or (grow and rng.random() < 0.3 and depth > 1)
        if make_terminal:
            return terminal()
        function = functions[int(rng.integers(0, len(functions)))]
        return FunctionNode(function, [build(depth + 1) for _ in range(function.arity)])

    root = build(1)
    if not isinstance(root, FunctionNode):
        # Ensure the tree is a genuine formula rather than a bare terminal.
        function = get_function("sub")
        root = FunctionNode(function, [root, terminal()])
    return ExpressionTree(root, feature_names)
