"""Protected function set for the genetic-programming baseline.

The genetic algorithm of [14, 15] (the ``alpha_G`` baseline of Section 5.2)
mines *formulaic* alphas: algebraic expressions over scalar features.  Its
function set therefore contains only scalar arithmetic, protected against
numerical blow-ups exactly like gplearn's built-ins: division by small
numbers, logarithms of non-positive numbers and square roots of negatives
all degrade gracefully instead of producing NaNs that would poison the
cross-sectional fitness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ...errors import BaselineError

__all__ = ["GPFunction", "FUNCTION_SET", "get_function", "list_functions"]

_EPS = 1e-9
_CLIP = 1e6


def _sanitize(values: np.ndarray) -> np.ndarray:
    return np.clip(
        np.nan_to_num(values, nan=0.0, posinf=_CLIP, neginf=-_CLIP), -_CLIP, _CLIP
    )


@dataclass(frozen=True)
class GPFunction:
    """A primitive function of the expression language."""

    name: str
    arity: int
    func: Callable[..., np.ndarray]
    symbol: str | None = None

    def __call__(self, *args: np.ndarray) -> np.ndarray:
        if len(args) != self.arity:
            raise BaselineError(
                f"function {self.name} expects {self.arity} arguments, got {len(args)}"
            )
        return _sanitize(self.func(*args))


def _protected_div(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return x / np.where(np.abs(y) < _EPS, 1.0, y)


def _protected_log(x: np.ndarray) -> np.ndarray:
    return np.log(np.maximum(np.abs(x), _EPS))


def _protected_sqrt(x: np.ndarray) -> np.ndarray:
    return np.sqrt(np.abs(x))


def _protected_inv(x: np.ndarray) -> np.ndarray:
    return 1.0 / np.where(np.abs(x) < _EPS, 1.0, x)


FUNCTION_SET: dict[str, GPFunction] = {
    fn.name: fn
    for fn in (
        GPFunction("add", 2, np.add, symbol="+"),
        GPFunction("sub", 2, np.subtract, symbol="-"),
        GPFunction("mul", 2, np.multiply, symbol="*"),
        GPFunction("div", 2, _protected_div, symbol="/"),
        GPFunction("max", 2, np.maximum),
        GPFunction("min", 2, np.minimum),
        GPFunction("neg", 1, np.negative),
        GPFunction("abs", 1, np.abs),
        GPFunction("log", 1, _protected_log),
        GPFunction("sqrt", 1, _protected_sqrt),
        GPFunction("inv", 1, _protected_inv),
        GPFunction("sin", 1, np.sin),
        GPFunction("cos", 1, np.cos),
        GPFunction("tanh", 1, np.tanh),
        GPFunction("sign", 1, np.sign),
    )
}


def get_function(name: str) -> GPFunction:
    """Look up a primitive by name."""
    try:
        return FUNCTION_SET[name]
    except KeyError as exc:
        raise BaselineError(f"unknown GP function {name!r}") from exc


def list_functions() -> list[GPFunction]:
    """All registered primitives in a stable order."""
    return [FUNCTION_SET[name] for name in sorted(FUNCTION_SET)]
