"""Genetic-programming alpha miner (the ``alpha_G`` baseline, Section 5.2).

The implementation follows the gplearn-style algorithm the paper's baseline
[15] builds on: a generational loop with tournament selection where each new
individual is produced by crossover, subtree mutation, hoist mutation, point
mutation or plain reproduction of a tournament winner.  The probabilities are
the ones the paper quotes: crossover 0.4, subtree mutation 0.01, hoist
mutation 0, point mutation 0.01 and point-replace 0.4 (the remainder of the
probability mass is reproduction).

The fitness is the same IC used by AlphaEvolve (Eq. 1), computed on the
validation split, and the same 15 % correlation cutoff against previously
accepted alphas can be enforced, so Tables 1, 2 and 6 compare like with like.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...backtest.engine import BacktestEngine
from ...config import (
    GP_CROSSOVER_PROB,
    GP_HOIST_MUTATION_PROB,
    GP_POINT_MUTATION_PROB,
    GP_POINT_REPLACE_PROB,
    GP_SUBTREE_MUTATION_PROB,
    make_rng,
)
from ...core.correlation import CorrelationFilter
from ...core.fitness import INVALID_FITNESS, mean_ic
from ...data.dataset import TaskSet
from ...errors import BaselineError
from .expression import (
    ConstantTerminal,
    ExpressionTree,
    FeatureTerminal,
    FunctionNode,
    Node,
    random_tree,
)
from .functions import list_functions

__all__ = ["GeneticConfig", "GeneticIndividual", "GeneticResult", "GeneticAlphaMiner"]


@dataclass(frozen=True)
class GeneticConfig:
    """Hyper-parameters of the genetic-programming search."""

    population_size: int = 100
    tournament_size: int = 10
    max_candidates: int | None = 2000
    max_seconds: float | None = None
    max_depth: int = 6
    init_max_depth: int = 4
    crossover_prob: float = GP_CROSSOVER_PROB
    subtree_mutation_prob: float = GP_SUBTREE_MUTATION_PROB
    hoist_mutation_prob: float = GP_HOIST_MUTATION_PROB
    point_mutation_prob: float = GP_POINT_MUTATION_PROB
    point_replace_prob: float = GP_POINT_REPLACE_PROB

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise BaselineError("population_size must be at least 2")
        if not (1 <= self.tournament_size <= self.population_size):
            raise BaselineError("tournament_size must lie in [1, population_size]")
        total = (
            self.crossover_prob
            + self.subtree_mutation_prob
            + self.hoist_mutation_prob
            + self.point_mutation_prob
        )
        if total > 1.0 + 1e-9:
            raise BaselineError("genetic operator probabilities must sum to at most 1")
        if self.max_candidates is None and self.max_seconds is None:
            raise BaselineError("at least one of max_candidates/max_seconds is required")


@dataclass
class GeneticIndividual:
    """A scored member of the GP population."""

    tree: ExpressionTree
    fitness: float
    valid_predictions: np.ndarray | None = None


@dataclass
class GeneticResult:
    """Outcome of one GP run."""

    best: GeneticIndividual
    generations: int
    evaluations: int
    history: list[float] = field(default_factory=list)


class GeneticAlphaMiner:
    """Mines formulaic alphas with genetic programming over a task set."""

    def __init__(
        self,
        taskset: TaskSet,
        config: GeneticConfig | None = None,
        correlation_filter: CorrelationFilter | None = None,
        backtest_engine: BacktestEngine | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.taskset = taskset
        self.config = config or GeneticConfig()
        self.correlation_filter = correlation_filter
        self.backtest_engine = backtest_engine or BacktestEngine(taskset)
        self.rng = make_rng(seed)
        self._functions = list_functions()
        # Terminals: the 13 feature types on the most recent day of the window.
        self._terminals = {
            split: taskset.split_features(split)[:, :, :, -1]
            for split in ("train", "valid", "test")
        }
        self._valid_labels = taskset.split_labels("valid")
        self._evaluations = 0

    # ------------------------------------------------------------------
    @property
    def num_terminal_features(self) -> int:
        """Number of feature terminals available to the expression trees."""
        return self.taskset.num_features

    def evaluate_tree(self, tree: ExpressionTree, split: str = "valid") -> np.ndarray:
        """Predictions of ``tree`` on one split, shape ``(days, stocks)``."""
        return tree.evaluate(self._terminals[split])

    def _score(self, tree: ExpressionTree) -> GeneticIndividual:
        self._evaluations += 1
        predictions = self.evaluate_tree(tree, "valid")
        if not np.isfinite(predictions).all() or predictions.std() < 1e-12:
            return GeneticIndividual(tree=tree, fitness=INVALID_FITNESS)
        fitness = mean_ic(predictions, self._valid_labels)
        if self.correlation_filter is not None and self.correlation_filter.num_references:
            returns = self.backtest_engine.portfolio.returns(predictions, self._valid_labels)
            if not self.correlation_filter.passes(returns):
                return GeneticIndividual(
                    tree=tree, fitness=INVALID_FITNESS, valid_predictions=predictions
                )
        return GeneticIndividual(tree=tree, fitness=fitness, valid_predictions=predictions)

    # ------------------------------------------------------------------
    # Variation operators
    # ------------------------------------------------------------------
    def _random_tree(self) -> ExpressionTree:
        return random_tree(
            self.num_terminal_features,
            feature_names=tuple(),
            max_depth=self.config.init_max_depth,
            seed=self.rng,
        )

    def _random_subtree_point(self, tree: ExpressionTree) -> tuple[Node, Node | None, int]:
        flat = tree.nodes()
        index = int(self.rng.integers(0, len(flat)))
        return flat[index]

    def _crossover(self, parent: ExpressionTree, donor: ExpressionTree) -> ExpressionTree:
        child = parent.copy()
        _, target_parent, target_pos = self._random_subtree_point(child)
        donor_node, _, _ = self._random_subtree_point(donor)
        child.replace_node(target_parent, target_pos, donor_node.copy())
        return self._enforce_depth(child)

    def _subtree_mutation(self, parent: ExpressionTree) -> ExpressionTree:
        return self._crossover(parent, self._random_tree())

    def _hoist_mutation(self, parent: ExpressionTree) -> ExpressionTree:
        child = parent.copy()
        node, node_parent, node_pos = self._random_subtree_point(child)
        descendants = ExpressionTree(node).nodes()
        hoisted, _, _ = descendants[int(self.rng.integers(0, len(descendants)))]
        child.replace_node(node_parent, node_pos, hoisted.copy())
        return child

    def _point_mutation(self, parent: ExpressionTree) -> ExpressionTree:
        child = parent.copy()
        for node, node_parent, node_pos in child.nodes():
            if self.rng.random() >= self.config.point_replace_prob:
                continue
            if isinstance(node, FunctionNode):
                same_arity = [f for f in self._functions if f.arity == node.function.arity]
                node.function = same_arity[int(self.rng.integers(0, len(same_arity)))]
            elif isinstance(node, FeatureTerminal):
                node.feature = int(self.rng.integers(0, self.num_terminal_features))
                node.name = ""
            elif isinstance(node, ConstantTerminal):
                node.value = float(np.round(self.rng.normal(0.0, 1.0), 4))
            else:  # pragma: no cover - defensive
                child.replace_node(node_parent, node_pos, self._random_tree().root)
        return child

    def _enforce_depth(self, tree: ExpressionTree) -> ExpressionTree:
        """Rebuild trees that exceed the depth limit (bloat control)."""
        if tree.depth() <= self.config.max_depth:
            return tree
        return self._random_tree()

    def _offspring(self, population: list[GeneticIndividual]) -> ExpressionTree:
        parent = self._tournament(population).tree
        roll = self.rng.random()
        config = self.config
        if roll < config.crossover_prob:
            donor = self._tournament(population).tree
            return self._crossover(parent, donor)
        roll -= config.crossover_prob
        if roll < config.subtree_mutation_prob:
            return self._subtree_mutation(parent)
        roll -= config.subtree_mutation_prob
        if roll < config.hoist_mutation_prob:
            return self._hoist_mutation(parent)
        roll -= config.hoist_mutation_prob
        if roll < config.point_mutation_prob:
            return self._point_mutation(parent)
        return parent.copy()

    def _tournament(self, population: list[GeneticIndividual]) -> GeneticIndividual:
        indices = self.rng.choice(
            len(population),
            size=min(self.config.tournament_size, len(population)),
            replace=False,
        )
        contenders = [population[int(i)] for i in indices]
        return max(contenders, key=lambda individual: individual.fitness)

    # ------------------------------------------------------------------
    def run(self) -> GeneticResult:
        """Evolve formulaic alphas until the candidate budget is exhausted."""
        import time

        config = self.config
        start = time.perf_counter()
        self._evaluations = 0

        def exhausted() -> bool:
            if config.max_candidates is not None and self._evaluations >= config.max_candidates:
                return True
            if config.max_seconds is not None and \
                    time.perf_counter() - start >= config.max_seconds:
                return True
            return False

        population = [self._score(self._random_tree()) for _ in range(config.population_size)]
        best = max(population, key=lambda individual: individual.fitness)
        history = [best.fitness]
        generations = 0

        while not exhausted():
            generations += 1
            offspring = []
            for _ in range(config.population_size):
                if exhausted():
                    break
                offspring.append(self._score(self._offspring(population)))
            if not offspring:
                break
            population = offspring
            generation_best = max(population, key=lambda individual: individual.fitness)
            if generation_best.fitness > best.fitness:
                best = generation_best
            history.append(best.fitness)

        return GeneticResult(
            best=best,
            generations=generations,
            evaluations=self._evaluations,
            history=history,
        )
