"""Complex machine-learning alpha baselines (Rank_LSTM, RSR) and their substrate."""

from .autograd import Tensor, as_tensor, concatenate, stack, uniform, zeros
from .layers import Dense, LSTM, Module, Sequential
from .losses import combined_ranking_loss, mse_loss, pairwise_ranking_loss
from .optim import Adam, Optimizer, SGD
from .rank_lstm import GridSearchResult, RankLSTM, grid_search_rank_lstm, train_rank_lstm
from .rsr import RSRModel, train_rsr
from .training import (
    SequenceData,
    TrainingConfig,
    TrainingOutcome,
    prepare_sequences,
    score_predictions,
)

__all__ = [
    "Adam",
    "Dense",
    "GridSearchResult",
    "LSTM",
    "Module",
    "Optimizer",
    "RSRModel",
    "RankLSTM",
    "SGD",
    "Sequential",
    "SequenceData",
    "Tensor",
    "TrainingConfig",
    "TrainingOutcome",
    "as_tensor",
    "combined_ranking_loss",
    "concatenate",
    "grid_search_rank_lstm",
    "mse_loss",
    "pairwise_ranking_loss",
    "prepare_sequences",
    "score_predictions",
    "stack",
    "train_rank_lstm",
    "train_rsr",
    "uniform",
    "zeros",
]
