"""Minimal reverse-mode automatic differentiation over numpy arrays.

The complex machine-learning baselines of the paper (Rank_LSTM and RSR) are
neural networks.  The original implementations use TensorFlow; this offline
reproduction instead ships a small, dependency-free autograd engine that
supports exactly the operations those models need: dense layers, LSTM cells,
matrix products, element-wise non-linearities, reductions and the pairwise
ranking loss.

Design notes
------------
* A :class:`Tensor` wraps a ``float64`` numpy array, remembers the tensors it
  was computed from and a local backward function.
* Gradients are accumulated by a reverse topological sweep from the tensor
  ``backward()`` is called on (typically the scalar loss).
* Broadcasting is supported by summing gradients back to the original shape
  (:func:`_unbroadcast`), which covers bias additions and scalar scaling.
"""

from __future__ import annotations

import numpy as np

from ...errors import BaselineError

__all__ = ["Tensor", "as_tensor", "zeros", "uniform", "concatenate", "stack"]


def _unbroadcast(gradient: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``gradient`` down to ``shape`` (inverse of numpy broadcasting)."""
    if gradient.shape == shape:
        return gradient
    # Remove leading broadcast axes.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)


class Tensor:
    """A differentiable value in the computation graph."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(self, data, requires_grad: bool = False, parents: tuple = (),
                 backward=None, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents = parents
        self._backward = backward
        self.name = name

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    def item(self) -> float:
        """The scalar value (raises for non-scalars)."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._not_scalar()

    def _not_scalar(self) -> float:
        raise BaselineError(f"item() called on tensor of shape {self.shape}")

    def detach(self) -> "Tensor":
        """A new tensor sharing the data but cut out of the graph."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: tuple, backward) -> "Tensor":
        requires_grad = any(parent.requires_grad for parent in parents)
        return Tensor(data, requires_grad=requires_grad, parents=parents,
                      backward=backward if requires_grad else None)

    def _accumulate(self, gradient: np.ndarray) -> None:
        gradient = _unbroadcast(np.asarray(gradient, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = gradient.copy()
        else:
            self.grad += gradient

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient)
            if other.requires_grad:
                other._accumulate(gradient)

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-gradient)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient * other.data)
            if other.requires_grad:
                other._accumulate(gradient * self.data)

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient / other.data)
            if other.requires_grad:
                other._accumulate(-gradient * self.data / (other.data**2))

        return self._make(self.data / other.data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise BaselineError("only scalar exponents are supported")

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient * exponent * self.data ** (exponent - 1))

        return self._make(self.data**exponent, (self,), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product (supports batched operands via numpy semantics)."""
        other = self._lift(other)

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ gradient)

        return self._make(self.data @ other.data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Non-linearities
    # ------------------------------------------------------------------
    def tanh(self) -> "Tensor":
        """Hyperbolic tangent."""
        output = np.tanh(self.data)

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient * (1.0 - output**2))

        return self._make(output, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Logistic sigmoid."""
        output = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient * output * (1.0 - output))

        return self._make(output, (self,), backward)

    def relu(self) -> "Tensor":
        """Rectified linear unit."""
        mask = (self.data > 0).astype(np.float64)

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient * mask)

        return self._make(self.data * mask, (self,), backward)

    def leaky_relu(self, slope: float = 0.2) -> "Tensor":
        """Leaky ReLU (used by the RSR relational attention)."""
        mask = np.where(self.data > 0, 1.0, slope)

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient * mask)

        return self._make(self.data * mask, (self,), backward)

    def exp(self) -> "Tensor":
        """Element-wise exponential (clipped for stability)."""
        output = np.exp(np.clip(self.data, -60.0, 60.0))

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient * output)

        return self._make(output, (self,), backward)

    def log(self) -> "Tensor":
        """Element-wise natural logarithm (inputs clipped away from zero)."""
        safe = np.maximum(self.data, 1e-12)

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient / safe)

        return self._make(np.log(safe), (self,), backward)

    # ------------------------------------------------------------------
    # Shape / reduction
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (or everything)."""
        output = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(gradient: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(gradient, dtype=np.float64)
            if axis is None:
                expanded = np.broadcast_to(grad, self.data.shape)
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                expanded = np.broadcast_to(grad, self.data.shape)
            self._accumulate(expanded)

        return self._make(output, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis`` (or everything)."""
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        """Reshape, propagating gradients back to the original shape."""
        original = self.data.shape

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(gradient).reshape(original))

        return self._make(self.data.reshape(*shape), (self,), backward)

    def transpose(self) -> "Tensor":
        """Swap the last two axes."""
        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(gradient, -1, -2))

        return self._make(np.swapaxes(self.data, -1, -2), (self,), backward)

    def slice(self, index) -> "Tensor":
        """Static indexing/slicing with gradient scatter-back."""
        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                full[index] = gradient
                self._accumulate(full)

        return self._make(self.data[index], (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        return self.slice(index)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor."""
        if not self.requires_grad:
            raise BaselineError("called backward() on a tensor that requires no grad")
        if gradient is None:
            if self.data.size != 1:
                raise BaselineError("backward() without a gradient needs a scalar tensor")
            gradient = np.ones_like(self.data)

        topo_order: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo_order.append(node)

        visit(self)
        self._accumulate(np.asarray(gradient, dtype=np.float64))
        for node in reversed(topo_order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------

def as_tensor(value, requires_grad: bool = False) -> Tensor:
    """Wrap ``value`` into a :class:`Tensor` (no-op for tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    """A zero-filled tensor."""
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def uniform(*shape: int, scale: float = 0.1, requires_grad: bool = True,
            rng: np.random.Generator | None = None) -> Tensor:
    """A uniformly initialised tensor in ``[-scale, scale]``."""
    rng = rng or np.random.default_rng()
    return Tensor(rng.uniform(-scale, scale, size=shape), requires_grad=requires_grad)


def concatenate(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    if not tensors:
        raise BaselineError("cannot concatenate an empty list of tensors")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires_grad = any(t.requires_grad for t in tensors)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(gradient: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * gradient.ndim
                slicer[axis] = slice(int(start), int(stop))
                tensor._accumulate(gradient[tuple(slicer)])

    return Tensor(data, requires_grad=requires_grad, parents=tuple(tensors),
                  backward=backward if requires_grad else None)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    if not tensors:
        raise BaselineError("cannot stack an empty list of tensors")
    data = np.stack([t.data for t in tensors], axis=axis)
    requires_grad = any(t.requires_grad for t in tensors)

    def backward(gradient: np.ndarray) -> None:
        for position, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(np.take(gradient, position, axis=axis))

    return Tensor(data, requires_grad=requires_grad, parents=tuple(tensors),
                  backward=backward if requires_grad else None)
