"""Neural-network building blocks on top of the autograd engine.

Provides the layers needed by the Rank_LSTM and RSR baselines: dense layers,
an LSTM (applied over the full input sequence) and a tiny Module system with
parameter collection for the optimisers.
"""

from __future__ import annotations

import numpy as np

from ...config import make_rng
from ...errors import BaselineError
from .autograd import Tensor, concatenate, zeros

__all__ = ["Module", "Dense", "LSTM", "Sequential"]


class Module:
    """Base class with parameter registration and collection."""

    def parameters(self) -> list[Tensor]:
        """All trainable tensors of this module and its sub-modules."""
        found: list[Tensor] = []
        seen: set[int] = set()
        for value in vars(self).values():
            for parameter in _collect(value):
                if id(parameter) not in seen:
                    seen.add(id(parameter))
                    found.append(parameter)
        return found

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return int(sum(p.data.size for p in self.parameters()))

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def _collect(value) -> list[Tensor]:
    if isinstance(value, Tensor):
        return [value] if value.requires_grad else []
    if isinstance(value, Module):
        return value.parameters()
    if isinstance(value, (list, tuple)):
        nested: list[Tensor] = []
        for item in value:
            nested.extend(_collect(item))
        return nested
    return []


class Dense(Module):
    """Fully connected layer ``y = activation(x W + b)``."""

    def __init__(self, in_features: int, out_features: int, activation: str | None = None,
                 seed: int | np.random.Generator | None = None) -> None:
        if in_features <= 0 or out_features <= 0:
            raise BaselineError("layer sizes must be positive")
        rng = make_rng(seed)
        scale = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Tensor(
            rng.uniform(-scale, scale, size=(in_features, out_features)), requires_grad=True
        )
        self.bias = zeros(out_features, requires_grad=True)
        self.activation = activation

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs.matmul(self.weight) + self.bias
        if self.activation is None:
            return output
        if self.activation == "tanh":
            return output.tanh()
        if self.activation == "relu":
            return output.relu()
        if self.activation == "sigmoid":
            return output.sigmoid()
        if self.activation == "leaky_relu":
            return output.leaky_relu()
        raise BaselineError(f"unknown activation {self.activation!r}")


class LSTM(Module):
    """A single-layer LSTM applied over a full sequence.

    The input is a tensor of shape ``(batch, seq_len, input_size)``; the layer
    returns the final hidden state of shape ``(batch, hidden_size)`` (which is
    what Rank_LSTM feeds to its prediction head and what RSR uses as the
    sequential embedding of each stock).
    """

    def __init__(self, input_size: int, hidden_size: int,
                 seed: int | np.random.Generator | None = None) -> None:
        if input_size <= 0 or hidden_size <= 0:
            raise BaselineError("input_size and hidden_size must be positive")
        rng = make_rng(seed)
        self.input_size = input_size
        self.hidden_size = hidden_size
        scale = np.sqrt(6.0 / (input_size + 2 * hidden_size))
        # One fused weight matrix for the 4 gates: input, forget, cell, output.
        self.weight = Tensor(
            rng.uniform(-scale, scale, size=(input_size + hidden_size, 4 * hidden_size)),
            requires_grad=True,
        )
        bias = np.zeros(4 * hidden_size)
        # Positive forget-gate bias: standard trick for gradient flow.
        bias[hidden_size: 2 * hidden_size] = 1.0
        self.bias = Tensor(bias, requires_grad=True)

    def forward(self, inputs: Tensor, return_sequence: bool = False):
        if inputs.ndim != 3:
            raise BaselineError(
                f"LSTM expects (batch, seq_len, input_size), got shape {inputs.shape}"
            )
        batch, seq_len, _ = inputs.shape
        hidden = Tensor(np.zeros((batch, self.hidden_size)))
        cell = Tensor(np.zeros((batch, self.hidden_size)))
        H = self.hidden_size
        outputs: list[Tensor] = []
        for step in range(seq_len):
            frame = inputs[:, step, :]
            combined = concatenate([frame, hidden], axis=-1)
            gates = combined.matmul(self.weight) + self.bias
            input_gate = gates[:, 0 * H:1 * H].sigmoid()
            forget_gate = gates[:, 1 * H:2 * H].sigmoid()
            candidate = gates[:, 2 * H:3 * H].tanh()
            output_gate = gates[:, 3 * H:4 * H].sigmoid()
            cell = forget_gate * cell + input_gate * candidate
            hidden = output_gate * cell.tanh()
            outputs.append(hidden)
        if return_sequence:
            return outputs
        return hidden


class Sequential(Module):
    """A simple feed-forward container."""

    def __init__(self, layers: list[Module]) -> None:
        if not layers:
            raise BaselineError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for layer in self.layers:
            output = layer(output)
        return output
