"""Loss functions for the neural baselines.

Rank_LSTM and RSR (Feng et al. [10], the paper's baselines (2) and (3)) are
trained with a combination of a point-wise regression loss and a pair-wise
ranking loss::

    L = mse(pred, y) + alpha * mean_{i,j} max(0, -(pred_i - pred_j)(y_i - y_j))

The hyper-parameter ``alpha`` balancing the two terms is part of the grid
search of Section 5.2.
"""

from __future__ import annotations


from ...errors import BaselineError
from .autograd import Tensor, as_tensor

__all__ = ["mse_loss", "pairwise_ranking_loss", "combined_ranking_loss"]


def mse_loss(predictions: Tensor, targets) -> Tensor:
    """Mean squared error."""
    targets = as_tensor(targets)
    if predictions.shape != targets.shape:
        raise BaselineError(
            f"predictions {predictions.shape} and targets {targets.shape} differ"
        )
    difference = predictions - targets
    return (difference * difference).mean()


def pairwise_ranking_loss(predictions: Tensor, targets) -> Tensor:
    """Pair-wise hinge ranking loss over the cross-section of stocks.

    ``predictions`` and ``targets`` are 1-D tensors over stocks.  For every
    ordered pair the loss penalises predicted orderings that contradict the
    realised ordering: ``max(0, -(p_i - p_j) * (y_i - y_j))``.
    """
    targets = as_tensor(targets)
    if predictions.ndim != 1 or targets.ndim != 1:
        raise BaselineError("pairwise ranking loss expects 1-D prediction/target vectors")
    n = predictions.shape[0]
    if n < 2:
        raise BaselineError("need at least two stocks for a ranking loss")
    pred_diff = predictions.reshape(n, 1) - predictions.reshape(1, n)
    target_diff = as_tensor(targets.data.reshape(n, 1) - targets.data.reshape(1, n))
    product = (pred_diff * target_diff) * (-1.0)
    return product.relu().mean()


def combined_ranking_loss(predictions: Tensor, targets, alpha: float = 1.0) -> Tensor:
    """The Rank_LSTM training objective: MSE plus ``alpha`` times the rank loss."""
    if alpha < 0:
        raise BaselineError("alpha must be non-negative")
    loss = mse_loss(predictions, targets)
    if alpha > 0:
        loss = loss + pairwise_ranking_loss(predictions, targets) * alpha
    return loss
