"""Gradient-descent optimisers for the autograd engine."""

from __future__ import annotations

import numpy as np

from ...errors import BaselineError
from .autograd import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class holding the parameter list."""

    def __init__(self, parameters: list[Tensor], learning_rate: float) -> None:
        if learning_rate <= 0:
            raise BaselineError("learning_rate must be positive")
        if not parameters:
            raise BaselineError("optimiser received no parameters")
        self.parameters = list(parameters)
        self.learning_rate = learning_rate

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Tensor], learning_rate: float = 0.01,
                 momentum: float = 0.0) -> None:
        super().__init__(parameters, learning_rate)
        if not (0.0 <= momentum < 1.0):
            raise BaselineError("momentum must lie in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one update to every parameter with a gradient."""
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.learning_rate * parameter.grad
            parameter.data += velocity


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, parameters: list[Tensor], learning_rate: float = 0.001,
                 beta1: float = 0.9, beta2: float = 0.999, epsilon: float = 1e-8) -> None:
        super().__init__(parameters, learning_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one Adam update to every parameter with a gradient."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for parameter, first, second in zip(
            self.parameters, self._first_moment, self._second_moment
        ):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            first *= self.beta1
            first += (1.0 - self.beta1) * gradient
            second *= self.beta2
            second += (1.0 - self.beta2) * gradient**2
            corrected_first = first / bias1
            corrected_second = second / bias2
            parameter.data -= self.learning_rate * corrected_first / (
                np.sqrt(corrected_second) + self.epsilon
            )
