"""Rank_LSTM baseline (Section 5.2, baseline (2)).

Rank_LSTM is an LSTM whose final hidden state is mapped through a fully
connected layer to the predicted return of each stock, trained with the
combined point-wise + pair-wise ranking loss of Feng et al. [10].  The paper
grid-searches the sequence length, the number of hidden units and the
loss-balance hyper-parameter; :func:`grid_search_rank_lstm` reproduces that
selection on the validation IC and reports mean/std over random seeds like
Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from ...config import make_rng
from ...data.dataset import TaskSet
from ...errors import BaselineError
from .autograd import Tensor
from .layers import Dense, LSTM, Module
from .losses import combined_ranking_loss
from .optim import Adam
from .training import (
    SequenceData,
    TrainingConfig,
    TrainingOutcome,
    prepare_sequences,
    score_predictions,
    training_day_order,
)

__all__ = ["RankLSTM", "train_rank_lstm", "grid_search_rank_lstm", "GridSearchResult"]


class RankLSTM(Module):
    """LSTM encoder + fully connected prediction head."""

    def __init__(self, input_size: int, hidden_size: int,
                 seed: int | np.random.Generator | None = None) -> None:
        rng = make_rng(seed)
        self.lstm = LSTM(input_size, hidden_size, seed=rng)
        self.head = Dense(hidden_size, 1, seed=rng)
        self.hidden_size = hidden_size

    def embed(self, inputs: Tensor) -> Tensor:
        """Sequential embedding of each stock: the LSTM's final hidden state."""
        return self.lstm(inputs)

    def forward(self, inputs: Tensor) -> Tensor:
        """Predicted return per stock, shape ``(batch,)``."""
        hidden = self.embed(inputs)
        output = self.head(hidden)
        return output.reshape(output.shape[0])


def train_rank_lstm(
    taskset: TaskSet,
    config: TrainingConfig | None = None,
) -> tuple[RankLSTM, TrainingOutcome]:
    """Train Rank_LSTM on the task set's training split.

    Each training step uses one trading day as a batch (the whole
    cross-section of stocks), matching the ranking-loss formulation which is
    defined over a daily cross-section.
    """
    config = config or TrainingConfig()
    data = {split: prepare_sequences(taskset, split, config.sequence_length)
            for split in ("train", "valid", "test")}
    model = RankLSTM(
        input_size=data["train"].inputs.shape[-1],
        hidden_size=config.hidden_size,
        seed=config.seed,
    )
    optimizer = Adam(model.parameters(), learning_rate=config.learning_rate)

    loss_history: list[float] = []
    schedule = training_day_order(
        data["train"].num_days, config.epochs, config.batch_days, config.seed
    )
    for epoch_days in schedule:
        epoch_loss = 0.0
        for day in epoch_days:
            inputs = Tensor(data["train"].inputs[day])
            targets = data["train"].labels[day]
            optimizer.zero_grad()
            predictions = model(inputs)
            loss = combined_ranking_loss(predictions, targets, alpha=config.loss_alpha)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
        loss_history.append(epoch_loss / max(len(epoch_days), 1))

    predictions = {split: predict_panel(model, data[split]) for split in data}
    valid_ic, test_ic = score_predictions(predictions, taskset)
    outcome = TrainingOutcome(
        config=config,
        valid_ic=valid_ic,
        test_ic=test_ic,
        predictions=predictions,
        loss_history=loss_history,
    )
    return model, outcome


def predict_panel(model: RankLSTM, data: SequenceData) -> np.ndarray:
    """Model predictions for every day of a split, shape ``(days, stocks)``."""
    panel = np.empty((data.num_days, data.num_stocks))
    for day in range(data.num_days):
        panel[day] = model(Tensor(data.inputs[day])).data
    return panel


@dataclass
class GridSearchResult:
    """Best configuration found by the Section 5.2 grid search."""

    best_config: TrainingConfig
    best_outcome: TrainingOutcome
    trials: list[TrainingOutcome]

    @property
    def num_trials(self) -> int:
        """Number of configurations evaluated."""
        return len(self.trials)


def grid_search_rank_lstm(
    taskset: TaskSet,
    sequence_lengths: tuple[int, ...] = (4, 8, 16, 32),
    hidden_sizes: tuple[int, ...] = (32, 64, 128, 256),
    loss_alphas: tuple[float, ...] = (0.01, 0.1, 1.0, 10.0),
    learning_rate: float = 0.001,
    epochs: int = 3,
    seed: int = 0,
    max_trials: int | None = None,
) -> GridSearchResult:
    """Grid-search Rank_LSTM hyper-parameters on the validation IC.

    ``max_trials`` optionally truncates the full grid (laptop-scale configs
    use a reduced grid; the defaults are the paper's grids).
    """
    combos = list(product(sequence_lengths, hidden_sizes, loss_alphas))
    if not combos:
        raise BaselineError("the hyper-parameter grid is empty")
    if max_trials is not None:
        combos = combos[:max_trials]
    trials: list[TrainingOutcome] = []
    best: TrainingOutcome | None = None
    best_config: TrainingConfig | None = None
    for sequence_length, hidden_size, loss_alpha in combos:
        config = TrainingConfig(
            sequence_length=sequence_length,
            hidden_size=hidden_size,
            loss_alpha=loss_alpha,
            learning_rate=learning_rate,
            epochs=epochs,
            seed=seed,
        )
        _, outcome = train_rank_lstm(taskset, config)
        trials.append(outcome)
        if best is None or outcome.valid_ic > best.valid_ic:
            best, best_config = outcome, config
    assert best is not None and best_config is not None
    return GridSearchResult(best_config=best_config, best_outcome=best, trials=trials)
