"""RSR baseline (Section 5.2, baseline (3)): relational stock ranking.

RSR extends Rank_LSTM with a graph component that injects relational domain
knowledge: stocks in the same sector (industry) are connected and each
stock's sequential embedding is combined with a relation-weighted aggregate
of its neighbours' embeddings before the prediction head.  Following the
original implementation (and the paper's experiment settings), RSR is built
on top of the *pre-trained* Rank_LSTM: the LSTM embeddings are frozen and
only the relational component and the prediction head are trained.
"""

from __future__ import annotations

import numpy as np

from ...config import make_rng
from ...data.dataset import TaskSet
from ...errors import BaselineError
from .autograd import Tensor, concatenate
from .layers import Dense, Module
from .losses import combined_ranking_loss
from .optim import Adam
from .rank_lstm import RankLSTM
from .training import (
    TrainingConfig,
    TrainingOutcome,
    prepare_sequences,
    score_predictions,
    training_day_order,
)

__all__ = ["RSRModel", "train_rsr"]


class RSRModel(Module):
    """Relational ranking head over frozen sequential embeddings.

    ``adjacency`` is the 0/1 stock-relation matrix (stocks sharing a sector
    or industry); it is row-normalised once.  For a day's embedding matrix
    ``E`` (stocks × hidden) the relational embedding is
    ``R = leaky_relu((A_norm E) W_r)``; the prediction is a dense head over
    ``[E, R]``.
    """

    def __init__(self, hidden_size: int, adjacency: np.ndarray,
                 seed: int | np.random.Generator | None = None) -> None:
        adjacency = np.asarray(adjacency, dtype=np.float64)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise BaselineError("adjacency must be a square matrix")
        rng = make_rng(seed)
        row_sums = adjacency.sum(axis=1, keepdims=True)
        self._normalized_adjacency = adjacency / np.maximum(row_sums, 1.0)
        self.relation_transform = Dense(hidden_size, hidden_size,
                                        activation="leaky_relu", seed=rng)
        self.head = Dense(2 * hidden_size, 1, seed=rng)
        self.hidden_size = hidden_size

    def forward(self, embeddings: Tensor) -> Tensor:
        """Predicted return per stock from an ``(stocks, hidden)`` embedding."""
        if embeddings.ndim != 2:
            raise BaselineError(
                f"RSR expects (stocks, hidden) embeddings, got shape {embeddings.shape}"
            )
        neighbours = Tensor(self._normalized_adjacency).matmul(embeddings)
        relational = self.relation_transform(neighbours)
        combined = concatenate([embeddings, relational], axis=-1)
        output = self.head(combined)
        return output.reshape(output.shape[0])


def train_rsr(
    taskset: TaskSet,
    pretrained: RankLSTM,
    config: TrainingConfig | None = None,
    relation_level: str = "industry",
) -> tuple[RSRModel, TrainingOutcome]:
    """Train the RSR relational component on top of a pre-trained Rank_LSTM.

    The LSTM embeddings are computed once per split and treated as constants
    (the original implementation fine-tunes them very little; freezing keeps
    the offline reproduction fast while preserving the architecture's key
    property — the injection of sector/industry relations).
    """
    config = config or TrainingConfig()
    adjacency = taskset.taxonomy.adjacency(relation_level)

    embeddings = {}
    for split in ("train", "valid", "test"):
        data = prepare_sequences(taskset, split, config.sequence_length)
        panel = np.empty((data.num_days, data.num_stocks, pretrained.hidden_size))
        for day in range(data.num_days):
            panel[day] = pretrained.embed(Tensor(data.inputs[day])).data
        embeddings[split] = panel

    model = RSRModel(pretrained.hidden_size, adjacency, seed=config.seed)
    optimizer = Adam(model.parameters(), learning_rate=config.learning_rate)

    train_labels = taskset.split_labels("train")
    loss_history: list[float] = []
    schedule = training_day_order(
        embeddings["train"].shape[0], config.epochs, config.batch_days, config.seed
    )
    for epoch_days in schedule:
        epoch_loss = 0.0
        for day in epoch_days:
            optimizer.zero_grad()
            predictions = model(Tensor(embeddings["train"][day]))
            loss = combined_ranking_loss(predictions, train_labels[day],
                                         alpha=config.loss_alpha)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
        loss_history.append(epoch_loss / max(len(epoch_days), 1))

    predictions = {}
    for split, panel in embeddings.items():
        split_predictions = np.empty(panel.shape[:2])
        for day in range(panel.shape[0]):
            split_predictions[day] = model(Tensor(panel[day])).data
        predictions[split] = split_predictions
    valid_ic, test_ic = score_predictions(predictions, taskset)
    outcome = TrainingOutcome(
        config=config,
        valid_ic=valid_ic,
        test_ic=test_ic,
        predictions=predictions,
        loss_history=loss_history,
    )
    return model, outcome
