"""Shared training utilities for the neural baselines.

Prepares LSTM input sequences from a :class:`~repro.data.dataset.TaskSet`
(the close-price moving averages over 5/10/20/30 days, Section 5.2), and
provides the generic training loop used by Rank_LSTM and RSR: one batch per
trading day (the batch is the whole cross-section of stocks), Adam updates,
and model selection on the validation IC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...backtest.metrics import information_coefficient
from ...config import make_rng
from ...data.dataset import TaskSet
from ...errors import BaselineError

__all__ = ["SequenceData", "prepare_sequences", "TrainingConfig", "TrainingOutcome"]

#: Indices of the moving-average features inside the 13-feature matrix.
MA_FEATURE_ROWS = (0, 1, 2, 3)


@dataclass
class SequenceData:
    """LSTM-ready sequences for one split."""

    inputs: np.ndarray   # (days, stocks, seq_len, num_inputs)
    labels: np.ndarray   # (days, stocks)

    @property
    def num_days(self) -> int:
        """Number of trading days in the split."""
        return int(self.inputs.shape[0])

    @property
    def num_stocks(self) -> int:
        """Number of stocks per day."""
        return int(self.inputs.shape[1])


def prepare_sequences(taskset: TaskSet, split: str, sequence_length: int) -> SequenceData:
    """Build ``(days, stocks, seq_len, 4)`` input sequences for one split.

    The sequence length is capped at the task-set window (13 days in the
    paper's configuration); the grid values 16 and 32 therefore degrade to
    the full window, which is documented in EXPERIMENTS.md.
    """
    if sequence_length < 1:
        raise BaselineError("sequence_length must be positive")
    features = taskset.split_features(split)
    labels = taskset.split_labels(split)
    seq_len = min(sequence_length, taskset.window)
    selected = features[:, :, MA_FEATURE_ROWS, -seq_len:]      # (N, K, 4, seq)
    inputs = np.transpose(selected, (0, 1, 3, 2))              # (N, K, seq, 4)
    return SequenceData(inputs=inputs, labels=labels)


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters shared by the neural baselines."""

    sequence_length: int = 8
    hidden_size: int = 32
    loss_alpha: float = 1.0
    learning_rate: float = 0.001
    epochs: int = 3
    batch_days: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise BaselineError("epochs must be at least 1")
        if self.hidden_size < 1:
            raise BaselineError("hidden_size must be positive")


@dataclass
class TrainingOutcome:
    """Result of training one neural baseline."""

    config: TrainingConfig
    valid_ic: float
    test_ic: float
    predictions: dict[str, np.ndarray]
    loss_history: list[float] = field(default_factory=list)

    def summary(self) -> dict[str, float]:
        """Compact summary used by the experiment tables."""
        return {"valid_ic": self.valid_ic, "test_ic": self.test_ic}


def training_day_order(num_days: int, epochs: int, batch_days: int | None,
                       seed: int) -> list[np.ndarray]:
    """Shuffled day indices per epoch (optionally truncated to ``batch_days``)."""
    rng = make_rng(seed)
    schedule = []
    for _ in range(epochs):
        order = rng.permutation(num_days)
        if batch_days is not None:
            order = order[:batch_days]
        schedule.append(order)
    return schedule


def score_predictions(predictions: dict[str, np.ndarray], taskset: TaskSet) -> tuple[float, float]:
    """Validation and test IC of a prediction-panel dictionary."""
    valid_ic = information_coefficient(predictions["valid"], taskset.split_labels("valid"))
    test_ic = information_coefficient(predictions["test"], taskset.split_labels("test"))
    return valid_ic, test_ic
