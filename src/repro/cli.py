"""Command-line interface for regenerating the paper's experiments.

Usage (after ``pip install -e .``)::

    python -m repro.cli table1                 # regenerate Table 1 (laptop scale)
    python -m repro.cli table3 --scale smoke   # quick pass of Table 3
    python -m repro.cli all --output results/  # everything, saved as JSON
    python -m repro.cli inspect alpha.json     # show pruned/compiled forms
    python -m repro.cli ops                    # print the operator registry
    python -m repro.cli serve --scale smoke    # mine top-K alphas, serve online
    python -m repro.cli scenario --list        # the named scenario suite
    python -m repro.cli scenario weekly --scale smoke   # one scenario, end to end
    python -m repro.cli stats serve.runrecord.json      # render a run record

Each experiment command prints the regenerated table (in the paper's layout)
and, when ``--output`` is given, stores the structured rows as JSON through
:mod:`repro.experiments.recorder` so they can be inspected or re-rendered
later without re-running the search.

``inspect`` takes a program serialised with
:meth:`repro.core.AlphaProgram.to_json` and renders it next to its pruned
form, its compiled/canonical IR and the per-pass optimiser statistics
(:mod:`repro.compile`).

``serve`` mines a top-K fleet of weakly correlated alphas (or loads saved
programs with ``--program``) and streams the validation/test days through
the :class:`repro.stream.server.AlphaServer`, printing each alpha's online
backtest metrics, the per-bar serving latency and the result of the bitwise
parity check against the offline batch path.  ``--correct DAY`` (or a
``--corrections`` JSON file) injects late point corrections after the
stream: each rewrites an already-served bar through the server's bounded
delta-replay and is verified bitwise against a full replay of the corrected
history.

``scenario`` drives the same mine→compile→serve pipeline for one *named
scenario* of the suite in :mod:`repro.scenarios` (``--list`` shows them):
the scenario picks the data backend (synthetic, file-backed, resampled)
and market regime, ``--scale``/``--top-k``/``--candidates`` size the run,
and ``--output`` stores a per-scenario results JSON.

``serve`` and ``scenario`` accept ``--telemetry <path>``: the run executes
under an enabled :func:`repro.obs.telemetry_session` (results are bitwise
unchanged — telemetry is strictly observational) and its
:class:`~repro.obs.RunRecord` — provenance, phase timings, metric snapshot
and span tree — is written to ``<path>``.  ``stats`` renders such a record
(or a result JSON embedding one) back as a human-readable report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .experiments import (
    ExperimentConfig,
    PAPER_REFERENCE,
    SCALES,
    run_all,
    run_figure6,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    save_result,
)

_RUNNERS = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "figure6": run_figure6,
}

#: The experiment scales ``--scale`` accepts — the single registry shared
#: with the scenario suite (repro.experiments.configs.SCALES).
_SCALES = SCALES


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the AlphaEvolve paper's tables and figure.",
        epilog="Additional subcommands: 'repro inspect <program.json>' renders "
               "a saved alpha next to its pruned and compiled forms with "
               "per-pass optimiser statistics; 'repro ops' prints the "
               "alpha-language operator registry; 'repro serve' mines a top-K "
               "alpha fleet and streams it through the online AlphaServer "
               "with a bitwise parity check against the offline batch path; "
               "'repro scenario <name>' (or --list) runs one named scenario "
               "of the suite in repro.scenarios end to end; 'repro stats "
               "<record.json>' renders a saved run record (provenance, span "
               "tree, instrument table).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_RUNNERS) + ["all"],
        help="which experiment to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="laptop",
        help="experiment scale (default: laptop)",
    )
    parser.add_argument(
        "--stocks", type=int, default=None,
        help="override the number of simulated stocks",
    )
    parser.add_argument(
        "--candidates", type=int, default=None,
        help="override the per-round candidate budget of the evolutionary search",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="override the number of mining rounds",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the search seed",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="evaluate candidates on this many worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--islands", type=int, default=None,
        help="run each search as this many evolution islands with migration (default: 1)",
    )
    parser.add_argument(
        "--scheduler", choices=["barrier", "overlap"], default=None,
        help="island main-loop scheduling: barrier (default) or overlap, "
             "which hides ring migration behind pool evaluation "
             "(migrants land one step later)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="checkpoint island searches into DIR and resume from existing checkpoints",
    )
    parser.add_argument(
        "--no-compile", action="store_true",
        help="execute candidates on the reference interpreter instead of the "
             "compiled tape (results are bitwise identical either way)",
    )
    parser.add_argument(
        "--engine", choices=["interpreter", "compiled"], default=None,
        help="execution engine candidates run on (default: compiled; "
             "results are bitwise identical across engines)",
    )
    parser.add_argument(
        "--output", default=None,
        help="directory to write <experiment>.json result files into",
    )
    parser.add_argument(
        "--show-reference", action="store_true",
        help="also print the paper's reference rows",
    )
    return parser


def resolve_config(args: argparse.Namespace) -> ExperimentConfig:
    """Turn parsed arguments into an :class:`ExperimentConfig`."""
    config = _SCALES[args.scale]
    overrides = {}
    if args.stocks is not None:
        overrides["num_stocks"] = args.stocks
    if args.candidates is not None:
        overrides["max_candidates"] = args.candidates
    if args.rounds is not None:
        overrides["num_rounds"] = args.rounds
    if args.seed is not None:
        overrides["search_seed"] = args.seed
    if args.workers is not None:
        overrides["num_workers"] = args.workers
    if args.islands is not None:
        overrides["num_islands"] = args.islands
    if args.scheduler is not None:
        overrides["scheduler"] = args.scheduler
    if args.checkpoint is not None:
        overrides["checkpoint_dir"] = args.checkpoint
    if args.no_compile:
        overrides["use_compile"] = False
    if args.engine is not None:
        overrides["engine"] = args.engine
    if overrides:
        config = config.scaled(**overrides)
    return config


def build_inspect_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``inspect`` subcommand (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro inspect",
        description="Render an alpha program alongside its pruned and "
                    "compiled forms with per-pass optimiser statistics.",
    )
    parser.add_argument(
        "program",
        help="path to a program JSON file (AlphaProgram.to_json output)",
    )
    return parser


def run_inspect(argv: list[str]) -> int:
    """Entry point of ``repro inspect <program.json>``."""
    from .compile import describe_compilation
    from .core import AlphaProgram

    args = build_inspect_parser().parse_args(argv)
    path = Path(args.program)
    if not path.exists():
        print(f"error: no such program file: {path}", file=sys.stderr)
        return 2
    program = AlphaProgram.from_json(path.read_text())
    print(describe_compilation(program))
    return 0


def build_ops_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``ops`` subcommand (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro ops",
        description="Print the alpha-language operator registry: name, "
                    "kind, arity, operand types, constant parameters and "
                    "the components each operator may appear in.",
    )
    parser.add_argument(
        "--kind",
        choices=["arithmetic", "extraction", "relation", "init"],
        default=None,
        help="only show operators of this kind",
    )
    parser.add_argument(
        "--component",
        choices=["setup", "predict", "update"],
        default=None,
        help="only show operators allowed in this component",
    )
    return parser


def render_ops_table(kind: str | None = None,
                     component: str | None = None) -> str:
    """The operator-registry table printed by ``repro ops``."""
    from .core.ops import OpKind, list_ops

    specs = list_ops(
        kind=OpKind(kind) if kind is not None else None,
        component=component,
    )
    header = ("name", "kind", "arity", "signature", "params", "components")
    rows = [header]
    for spec in sorted(specs, key=lambda spec: (spec.kind.value, spec.name)):
        inputs = ", ".join(t.value for t in spec.input_types) or "-"
        rows.append((
            spec.name,
            spec.kind.value,
            str(spec.arity),
            f"({inputs}) -> {spec.output_type.value}",
            ", ".join(spec.param_names) or "-",
            ", ".join(
                name for name in ("setup", "predict", "update")
                if name in spec.components
            ),
        ))
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    lines.append("")
    lines.append(f"{len(specs)} operators")
    return "\n".join(lines)


def run_ops(argv: list[str]) -> int:
    """Entry point of ``repro ops``."""
    args = build_ops_parser().parse_args(argv)
    print(render_ops_table(kind=args.kind, component=args.component))
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``serve`` subcommand (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Mine a top-K alpha fleet (or load saved programs) and "
                    "serve the validation/test days through the streaming "
                    "AlphaServer, verifying bitwise parity with the offline "
                    "batch path.",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="laptop",
        help="experiment scale (default: laptop)",
    )
    parser.add_argument(
        "--top-k", type=int, default=None, dest="top_k",
        help="number of alphas to mine and serve (default: config.serve_top_k)",
    )
    parser.add_argument(
        "--candidates", type=int, default=None,
        help="override the candidate budget of each mining search",
    )
    parser.add_argument(
        "--stocks", type=int, default=None,
        help="override the number of simulated stocks",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the search/serving seed",
    )
    parser.add_argument(
        "--program", action="append", default=None, metavar="JSON",
        help="serve this saved program (AlphaProgram.to_json output) instead "
             "of mining; repeatable",
    )
    parser.add_argument(
        "--correct", action="append", type=int, default=None, metavar="DAY",
        help="after streaming, inject a late correction to served day DAY "
             "(a 1%% feature restatement) and delta-replay it, verifying "
             "bitwise parity with a full offline replay; repeatable",
    )
    parser.add_argument(
        "--repair", default=None, metavar="POLICY",
        help="repair policy applied when loading file-backed data "
             "(see repro.data.repair; default: the config's DataSpec)",
    )
    parser.add_argument(
        "--corrections", default=None, metavar="JSON",
        help="JSON file with a list of corrections "
             '[{"day": 3, "feature_scale": 1.01, "label_scale": 0.99}, ...] '
             "to inject after streaming (combines with --correct)",
    )
    parser.add_argument(
        "--output", default=None,
        help="directory to write a serve.json result file into",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="JSON",
        help="collect metrics and spans during the run and write the run "
             "record (readable by 'repro stats') to this path",
    )
    return parser


def parse_corrections(args: argparse.Namespace):
    """Build the ``BarCorrection`` list from ``--correct``/``--corrections``.

    Exposed for testing.  Returns ``None`` when neither flag was given.
    """
    from .errors import StreamError
    from .stream import BarCorrection

    corrections = []
    for day in args.correct or ():
        corrections.append(BarCorrection(day=day, feature_scale=1.01))
    if args.corrections:
        path = Path(args.corrections)
        if not path.exists():
            raise StreamError(f"no such corrections file: {path}")
        try:
            entries = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise StreamError(f"corrections file {path} is not valid JSON: "
                              f"{exc}") from exc
        if not isinstance(entries, list):
            raise StreamError(f"corrections file {path} must hold a JSON "
                              f"list of objects")
        for entry in entries:
            if not isinstance(entry, dict) or "day" not in entry:
                raise StreamError(
                    f"corrections file {path}: each entry needs at least "
                    f'a "day" key; got {entry!r}'
                )
            unknown = set(entry) - {"day", "feature_scale", "label_scale"}
            if unknown:
                raise StreamError(
                    f"corrections file {path}: unknown keys {sorted(unknown)}"
                )
            scale = {
                key: float(entry[key])
                for key in ("feature_scale", "label_scale") if key in entry
            }
            corrections.append(BarCorrection(day=int(entry["day"]), **scale))
    return corrections or None


def resolve_serve_config(args: argparse.Namespace):
    """Turn parsed ``serve`` arguments into an :class:`ExperimentConfig`."""
    config = _SCALES[args.scale]
    overrides = {}
    if args.top_k is not None:
        overrides["serve_top_k"] = args.top_k
    if args.candidates is not None:
        overrides["max_candidates"] = args.candidates
    if args.stocks is not None:
        overrides["num_stocks"] = args.stocks
    if args.seed is not None:
        overrides["search_seed"] = args.seed
    if overrides:
        config = config.scaled(**overrides)
    if getattr(args, "repair", None) is not None:
        config = config.scaled(data=config.data.repaired(args.repair))
    return config


def run_serve_command(argv: list[str]) -> int:
    """Entry point of ``repro serve``."""
    from contextlib import nullcontext

    from .core import AlphaProgram
    from .errors import StreamError
    from .experiments.recorder import ExperimentResult
    from .obs import save_run_record, telemetry_session
    from .stream import run_serve

    args = build_serve_parser().parse_args(argv)
    config = resolve_serve_config(args)
    programs = None
    names = None
    if args.program:
        programs = []
        for raw_path in args.program:
            path = Path(raw_path)
            if not path.exists():
                print(f"error: no such program file: {path}", file=sys.stderr)
                return 2
            programs.append(AlphaProgram.from_json(path.read_text()))
        # Saved artifacts from separate runs often embed the same program
        # name; serving names must be unique, so repeats get a suffix.
        names, seen = [], {}
        for program in programs:
            count = seen.get(program.name, 0) + 1
            seen[program.name] = count
            names.append(
                program.name if count == 1 else f"{program.name}#{count}"
            )
    # --telemetry turns the collectors on for this run; without it the run
    # proceeds with telemetry in whatever state the process already had.
    session = telemetry_session() if args.telemetry else nullcontext()
    try:
        corrections = parse_corrections(args)
        with session:
            report = run_serve(config, programs=programs, names=names,
                               corrections=corrections)
    except StreamError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    corrected = report.metadata.get("corrections")
    if corrected is not None:
        replayed = sum(
            record["replayed_days"] for record in corrected["records"]
        )
        print(
            f"late corrections: {corrected['count']} applied, "
            f"{replayed} days delta-replayed; parity with a full replay "
            f"of the corrected history: "
            + ("bitwise identical" if corrected["parity"] else "VIOLATED")
        )
    if args.telemetry and report.run_record is not None:
        path = save_run_record(report.run_record, args.telemetry)
        print(f"\nwrote run record {path}")
    if args.output:
        result = ExperimentResult(
            experiment="serve",
            rows=[row.row() for row in report.rows],
            rendered=report.render(),
            metadata={**report.metadata, **report.stats},
            run_record=report.run_record,
        )
        path = save_result(result, args.output)
        print(f"\nsaved {path}")
    return 0 if report.parity else 1


def build_scenario_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``scenario`` subcommand (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro scenario",
        description="Run one named scenario end to end (mine → compile → "
                    "serve, with the online/offline parity check), or list "
                    "the scenario suite.",
    )
    parser.add_argument(
        "name", nargs="?", default=None,
        help="scenario to run (see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list the registered scenarios and exit",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="laptop",
        help="experiment scale the scenario materialises at (default: laptop)",
    )
    parser.add_argument(
        "--top-k", type=int, default=None, dest="top_k",
        help="number of alphas to mine and serve (default: scenario config)",
    )
    parser.add_argument(
        "--candidates", type=int, default=None,
        help="override the candidate budget of each mining search",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the search/serving seed",
    )
    parser.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="directory file-backed scenarios export their CSVs into "
             "(default: .scenario_data, or $REPRO_SCENARIO_DATA)",
    )
    parser.add_argument(
        "--repair", default=None, metavar="POLICY",
        help="override the scenario's primary repair policy for file-backed "
             "data (see repro.data.repair)",
    )
    parser.add_argument(
        "--output", default=None,
        help="directory to write a scenario-<name>.json result file into",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="JSON",
        help="collect metrics and spans during the run and write the run "
             "record (readable by 'repro stats') to this path",
    )
    return parser


def run_scenario_command(argv: list[str]) -> int:
    """Entry point of ``repro scenario [<name> | --list]``."""
    from contextlib import nullcontext

    from .errors import ConfigurationError, DataError, StreamError
    from .obs import save_run_record, telemetry_session
    from .scenarios import render_scenario_list, run_scenario

    args = build_scenario_parser().parse_args(argv)
    if args.list_scenarios:
        print(render_scenario_list())
        return 0
    if args.name is None:
        print("error: provide a scenario name or --list", file=sys.stderr)
        return 2
    overrides = {}
    if args.top_k is not None:
        overrides["serve_top_k"] = args.top_k
    if args.candidates is not None:
        overrides["max_candidates"] = args.candidates
    if args.seed is not None:
        overrides["search_seed"] = args.seed
    session = telemetry_session() if args.telemetry else nullcontext()
    try:
        with session:
            result = run_scenario(
                args.name,
                scale=args.scale,
                data_dir=args.data_dir,
                overrides=overrides or None,
                repair=args.repair,
            )
    except (ConfigurationError, DataError, StreamError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.rendered)
    if args.telemetry and result.run_record is not None:
        path = save_run_record(result.run_record, args.telemetry)
        print(f"\nwrote run record {path}")
    if args.output:
        path = save_result(result, args.output)
        print(f"\nsaved {path}")
    return 0 if result.metadata.get("parity") else 1


def build_stats_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``stats`` subcommand (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="Render a run record — provenance, per-phase timing, "
                    "span tree and instrument table — from a "
                    "*.runrecord.json (or a result JSON embedding one), as "
                    "written by 'repro serve/scenario --telemetry' or "
                    "--output.",
    )
    parser.add_argument(
        "record",
        help="path to a run-record JSON, or a result JSON with a "
             "'run_record' key",
    )
    return parser


def run_stats_command(argv: list[str]) -> int:
    """Entry point of ``repro stats <record.json>``."""
    from .errors import ObservabilityError
    from .obs import load_run_record, render_run_record

    args = build_stats_parser().parse_args(argv)
    path = Path(args.record)
    if not path.exists():
        print(f"error: no such record file: {path}", file=sys.stderr)
        return 2
    try:
        record = load_run_record(path)
    except (ObservabilityError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_run_record(record))
    return 0


def _emit(result, args: argparse.Namespace) -> None:
    print(result.rendered)
    if args.show_reference and result.experiment in PAPER_REFERENCE:
        print(f"\nPaper reference ({result.experiment}):")
        for row in PAPER_REFERENCE[result.experiment]:
            print("  " + ", ".join(f"{key}={value}" for key, value in row.items()))
    if args.output:
        path = save_result(result, args.output)
        print(f"\nsaved {path}")
    print()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "inspect":
        return run_inspect(argv[1:])
    if argv and argv[0] == "ops":
        return run_ops(argv[1:])
    if argv and argv[0] == "serve":
        return run_serve_command(argv[1:])
    if argv and argv[0] == "scenario":
        return run_scenario_command(argv[1:])
    if argv and argv[0] == "stats":
        return run_stats_command(argv[1:])
    args = build_parser().parse_args(argv)
    config = resolve_config(args)
    if args.experiment == "all":
        for result in run_all(config).values():
            _emit(result, args)
        return 0
    result = _RUNNERS[args.experiment](config)
    _emit(result, args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in docs
    sys.exit(main())
