"""Alpha-program compilation: SSA IR, optimiser passes, fused executor.

The pipeline generalises the paper's Section 4.2 dataflow view of an alpha
into a small query-engine-style compiler: programs are lowered into an SSA
IR (:mod:`.ir`), optimised by a pass pipeline (:mod:`.passes` — constant
folding, commutative canonicalisation, common-subexpression elimination and
a dead-code elimination that reuses the backward-liveness pruning), and
executed by a flat-tape executor (:mod:`.executor`) with pre-resolved
dispatch, preallocated slots and a fused batched inference stage.

Entry points:

* :func:`compile_program` + :class:`CompiledAlpha` — the execution pipeline
  (bitwise identical to the interpreter; used by
  :class:`repro.core.interpreter.AlphaEvaluator` when ``compiled=True``);
* :func:`canonical_key` — the canonicalised-IR fingerprint substrate used by
  :class:`repro.core.cache.FingerprintCache`;
* :func:`describe_compilation` — the ``repro inspect`` report.
"""

from .compiler import (
    CompiledProgram,
    canonical_ir,
    canonical_key,
    compile_program,
    describe_compilation,
)
from .executor import CompiledAlpha, TAPE_STATE_VERSION, TapeState, tape_key_for
from .ir import IRComponent, IRInstruction, IRProgram, IRValue, lower_program
from .lookback import LookbackInfo, analyze_lookback
from .stacked import StackedAlpha, stack_signature
from .passes import (
    DataflowInfo,
    PassStats,
    analyze_dataflow,
    canonicalize_commutative,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
)

__all__ = [
    "CompiledAlpha",
    "CompiledProgram",
    "DataflowInfo",
    "IRComponent",
    "IRInstruction",
    "IRProgram",
    "IRValue",
    "LookbackInfo",
    "PassStats",
    "StackedAlpha",
    "TAPE_STATE_VERSION",
    "TapeState",
    "analyze_dataflow",
    "analyze_lookback",
    "canonical_ir",
    "canonical_key",
    "canonicalize_commutative",
    "compile_program",
    "describe_compilation",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "fold_constants",
    "lower_program",
    "stack_signature",
    "tape_key_for",
]
