"""The alpha compilation pipeline: lower → optimise → (bind and) execute.

Two pipelines share the IR and the passes:

* **execution** (:func:`compile_program`) — lower, exact-match CSE, dead-code
  elimination.  Operand order is never touched, so every value the tape
  computes is the result of a computation the interpreter would have
  performed literally, which is what makes the compiled executor
  (:class:`~repro.compile.executor.CompiledAlpha`) bitwise identical.
* **fingerprinting** (:func:`canonical_ir` / :func:`canonical_key`) — lower,
  constant folding, commutative canonicalisation, canonical CSE, dead-code
  elimination, then render.  The rendering names values by position instead
  of by operand address, so programs that differ only in operand order of
  commutative operations, in duplicated subexpressions, in folded constants
  or in intermediate register naming all share one key — strictly more
  collisions (never fewer) than the historical render-based fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.memory import LABEL
from ..core.program import AlphaProgram
from ..core.pruning import prune_program
from ..obs import TELEMETRY
from .ir import IRProgram, lower_program
from .lookback import LookbackInfo, analyze_lookback
from .passes import (
    DataflowInfo,
    PassStats,
    canonicalize_commutative,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
)

__all__ = [
    "CompiledProgram",
    "compile_program",
    "canonical_ir",
    "canonical_key",
    "describe_compilation",
]


@dataclass
class CompiledProgram:
    """An optimised, shape-independent compilation artefact."""

    program: AlphaProgram
    ir: IRProgram
    pass_stats: list[PassStats] = field(default_factory=list)
    dataflow: DataflowInfo | None = None
    #: Whether the inference stage may run as one batched tape pass: true
    #: when ``Predict()`` neither reads the label nor reads an operand it
    #: also writes, i.e. the trained memory is static across inference days.
    fused_inference: bool = False
    #: Whether the *entire* ``Predict()`` tape is day-loop invariant:
    #: ``fused_inference`` plus no dependence on any ``Update()``-carried
    #: operand.  Then ``Predict()`` sees identical operand state on every
    #: day of the run — training days included — and the engine layer
    #: (:mod:`repro.engine.protocol`) may execute *all* days of a stage in
    #: one vectorised ``(T, K, ...)`` kernel call instead of a per-day
    #: Python loop.
    static_predict: bool = False
    #: Inference-day invalidation horizons (:mod:`.lookback`): how many
    #: clean days the delta-replay engine must spin up before a corrected
    #: bar's prediction is bit-exact from an arbitrary live state.
    lookback: LookbackInfo | None = None

    @property
    def num_instructions(self) -> int:
        """Instructions surviving optimisation."""
        return self.ir.num_instructions


def _fused_eligible(ir: IRProgram, dataflow: DataflowInfo) -> bool:
    predict = ir.components["predict"]
    live_in = dataflow.live_in["predict"]
    if LABEL in live_in:
        return False
    return not (live_in & set(predict.exports))


def _static_predict_eligible(ir: IRProgram, dataflow: DataflowInfo,
                             fused: bool) -> bool:
    """Whether ``Predict()`` is invariant across the whole day loop.

    On top of fused-inference eligibility, ``Predict()`` must read no
    operand that ``Update()`` writes: then its non-``m0`` inputs come from
    ``Setup()`` alone and are identical on every day of the run (training
    days included), which is what licenses the engine layer's
    static-predict time batching.
    """
    if not fused:
        return False
    live_in = dataflow.live_in["predict"]
    return not (live_in & set(ir.components["update"].exports))


def compile_program(program: AlphaProgram) -> CompiledProgram:
    """Compile ``program`` through the execution pipeline."""
    ir = lower_program(program)
    stats: list[PassStats] = []
    ir, cse_stats = eliminate_common_subexpressions(ir)
    stats.append(cse_stats)
    ir, dse_stats, dataflow = eliminate_dead_code(ir)
    stats.append(dse_stats)
    if TELEMETRY.enabled:
        TELEMETRY.counter("compile.programs").inc()
        for pass_stats in stats:
            TELEMETRY.counter(f"compile.pass.{pass_stats.name}.removed").inc(
                pass_stats.removed
            )
            TELEMETRY.counter(f"compile.pass.{pass_stats.name}.rewritten").inc(
                pass_stats.rewritten
            )
    fused = _fused_eligible(ir, dataflow)
    return CompiledProgram(
        program=program,
        ir=ir,
        pass_stats=stats,
        dataflow=dataflow,
        fused_inference=fused,
        static_predict=_static_predict_eligible(ir, dataflow, fused),
        lookback=analyze_lookback(ir, dataflow),
    )


def canonical_ir(program: AlphaProgram) -> tuple[IRProgram, list[PassStats]]:
    """Compile ``program`` through the fingerprint (canonicalisation) pipeline."""
    ir = lower_program(program)
    stats: list[PassStats] = []
    for run_pass in (fold_constants, canonicalize_commutative,
                     eliminate_common_subexpressions):
        ir, pass_stats = run_pass(ir)
        stats.append(pass_stats)
    ir, dse_stats, _ = eliminate_dead_code(ir)
    stats.append(dse_stats)
    return ir, stats


def canonical_key(program: AlphaProgram) -> str:
    """The canonical-IR string the fingerprint cache hashes."""
    return canonical_ir(program)[0].render()


def describe_compilation(program: AlphaProgram) -> str:
    """A human-readable report for the ``repro inspect`` CLI command.

    Shows the program next to its pruned form, the canonicalised IR and the
    per-pass statistics of both pipelines.
    """
    lines: list[str] = []
    lines.append(f"# program: {program.name}")
    lines.append(f"operations: {program.num_operations}")
    lines.append("")
    lines.append("## original")
    lines.append(program.render())

    prune_result = prune_program(program)
    lines.append("")
    lines.append("## pruned (Section 4.2 backward liveness)")
    lines.append(
        f"removed {prune_result.removed_operations} of "
        f"{prune_result.total_operations} operations"
        + ("; REDUNDANT (prediction independent of m0)"
           if prune_result.is_redundant else "")
    )
    lines.append(prune_result.program.render())

    compiled = compile_program(program)
    lines.append("")
    lines.append("## compiled (execution pipeline)")
    for stats in compiled.pass_stats:
        lines.append(f"pass {stats.describe()}")
    lines.append(
        "fused batched inference: "
        + ("yes" if compiled.fused_inference else "no (predict reads its own "
           "writes or the label)")
    )
    lines.append(
        "static-predict time batching: "
        + ("yes" if compiled.static_predict else "no (predict depends on "
           "loop-carried state)")
    )
    if compiled.lookback is not None:
        lines.append("delta-replay lookback: " + compiled.lookback.describe())
    lines.append(compiled.ir.render())

    ir, stats_list = canonical_ir(program)
    lines.append("")
    lines.append("## canonical IR (fingerprint pipeline)")
    for stats in stats_list:
        lines.append(f"pass {stats.describe()}")
    lines.append(ir.render())
    return "\n".join(lines)
