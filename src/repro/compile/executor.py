"""Flat-tape execution of compiled alpha programs.

:class:`CompiledAlpha` binds an optimised IR (:mod:`.compiler`) to one
problem shape and executes it without any of the interpreter's per-operation
bookkeeping:

* **pre-resolved dispatch** — every instruction becomes one tape entry
  ``(func, input_arrays, output_array, params)`` with the
  :class:`~repro.core.ops.OpSpec` function looked up once at bind time;
* **preallocated memory slots** — each SSA value owns one preallocated
  buffer and each live operand one state array, so the per-day loop performs
  no allocation, address checking or dict construction;
* **static hoisting** — instructions whose transitive inputs are constants
  or parameter-free initialisers (they produce the same value on every
  execution) run once in a prologue instead of once per day;
* **fused batched inference** — when the trained memory is static across
  inference days (``Predict()`` neither reads the label nor reads an operand
  it also writes), the whole inference stage collapses into a single tape
  execution over a leading *day* axis instead of a Python loop over days.

Bitwise parity with the interpreter is a hard contract (the fingerprint
cache and the search both rely on it).  The fused path therefore only
batches operators whose elementwise results are exact and shape-independent
(IEEE basic arithmetic, comparisons, slicing, broadcasting); every other
operator — transcendentals, reductions, cross-sectional ranks — falls back
to a per-day slice loop *inside* its tape entry, which reproduces the
interpreter's arithmetic exactly while still eliminating the per-day
dispatch of the batched majority.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..core.memory import INPUT_MATRIX, LABEL, Operand, OperandType, PREDICTION
from ..core.ops import ExecutionContext, get_op, sanitize
from ..errors import ExecutionError
from .compiler import CompiledProgram

__all__ = ["CompiledAlpha", "TapeState", "TAPE_STATE_VERSION", "tape_key_for"]

#: Bumped whenever the suspended-state layout changes incompatibly.
TAPE_STATE_VERSION = 1


def tape_key_for(ir) -> str:
    """The tape identity key: a hash of the execution-pipeline IR.

    Shared by :class:`CompiledAlpha` and the stacked group executor
    (:class:`~repro.compile.stacked.StackedAlpha`), so a
    :class:`TapeState` suspended from either resumes into the other.
    """
    return hashlib.sha256(ir.render().encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Batched kernels for the fused inference path
# ---------------------------------------------------------------------------

#: Operators whose registry implementation is already shape-agnostic *and*
#: elementwise-exact, so running them over a leading day axis is bit-for-bit
#: identical to running them day by day.
_BATCH_SAFE = frozenset({
    "s_add", "s_sub", "s_mul", "s_div", "s_min", "s_max",
    "s_abs", "s_sign", "s_heaviside",
    "v_add", "v_sub", "v_mul", "v_div", "v_min", "v_max",
    "v_abs", "v_heaviside",
    "m_add", "m_sub", "m_mul", "m_div", "m_min", "m_max",
    "m_abs", "m_heaviside",
    "transpose",
})

#: Batched re-implementations (leading-axis-aware indexing) of exact
#: operators whose registry form hard-codes the task axis.  Each one is
#: elementwise identical to the registry implementation on a day slice.
_BATCH_OVERRIDES = {
    "v_scale": lambda ctx, inputs, params: inputs[0][..., None] * inputs[1],
    "m_scale": lambda ctx, inputs, params: inputs[0][..., None, None] * inputs[1],
    "v_outer": lambda ctx, inputs, params: (
        inputs[0][..., :, None] * inputs[1][..., None, :]
    ),
    "ts_rank": lambda ctx, inputs, params: (
        (inputs[0] < inputs[0][..., -1:]).sum(axis=-1)
        / max(inputs[0].shape[-1] - 1, 1)
    ),
    "v_broadcast": lambda ctx, inputs, params: np.repeat(
        inputs[0][..., None], ctx.window, axis=-1
    ),
    "m_broadcast": lambda ctx, inputs, params: (
        np.repeat(inputs[0][..., None, :], ctx.num_features, axis=-2)
        if params["axis"] == 0
        else np.repeat(inputs[0][..., :, None], ctx.window, axis=-1)
    ),
    "get_scalar": lambda ctx, inputs, params: inputs[0][
        ..., params["row"] % ctx.num_features, params["col"] % ctx.window
    ],
    "get_row": lambda ctx, inputs, params: inputs[0][
        ..., params["row"] % ctx.num_features, :
    ],
    "get_column": lambda ctx, inputs, params: inputs[0][
        ..., :, params["col"] % ctx.window
    ],
}


def _batched_func(name: str):
    """The day-batched kernel for operator ``name`` (``None`` → per-day loop)."""
    if name in _BATCH_SAFE:
        return get_op(name).func
    return _BATCH_OVERRIDES.get(name)


@dataclass(frozen=True)
class TapeState:
    """Suspended loop-carried state of one :class:`CompiledAlpha` tape.

    The only state an alpha carries between days is the content of its
    operand arrays (the static prologue is a pure function of the bound
    context and is recomputed on resume), so a snapshot of those arrays plus
    the identity of the tape that produced them is a complete, serialisable
    suspension point.  ``tape_key`` hashes the execution-pipeline IR and
    ``base_seed``/``shape`` echo the bound context; :meth:`CompiledAlpha.resume`
    refuses a state taken from a different program or binding instead of
    silently diverging.

    ``TapeState`` is plain data (strings, ints and numpy arrays) and pickles
    cleanly, which is what the streaming checkpoint helpers in
    :mod:`repro.stream.state` rely on.
    """

    version: int
    tape_key: str
    base_seed: int
    #: ``(num_tasks, num_features, window)`` of the binding.
    shape: tuple[int, int, int]
    #: Operand name → array snapshot of the loop-carried state.
    operands: dict[str, np.ndarray] = field(default_factory=dict)


@dataclass(frozen=True, eq=False)
class _TapeEntry:
    """One pre-resolved instruction of the flat execution tape."""

    op: str
    func: object                 # the OpSpec function, dispatch pre-resolved
    inputs: tuple[np.ndarray, ...]
    input_ids: tuple[int, ...]
    output: np.ndarray
    output_id: int
    params: dict


class CompiledAlpha:
    """Executable form of one compiled alpha, bound to a problem shape.

    Parameters
    ----------
    compiled:
        The optimised program from :func:`repro.compile.compile_program`.
    ctx:
        The evaluation context (task count, dimensions, relation indices and
        base seed) the tape executes under — the same object the interpreter
        would hand to every operator.
    """

    def __init__(self, compiled: CompiledProgram, ctx: ExecutionContext) -> None:
        self.compiled = compiled
        self.ctx = ctx
        shapes = {
            OperandType.SCALAR: (ctx.num_tasks,),
            OperandType.VECTOR: (ctx.num_tasks, ctx.window),
            OperandType.MATRIX: (ctx.num_tasks, ctx.num_features, ctx.window),
        }
        ir = compiled.ir
        carried = compiled.dataflow.carried

        #: Operand state arrays: the loop-carried memory between components
        #: and days.  Allocated for every operand the program observes plus
        #: the three reserved addresses.
        self._state: dict[Operand, np.ndarray] = {}

        def state_array(operand: Operand) -> np.ndarray:
            array = self._state.get(operand)
            if array is None:
                array = np.zeros(shapes[operand.type])
                self._state[operand] = array
            return array

        for operand in (INPUT_MATRIX, LABEL, PREDICTION):
            state_array(operand)

        self._buffers: dict[int, np.ndarray] = {}
        self._static_tape: list[_TapeEntry] = []
        self._tapes: dict[str, list[_TapeEntry]] = {}
        self._copies: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {}

        for name, component in ir.components.items():
            static_ids: set[int] = set()
            tape: list[_TapeEntry] = []
            for instr in component.instructions:
                arrays = []
                for vid in instr.inputs:
                    value = ir.values[vid]
                    if value.operand is not None:
                        arrays.append(state_array(value.operand))
                    else:
                        arrays.append(self._buffers[vid])
                output = np.zeros(shapes[ir.values[instr.result].type])
                self._buffers[instr.result] = output
                entry = _TapeEntry(
                    op=instr.op,
                    func=instr.spec.func,
                    inputs=tuple(arrays),
                    input_ids=instr.inputs,
                    output=output,
                    output_id=instr.result,
                    params=instr.param_dict,
                )
                # Setup already runs exactly once; hoisting only pays off for
                # the components inside the per-day loops.
                is_static = name != "setup" and all(
                    vid in static_ids for vid in instr.inputs
                )
                if is_static:
                    static_ids.add(instr.result)
                    self._static_tape.append(entry)
                else:
                    tape.append(entry)
            self._tapes[name] = tape
            self._copies[name] = [
                (state_array(operand), self._buffers[vid])
                for operand, vid in component.exports.items()
                if operand in carried
            ]

        predict = ir.components["predict"]
        prediction_value = predict.exports.get(PREDICTION)
        if prediction_value is not None:
            self._prediction = self._buffers[prediction_value]
        else:
            self._prediction = self._state[PREDICTION]
        self._prediction_id = prediction_value
        self._tape_key = tape_key_for(ir)

    # ------------------------------------------------------------------
    @property
    def prediction(self) -> np.ndarray:
        """The ``(K,)`` prediction left by the last ``run_predict`` call."""
        return self._prediction

    @property
    def supports_fused_inference(self) -> bool:
        """Whether the inference stage can run as one batched tape pass."""
        return self.compiled.fused_inference

    @property
    def supports_static_predict(self) -> bool:
        """Whether the whole ``Predict()`` tape is day-loop invariant.

        True when, beyond fused-inference eligibility, ``Predict()`` reads
        no ``Update()``-carried operand — so the engine layer may run even
        the *training-stage* predictions as one batched
        :meth:`run_inference_batch` call (see
        :func:`repro.engine.protocol.training_pass`).
        """
        return self.compiled.static_predict

    # ------------------------------------------------------------------
    def set_input(self, features: np.ndarray) -> None:
        """Load one day's feature matrices into ``m0``."""
        self._state[INPUT_MATRIX][...] = features

    def set_label(self, labels: np.ndarray) -> None:
        """Reveal one day's labels into ``s0``."""
        self._state[LABEL][...] = labels

    # ------------------------------------------------------------------
    def _run_tape(self, entries: list[_TapeEntry]) -> None:
        ctx = self.ctx
        for entry in entries:
            entry.output[...] = sanitize(entry.func(ctx, entry.inputs, entry.params))

    @staticmethod
    def _write_back(copies: list[tuple[np.ndarray, np.ndarray]]) -> None:
        for target, source in copies:
            target[...] = source

    def run_setup(self) -> None:
        """Run ``Setup()`` once, plus the hoisted static prologue."""
        self._run_tape(self._tapes["setup"])
        self._write_back(self._copies["setup"])
        self._run_tape(self._static_tape)

    def run_predict(self) -> None:
        """Run ``Predict()`` for the current day."""
        self._run_tape(self._tapes["predict"])
        self._write_back(self._copies["predict"])

    def run_update(self) -> None:
        """Run ``Update()`` for the current day."""
        self._run_tape(self._tapes["update"])
        self._write_back(self._copies["update"])

    # ------------------------------------------------------------------
    # Suspend / resume tape protocol
    # ------------------------------------------------------------------
    @property
    def tape_key(self) -> str:
        """Identity of the bound tape: a hash of the execution-pipeline IR."""
        return self._tape_key

    def suspend(self) -> TapeState:
        """Snapshot the loop-carried state so execution can resume later.

        The snapshot contains everything a later :meth:`resume` needs to
        continue day-by-day execution bitwise identically to an uninterrupted
        run: the operand state arrays (the cross-day memory) plus the tape
        and binding identity.  The hoisted static prologue is *not* captured
        — it is a deterministic function of the bound context and is
        recomputed on resume.
        """
        ctx = self.ctx
        return TapeState(
            version=TAPE_STATE_VERSION,
            tape_key=self.tape_key,
            base_seed=ctx.base_seed,
            shape=(ctx.num_tasks, ctx.num_features, ctx.window),
            operands={
                operand.name: array.copy()
                for operand, array in self._state.items()
            },
        )

    def resume(self, state: TapeState) -> None:
        """Restore a :meth:`suspend` snapshot into this (fresh) binding.

        Re-runs the static prologue (pure, so bit-for-bit reproducible) and
        overwrites the operand state arrays from the snapshot; the next
        ``run_predict`` / ``run_update`` continues exactly where the
        suspended executor stopped.  Raises :class:`ExecutionError` when the
        snapshot was taken from a different program, binding shape or seed.
        """
        if state.version != TAPE_STATE_VERSION:
            raise ExecutionError(
                f"tape state has version {state.version}, this build reads "
                f"version {TAPE_STATE_VERSION}"
            )
        if state.tape_key != self.tape_key:
            raise ExecutionError(
                "tape state was suspended from a different compiled program"
            )
        ctx = self.ctx
        shape = (ctx.num_tasks, ctx.num_features, ctx.window)
        if state.shape != shape:
            raise ExecutionError(
                f"tape state was bound to shape {state.shape}, "
                f"this executor is bound to {shape}"
            )
        if state.base_seed != ctx.base_seed:
            raise ExecutionError(
                f"tape state was produced under base seed {state.base_seed}, "
                f"this executor runs under {ctx.base_seed}"
            )
        expected = {operand.name for operand in self._state}
        snapshot = set(state.operands)
        if expected != snapshot:
            raise ExecutionError(
                "tape state operand set does not match this tape "
                f"(missing {sorted(expected - snapshot)}, "
                f"unexpected {sorted(snapshot - expected)})"
            )
        self._run_tape(self._static_tape)
        for operand, array in self._state.items():
            array[...] = state.operands[operand.name]

    # ------------------------------------------------------------------
    def run_inference_batch(self, features: np.ndarray) -> np.ndarray:
        """Run the whole inference stage in one batched tape pass.

        ``features`` has shape ``(D, K, f, w)``; the return value holds the
        ``(D, K)`` predictions, bit-for-bit equal to looping ``set_input`` /
        ``run_predict`` over the days.  Only valid when
        :attr:`supports_fused_inference` is True.
        """
        if not self.compiled.fused_inference:
            raise ValueError(
                "program is not eligible for fused inference; run day by day"
            )
        ctx = self.ctx
        num_days = features.shape[0]
        predict = self.compiled.ir.components["predict"]
        batched: dict[int, np.ndarray] = {}
        input_matrix_value = predict.inputs.get(INPUT_MATRIX)
        if input_matrix_value is not None:
            batched[input_matrix_value] = features

        for entry in self._tapes["predict"]:
            if not any(vid in batched for vid in entry.input_ids):
                # Depends only on static memory: one day's worth of work
                # covers every day.
                entry.output[...] = sanitize(entry.func(ctx, entry.inputs, entry.params))
                continue
            inputs = tuple(
                batched.get(vid, array)
                for vid, array in zip(entry.input_ids, entry.inputs)
            )
            output = np.empty((num_days,) + entry.output.shape)
            batched_func = _batched_func(entry.op)
            if batched_func is not None:
                output[...] = sanitize(batched_func(ctx, inputs, entry.params))
            else:
                day_flags = tuple(vid in batched for vid in entry.input_ids)
                for day in range(num_days):
                    day_inputs = tuple(
                        array[day] if is_batched else array
                        for array, is_batched in zip(inputs, day_flags)
                    )
                    output[day] = sanitize(entry.func(ctx, day_inputs, entry.params))
            batched[entry.output_id] = output

        if self._prediction_id is not None and self._prediction_id in batched:
            return batched[self._prediction_id]
        # The prediction does not depend on the input matrix: every day sees
        # the same (static) value.
        return np.broadcast_to(
            self._prediction, (num_days,) + self._prediction.shape
        ).copy()
