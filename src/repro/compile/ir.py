"""SSA-style intermediate representation of alpha programs.

An :class:`~repro.core.program.AlphaProgram` addresses a small register file
(``s0..``, ``v0..``, ``m0..``) and overwrites registers freely, which makes
operand-level optimisation awkward: the same address can hold many unrelated
values over the course of one component.  Lowering to SSA form gives every
computed value its own id, so the optimiser passes (:mod:`.passes`) and the
tape executor (:mod:`.executor`) can reason about dataflow directly:

* a **value** is either a *component input* — the content of an operand at
  component entry (carried state, ``m0``, ``s0``) — or the result of one
  instruction;
* an **instruction** mirrors one :class:`~repro.core.program.Operation` but
  references value ids instead of operand addresses (the operand the original
  operation wrote is retained for liveness/export analysis);
* each component records its **inputs** (operand → value id for every operand
  read before being written) and its **exports** (operand → final value id
  for every operand written), which is how cross-component and cross-day
  dataflow — the loop-carried state of the training protocol — stays
  explicit.

The IR is intentionally minimal: three straight-line components, no control
flow.  The cross-time-step loop of the evaluation protocol lives in the
component input/export maps, exactly as in the dataflow view of Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.memory import Operand, OperandType
from ..core.ops import OpSpec, get_op
from ..core.program import AlphaProgram, COMPONENTS

__all__ = ["IRValue", "IRInstruction", "IRComponent", "IRProgram", "lower_program"]


@dataclass(frozen=True)
class IRValue:
    """One SSA value: a component input or the result of one instruction."""

    id: int
    type: OperandType
    #: For component inputs: the operand whose entry value this is.  ``None``
    #: for instruction results.
    operand: Operand | None = None

    @property
    def is_input(self) -> bool:
        """Whether this value is a component input (entry operand content)."""
        return self.operand is not None


@dataclass(frozen=True)
class IRInstruction:
    """One operation over SSA values.

    ``output`` is the operand address the original operation wrote; it only
    matters for export/liveness analysis — readers reference ``result``.
    """

    op: str
    inputs: tuple[int, ...]
    params: tuple[tuple[str, object], ...]
    result: int
    output: Operand

    @property
    def spec(self) -> OpSpec:
        """The operator specification from the registry."""
        return get_op(self.op)

    @property
    def param_dict(self) -> dict:
        """Parameters as a plain dictionary."""
        return dict(self.params)


@dataclass
class IRComponent:
    """One straight-line component (Setup / Predict / Update) in SSA form."""

    name: str
    #: Operand → value id for every operand read before being written.
    inputs: dict[Operand, int] = field(default_factory=dict)
    instructions: list[IRInstruction] = field(default_factory=list)
    #: Operand → final value id for every operand written by the component.
    exports: dict[Operand, int] = field(default_factory=dict)

    def written_operands(self) -> set[Operand]:
        """Operands this component writes (the export keys)."""
        return set(self.exports)


@dataclass
class IRProgram:
    """A full alpha program in SSA form."""

    name: str
    components: dict[str, IRComponent]
    values: dict[int, IRValue]

    @property
    def num_instructions(self) -> int:
        """Total instruction count across all components."""
        return sum(len(c.instructions) for c in self.components.values())

    def component(self, name: str) -> IRComponent:
        """The component named ``name`` (``setup``/``predict``/``update``)."""
        return self.components[name]

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable SSA listing (also the canonical-key substrate).

        Instruction results are numbered per component in listing order and
        component inputs are shown by operand name, so the rendering is
        independent of the intermediate operand addresses the original
        program happened to use.
        """
        lines: list[str] = []
        for name in COMPONENTS:
            component = self.components[name]
            lines.append(f"{name}:")
            names: dict[int, str] = {
                vid: operand.name for operand, vid in component.inputs.items()
            }
            if component.inputs:
                declared = ", ".join(
                    operand.name for operand in sorted(component.inputs)
                )
                lines.append(f"  in {declared}")
            for index, instr in enumerate(component.instructions):
                names[instr.result] = f"%{index}"
                args = ", ".join(names.get(vid, f"?{vid}") for vid in instr.inputs)
                rendered_params = "; " + ", ".join(
                    f"{key}={value!r}" for key, value in sorted(instr.params)
                ) if instr.params else ""
                lines.append(f"  %{index} = {instr.op}({args}{rendered_params})")
            if component.exports:
                exported = ", ".join(
                    f"{operand.name}={names.get(vid, f'?{vid}')}"
                    for operand, vid in sorted(component.exports.items())
                )
                lines.append(f"  out {exported}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def replace_instruction(self, component: str, index: int,
                            instruction: IRInstruction) -> None:
        """Swap one instruction in place (used by the optimiser passes)."""
        self.components[component].instructions[index] = instruction

    def copy(self) -> "IRProgram":
        """A structural copy (instructions are immutable, containers are not)."""
        return IRProgram(
            name=self.name,
            components={
                name: IRComponent(
                    name=component.name,
                    inputs=dict(component.inputs),
                    instructions=list(component.instructions),
                    exports=dict(component.exports),
                )
                for name, component in self.components.items()
            },
            values=dict(self.values),
        )


def lower_program(program: AlphaProgram) -> IRProgram:
    """Lower an :class:`AlphaProgram` into SSA form.

    Within a component, reads resolve to the most recent write; a read of an
    operand that has not been written yet creates a component-input value.
    Value ids are unique across the whole program.
    """
    values: dict[int, IRValue] = {}
    components: dict[str, IRComponent] = {}
    next_id = 0

    def new_value(type_: OperandType, operand: Operand | None = None) -> int:
        nonlocal next_id
        vid = next_id
        next_id += 1
        values[vid] = IRValue(id=vid, type=type_, operand=operand)
        return vid

    for name, operations in program.components().items():
        component = IRComponent(name=name)
        env: dict[Operand, int] = {}
        written: set[Operand] = set()
        for operation in operations:
            input_ids = []
            for operand in operation.inputs:
                if operand not in env:
                    vid = new_value(operand.type, operand=operand)
                    env[operand] = vid
                    component.inputs[operand] = vid
                input_ids.append(env[operand])
            result = new_value(operation.output.type)
            component.instructions.append(
                IRInstruction(
                    op=operation.op,
                    inputs=tuple(input_ids),
                    params=operation.params,
                    result=result,
                    output=operation.output,
                )
            )
            env[operation.output] = result
            written.add(operation.output)
        component.exports = {operand: env[operand] for operand in written}
        components[name] = component

    return IRProgram(name=program.name, components=components, values=values)


def substitute_inputs(instruction: IRInstruction,
                      mapping: dict[int, int]) -> IRInstruction:
    """Rewrite an instruction's input value ids through ``mapping``."""
    new_inputs = tuple(mapping.get(vid, vid) for vid in instruction.inputs)
    if new_inputs == instruction.inputs:
        return instruction
    return replace(instruction, inputs=new_inputs)
