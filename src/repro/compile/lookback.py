"""Static lookback analysis: how far back a point correction reaches.

During inference the day loop runs ``set_input -> predict -> set_label``;
``Update()`` never executes, so the only state that evolves is the set of
**mutable** operands — those ``Predict()`` itself exports *and* that are
loop-carried (read at a later entry).  Everything else a day's prediction
reads is either fresh that day (``m0`` from ``set_input``, ``s0`` from the
previous reveal) or **frozen** memory written by ``Setup()``/``Update()``
during training and never touched again.

This pass assigns every carried operand an **invalidation horizon**: the
number of consecutive clean days that must be replayed before the operand's
entry value is bit-exact, starting from an *arbitrary* seed state that holds
the correct frozen memory.  Frozen operands have horizon 0 (any seed state
already carries them exactly); a mutable operand needs one day to be
rewritten from its within-``Predict()`` dependencies, so its horizon is one
more than the deepest mutable operand it transitively reads:

``horizon(c) = 1 + max(0, max horizon(c') for mutable c' read by c)``

A mutable operand that (transitively) reads *itself* — an EMA-style
recurrence — never forgets its seed value, so its horizon is unbounded
(``None``).  The program-level ``max_lookback`` is the maximum finite
horizon, or ``None`` if any mutable operand is unbounded.  The common fused
-inference case (``Predict()`` exports nothing carried) gets
``max_lookback == 0``: inference state is static, and a correction at any
day replays from the *current* state with no spin-up at all.

The delta-replay engine (:mod:`repro.engine.replay`) uses this the same way
the engine layer uses ``static_predict``: a correction at served day ``t``
either restores a retained snapshot taken at or before ``t``, or — when
``max_lookback`` is finite — spins up from any live state at day
``t - max_lookback`` and replays only the bounded suffix, bitwise-identical
to a full warm-start replay.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.memory import INPUT_MATRIX, LABEL, Operand
from .ir import IRComponent, IRProgram
from .passes import DataflowInfo

__all__ = ["LookbackInfo", "analyze_lookback"]


@dataclass(frozen=True)
class LookbackInfo:
    """Per-operand invalidation horizons of the inference-day loop."""

    #: Carried operand → days of clean replay needed before its entry value
    #: is exact (``None`` = unbounded self-recurrence).  Frozen operands
    #: (carried but never written during inference) map to 0.
    horizons: dict[Operand, int | None]
    #: Replay spin-up that makes *every* carried operand exact: the maximum
    #: horizon, or ``None`` when some operand is unbounded.
    max_lookback: int | None

    @property
    def bounded(self) -> bool:
        """Whether a correction invalidates only a bounded suffix of state."""
        return self.max_lookback is not None

    def describe(self) -> str:
        """One line for the ``repro inspect`` report."""
        if self.max_lookback is None:
            unbounded = sorted(
                operand.name for operand, depth in self.horizons.items()
                if depth is None
            )
            return ("unbounded (self-recurrent inference state: "
                    + ", ".join(unbounded) + ")")
        if self.max_lookback == 0:
            return "0 days (inference state is static)"
        return f"{self.max_lookback} days"


def _input_closure(component: IRComponent) -> dict[int, frozenset[Operand]]:
    """Value id → component-input operands it transitively depends on.

    Components are straight-line SSA, so one forward sweep in listing order
    resolves every value.
    """
    closure: dict[int, frozenset[Operand]] = {
        vid: frozenset((operand,)) for operand, vid in component.inputs.items()
    }
    empty: frozenset[Operand] = frozenset()
    for instr in component.instructions:
        deps: frozenset[Operand] = empty
        for vid in instr.inputs:
            deps = deps | closure.get(vid, empty)
        closure[instr.result] = deps
    return closure


def analyze_lookback(ir: IRProgram, dataflow: DataflowInfo) -> LookbackInfo:
    """Compute inference-day invalidation horizons for ``ir``.

    Runs after dead-code elimination, over the same IR the tape executor
    binds, so the horizons describe exactly the state the compiled backend
    carries.
    """
    predict = ir.components["predict"]
    closure = _input_closure(predict)

    # Mutable = rewritten every inference day.  m0/s0 are excluded even if
    # Predict() writes them: set_input/set_label overwrite their exported
    # value before the next predict reads it, so their entry value is always
    # fresh, never carried program output.
    mutable = (set(predict.exports) & dataflow.carried) - {INPUT_MATRIX, LABEL}

    # Reads that feed each mutable operand's next entry value.  Fresh inputs
    # (m0, s0) and frozen memory contribute no depth, so only the mutable
    # subset matters for the recurrence.
    reads: dict[Operand, set[Operand]] = {
        operand: set(closure.get(predict.exports[operand], frozenset()))
        & mutable
        for operand in mutable
    }

    horizons: dict[Operand, int | None] = {
        operand: 0 for operand in dataflow.carried if operand not in mutable
    }

    # Memoised depth with on-stack cycle detection: any operand on a cycle
    # (or downstream of one) is unbounded.
    UNBOUNDED = object()
    depth_of: dict[Operand, object] = {}

    def depth(operand: Operand, stack: set[Operand]) -> object:
        if operand in depth_of:
            return depth_of[operand]
        if operand in stack:
            return UNBOUNDED
        stack.add(operand)
        result: object = 1
        for upstream in reads[operand]:
            upstream_depth = depth(upstream, stack)
            if upstream_depth is UNBOUNDED:
                result = UNBOUNDED
                break
            result = max(result, 1 + upstream_depth)  # type: ignore[operator]
        stack.remove(operand)
        depth_of[operand] = result
        return result

    for operand in mutable:
        value = depth(operand, set())
        horizons[operand] = None if value is UNBOUNDED else int(value)  # type: ignore[arg-type]

    finite = [value for value in horizons.values() if value is not None]
    max_lookback: int | None
    if len(finite) != len(horizons):
        max_lookback = None
    else:
        max_lookback = max(finite, default=0)
    return LookbackInfo(horizons=horizons, max_lookback=max_lookback)
