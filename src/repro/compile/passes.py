"""Optimiser passes over the alpha IR.

Four classic passes, specialised to the alpha language:

* **constant folding** — scalar operations whose inputs are all known
  constants are folded into ``s_const``.  Only operators whose elementwise
  result is exactly reproducible from a scalar computation (IEEE basic
  arithmetic, min/max, abs/sign/heaviside and the protected divide) are
  folded, so a folded program is numerically indistinguishable from the
  original; transcendentals are deliberately excluded because their
  vectorised and scalar code paths are not guaranteed to round identically.
* **commutative canonicalisation** — the operands of commutative operators
  are sorted by a structural value key, so ``add(s2, s3)`` and
  ``add(s3, s2)`` become the same instruction.  Execution never uses the
  canonicalised order (reordering ``min``/``max`` operands can flip the sign
  of a zero); it exists so that the *fingerprint* of mirror-image programs
  collides.
* **common-subexpression elimination** — within a component, an instruction
  that recomputes an already-available value is removed and its readers are
  rewired to the earlier value.  Every operator in the registry is a
  deterministic function of its inputs, parameters and the evaluation
  context (stochastic initialisers derive their RNG from their parameters),
  which is what makes this sound.
* **dead-code elimination** — the IR-level generalisation of the Section 4.2
  redundancy pruning: it drives the *same*
  :func:`~repro.core.pruning.liveness_fixpoint` as
  :func:`~repro.core.pruning.prune_program`, but over SSA instructions, and
  also reports the carried-operand set and per-component live-ins that the
  executor needs (export copies, fused-inference eligibility).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

import numpy as np

from ..core.memory import INPUT_MATRIX, Operand, PREDICTION
from ..core.ops import sanitize
from ..core.program import COMPONENTS
from ..core.pruning import liveness_fixpoint
from .ir import IRInstruction, IRProgram, substitute_inputs

__all__ = [
    "PassStats",
    "DataflowInfo",
    "fold_constants",
    "canonicalize_commutative",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "analyze_dataflow",
]


@dataclass(frozen=True)
class PassStats:
    """What one optimiser pass did to the IR."""

    name: str
    removed: int = 0
    rewritten: int = 0

    def describe(self) -> str:
        """One line for the ``repro inspect`` report."""
        return f"{self.name}: removed {self.removed}, rewrote {self.rewritten}"


@dataclass
class DataflowInfo:
    """Liveness results shared by dead-code elimination and the executor."""

    #: Component name → indices of instructions that contribute to the
    #: prediction (directly or through carried parameters).
    needed: dict[str, set[int]]
    #: Operands carried across time steps / components.
    carried: set[Operand]
    #: Component name → operands whose entry value the component reads.
    live_in: dict[str, set[Operand]]
    #: True when the prediction does not depend on the input matrix.
    is_redundant: bool


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------

_EPS = 1e-9


def _sanitize_scalar(value: np.float64) -> float:
    """The scalar view of :func:`repro.core.ops.sanitize` (bit-identical)."""
    return float(sanitize(np.float64(value)))


def _fold_divide(a: np.float64, b: np.float64) -> np.float64:
    return a / (np.float64(1.0) if np.abs(b) < _EPS else b)


#: Scalar operators whose elementwise result is bit-for-bit reproducible
#: from a scalar computation (see the module docstring).
_FOLDABLE = {
    "s_add": lambda a, b: a + b,
    "s_sub": lambda a, b: a - b,
    "s_mul": lambda a, b: a * b,
    "s_div": _fold_divide,
    "s_min": lambda a, b: np.minimum(a, b),
    "s_max": lambda a, b: np.maximum(a, b),
    "s_abs": lambda a: np.abs(a),
    "s_sign": lambda a: np.sign(a),
    "s_heaviside": lambda a: np.heaviside(a, 1.0),
}


def fold_constants(ir: IRProgram) -> tuple[IRProgram, PassStats]:
    """Fold scalar-constant chains into ``s_const`` instructions."""
    ir = ir.copy()
    folded = 0
    constants: dict[int, np.float64] = {}
    for name in COMPONENTS:
        component = ir.components[name]
        for index, instr in enumerate(component.instructions):
            if instr.op == "s_const":
                constants[instr.result] = np.float64(
                    _sanitize_scalar(np.float64(instr.param_dict["constant"]))
                )
                continue
            fold = _FOLDABLE.get(instr.op)
            if fold is None or any(vid not in constants for vid in instr.inputs):
                continue
            with np.errstate(all="ignore"):
                raw = fold(*(constants[vid] for vid in instr.inputs))
            value = _sanitize_scalar(raw)
            constants[instr.result] = np.float64(value)
            component.instructions[index] = IRInstruction(
                op="s_const",
                inputs=(),
                params=(("constant", value),),
                result=instr.result,
                output=instr.output,
            )
            folded += 1
    return ir, PassStats(name="fold", rewritten=folded)


# ---------------------------------------------------------------------------
# Structural value keys (canonicalisation + CSE)
# ---------------------------------------------------------------------------

def _hash_key(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _instruction_key(instr: IRInstruction, keys: dict[int, str],
                     sort_commutative: bool) -> str:
    input_keys = [keys[vid] for vid in instr.inputs]
    if sort_commutative and instr.spec.commutative:
        input_keys = sorted(input_keys)
    payload = f"{instr.op}|{sorted(instr.params)!r}|{'|'.join(input_keys)}"
    return _hash_key(payload)


def _value_keys(ir: IRProgram, sort_commutative: bool) -> dict[int, str]:
    """A structural key per SSA value (hashed, so keys stay bounded)."""
    keys: dict[int, str] = {}
    for name in COMPONENTS:
        component = ir.components[name]
        for operand, vid in component.inputs.items():
            keys[vid] = f"in:{operand.name}"
        for instr in component.instructions:
            keys[instr.result] = _instruction_key(instr, keys, sort_commutative)
    return keys


def canonicalize_commutative(ir: IRProgram) -> tuple[IRProgram, PassStats]:
    """Sort the operands of commutative instructions by structural key."""
    ir = ir.copy()
    keys = _value_keys(ir, sort_commutative=True)
    reordered = 0
    for name in COMPONENTS:
        component = ir.components[name]
        for index, instr in enumerate(component.instructions):
            if not instr.spec.commutative or len(instr.inputs) != 2:
                continue
            ordered = tuple(sorted(instr.inputs, key=lambda vid: (keys[vid], vid)))
            if ordered != instr.inputs:
                component.instructions[index] = replace(instr, inputs=ordered)
                reordered += 1
    return ir, PassStats(name="canonicalize", rewritten=reordered)


def eliminate_common_subexpressions(ir: IRProgram) -> tuple[IRProgram, PassStats]:
    """Remove instructions that recompute an already-available value.

    Matching is per component and respects the current operand order (run
    :func:`canonicalize_commutative` first to also merge mirrored operands —
    the execution pipeline deliberately does not, so that a reused value is
    always the result of a literally identical computation).
    """
    ir = ir.copy()
    removed = 0
    for name in COMPONENTS:
        component = ir.components[name]
        mapping: dict[int, int] = {}
        available: dict[str, int] = {}
        keys: dict[int, str] = {}
        for operand, vid in component.inputs.items():
            keys[vid] = f"in:{operand.name}"
        kept: list[IRInstruction] = []
        for instr in component.instructions:
            instr = substitute_inputs(instr, mapping)
            key = _instruction_key(instr, keys, sort_commutative=False)
            keys[instr.result] = key
            survivor = available.get(key)
            if survivor is not None:
                mapping[instr.result] = survivor
                removed += 1
                continue
            available[key] = instr.result
            kept.append(instr)
        component.instructions = kept
        component.exports = {
            operand: mapping.get(vid, vid)
            for operand, vid in component.exports.items()
        }
    return ir, PassStats(name="cse", removed=removed)


# ---------------------------------------------------------------------------
# Dead-code elimination (IR-level redundancy pruning)
# ---------------------------------------------------------------------------

def analyze_dataflow(ir: IRProgram) -> DataflowInfo:
    """Run the Section 4.2 liveness fixpoint over the IR.

    This reuses :func:`repro.core.pruning.liveness_fixpoint` — the same
    cross-time-step analysis that powers :func:`prune_program` — with an
    SSA-level backward pass per component.
    """
    live_in_map: dict[str, set[Operand]] = {}

    def run_component(name: str, targets: set[Operand]) -> tuple[set[int], set[Operand]]:
        component = ir.components[name]
        live: set[int] = {
            component.exports[operand]
            for operand in targets
            if operand in component.exports
        }
        needed: set[int] = set()
        for index in range(len(component.instructions) - 1, -1, -1):
            instr = component.instructions[index]
            if instr.result in live:
                needed.add(index)
                live.discard(instr.result)
                live.update(instr.inputs)
        live_in = {
            ir.values[vid].operand
            for vid in live
            if ir.values[vid].operand is not None
        }
        live_in |= {operand for operand in targets if operand not in component.exports}
        live_in_map[name] = set(live_in)
        return needed, live_in

    needed, carried = liveness_fixpoint(run_component)

    writes_prediction = PREDICTION in ir.components["predict"].exports
    uses_input_matrix = any(
        ir.values[vid].operand == INPUT_MATRIX
        for name in COMPONENTS
        for index in needed[name]
        for vid in ir.components[name].instructions[index].inputs
    )
    return DataflowInfo(
        needed=needed,
        carried=carried,
        live_in=live_in_map,
        is_redundant=not (writes_prediction and uses_input_matrix),
    )


def eliminate_dead_code(
    ir: IRProgram,
) -> tuple[IRProgram, PassStats, DataflowInfo]:
    """Drop instructions that cannot contribute to any prediction.

    Also restricts each component's exports to the operands something can
    still observe — the carried set, plus the prediction itself — which is
    what the executor turns into its per-component state write-backs.
    """
    info = analyze_dataflow(ir)
    ir = ir.copy()
    removed = 0
    for name in COMPONENTS:
        component = ir.components[name]
        removed += len(component.instructions) - len(info.needed[name])
        component.instructions = [
            component.instructions[index] for index in sorted(info.needed[name])
        ]
        used = {vid for instr in component.instructions for vid in instr.inputs}
        component.inputs = {
            operand: vid for operand, vid in component.inputs.items() if vid in used
        }
        observable = info.carried | ({PREDICTION} if name == "predict" else set())
        results = {instr.result for instr in component.instructions}
        component.exports = {
            operand: vid
            for operand, vid in component.exports.items()
            if operand in observable and vid in results
        }
    return ir, PassStats(name="dse", removed=removed), info
