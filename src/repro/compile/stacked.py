"""Stacked (cross-program) execution of signature-grouped compiled alphas.

:class:`CompiledAlpha` removed the per-operation bookkeeping; its fused
inference path removed the per-*day* dispatch.  The one axis still paid per
member is the *program* axis: a fleet of P structurally identical programs
costs P separate tape walks however similar they are.  :class:`StackedAlpha`
removes it — a group of compiled programs sharing one
:func:`stack_signature` (same opcode sequence, same SSA wiring, same operand
inputs/exports; parameter *values* free to differ) executes as **one** tape
whose state and buffers carry a leading program axis:

* scalar operands/values become ``(P, K)``, vectors ``(P, K, w)``, matrices
  ``(P, K, f, w)``;
* an instruction whose parameters agree across the group and whose operator
  is exact under a leading axis — the ``_BATCH_SAFE`` / ``_BATCH_OVERRIDES``
  registry the fused day path trusts, plus the stack-only extensions below —
  runs as **one** NumPy call for the whole group;
* the extraction operators (``get_scalar`` / ``get_row`` / ``get_column``)
  with *differing* per-member indices run as one advanced-indexing gather;
* everything else falls back to a per-member slice loop *inside* the entry
  — bitwise identical by construction (the per-lane raw results are written
  first and sanitised in one elementwise pass), while the batched majority
  still collapses P-fold dispatch into one call.

Bitwise parity with per-program execution is the same hard contract the
compiled executor honours against the interpreter.  On top of the fused day
path's elementwise registry, stacking may also batch the trailing-axis
reductions, the fixed-subscript contractions and the cross-sectional rank
(:data:`_STACK_SAFE` / :data:`_STACK_OVERRIDES`): each lane's reduction run
— the contiguous trailing axis over which NumPy accumulates — is unchanged
by a leading program axis, so the per-element accumulation order (and hence
every bit of the result) is identical to the per-program call.
Transcendental elementwise operators (``s_sin`` … ``s_log``) are admitted
by an import-time probe (:func:`_probe_transcendental_stacking`): their
SIMD kernels *could* take a different code path for different array
lengths, so each one is batched only after its stacked call reproduces the
per-slice call bit for bit on adversarial 2-D and 3-D fixtures (negatives,
zeros, clip boundaries, denormals).  An operator that fails the probe on
the running platform simply stays in the per-lane loop — the parity
contract never rests on an unverified shape-independence assumption.

Suspend/resume slices cleanly in and out of the stacked buffers:
:meth:`StackedAlpha.suspend_member` emits a :class:`TapeState`
indistinguishable from the one a solo :class:`CompiledAlpha` of the same
program would produce (same ``tape_key``, same operand set), so checkpoints
move freely between stacked and per-program serving.
"""

from __future__ import annotations

import numpy as np

from ..core.memory import INPUT_MATRIX, LABEL, Operand, OperandType, PREDICTION
from ..core.ops import _EPS, CLIP_VALUE, get_op, sanitize
from ..core.program import COMPONENTS
from ..errors import ExecutionError
from .compiler import CompiledProgram
from .executor import TAPE_STATE_VERSION, TapeState, _batched_func, tape_key_for

__all__ = ["StackedAlpha", "stack_signature"]

#: Ceiling on elements of one stacked+day-batched buffer; the fused path
#: chunks the day axis so a ``(P, C, K, f, w)`` matrix buffer stays around
#: 32 MB however large the fleet grows.
_MAX_CHUNK_ELEMENTS = 1 << 22

#: Operators whose registry implementation is already leading-axis-agnostic
#: (negative-axis reductions, broadcasting matmul) *and* whose per-lane
#: accumulation runs are unchanged by a leading program axis — NumPy reduces
#: each trailing-axis run independently in a fixed per-element order, so the
#: stacked result is bit-for-bit the per-program result.
_STACK_SAFE = frozenset({
    "v_sum", "v_mean", "v_std", "v_norm",
    "m_norm", "m_mean", "m_std", "m_mean_axis", "m_std_axis",
    "matmul",
})

#: Transcendental elementwise candidates for stacking.  Unlike the
#: reductions above, their shape independence is *verified* at import time
#: rather than argued: see :func:`_probe_transcendental_stacking`.
_TRANSCENDENTAL_CANDIDATES = (
    "s_sin", "s_cos", "s_tan", "s_arcsin", "s_arccos", "s_arctan",
    "s_exp", "s_log",
)


def _probe_transcendental_stacking(candidates=_TRANSCENDENTAL_CANDIDATES):
    """The subset of ``candidates`` whose stacked call is bit-exact here.

    For each candidate the registry kernel runs once over a stacked fixture
    and once per leading-axis slice; the operator is admitted only when the
    bytes agree on both a 2-D ``(P, K)`` and a 3-D ``(P, C, K)`` fixture —
    the two shapes the stacked day loop and the stacked fused path feed it.
    Fixture values cover the sanitised input range: both clip boundaries,
    zeros, denormals, exact ±1 (the arcsin/arccos clip edge) and a spread
    of magnitudes.
    """
    rng = np.random.default_rng(0x5AFE)
    specials = np.array([
        0.0, -0.0, 1.0, -1.0, CLIP_VALUE, -CLIP_VALUE, _EPS, -_EPS,
        5e-324, -5e-324, np.pi, -np.pi, 50.0, -50.0, 1e-9, 123456.789,
    ])

    def fixture(shape):
        flat = rng.standard_normal(int(np.prod(shape)))
        flat *= 10.0 ** rng.integers(-12, 12, flat.shape)
        flat[:specials.size] = specials
        return np.clip(flat, -CLIP_VALUE, CLIP_VALUE).reshape(shape)

    fixtures = (fixture((7, 13)), fixture((3, 5, 17)))
    admitted = []
    for name in candidates:
        func = get_op(name).func
        with np.errstate(all="ignore"):
            ok = all(
                func(None, (stacked,), {}).tobytes()
                == np.stack([
                    func(None, (lane,), {}) for lane in stacked
                ]).tobytes()
                for stacked in fixtures
            )
        if ok:
            admitted.append(name)
    return frozenset(admitted)


_STACK_SAFE = _STACK_SAFE | _probe_transcendental_stacking()

#: Stacked-mode operators worth chunking over the program axis: the
#: matrix-heavy contractions whose per-lane working set is large enough
#: that a monolithic ``(P, ...)`` call spills cache.  Batch elements are
#: contracted independently, so any leading-axis split is bitwise-neutral.
_PROGRAM_CHUNK_OPS = frozenset({"matmul", "matvec", "v_dot"})


def _stacked_rank(values: np.ndarray) -> np.ndarray:
    """Tie-averaged cross-sectional rank over the last axis, any leading axes.

    Vectorised form of :func:`repro.core.ops._cross_sectional_rank`: ranks
    are a permutation of ``arange(n)`` and tie runs average *consecutive*
    integers, so every intermediate is an exactly representable integer (or
    half-integer) and the result is bit-for-bit the 1-D implementation's.
    """
    n = values.shape[-1]
    if n == 1:
        return np.zeros_like(values)
    order = np.argsort(values, axis=-1, kind="stable")
    sorted_values = np.take_along_axis(values, order, -1)
    positions = np.arange(n, dtype=np.float64)
    is_run_start = np.ones(sorted_values.shape, dtype=bool)
    is_run_start[..., 1:] = sorted_values[..., 1:] != sorted_values[..., :-1]
    # Each sorted slot's rank is the average of its tie run's positions =
    # (run start + run end) / 2.  Run starts forward-fill; run ends are the
    # next run's start minus one (sentinel n past the last slot).
    starts = np.where(is_run_start, positions, 0.0)
    np.maximum.accumulate(starts, axis=-1, out=starts)
    next_start = np.where(is_run_start, positions, np.inf)
    next_start = np.minimum.accumulate(
        next_start[..., ::-1], axis=-1
    )[..., ::-1]
    ends = np.empty_like(sorted_values)
    ends[..., :-1] = np.minimum(next_start[..., 1:], float(n)) - 1.0
    ends[..., -1] = float(n - 1)
    ranks = np.empty_like(sorted_values)
    np.put_along_axis(ranks, order, (starts + ends) * 0.5, -1)
    return ranks / (n - 1)


#: Stack-only batched kernels: exact re-implementations whose per-lane
#: arithmetic (contraction order, rank/tie math) reproduces the registry
#: operator bit for bit under any leading axes.  Unlike ``_BATCH_OVERRIDES``
#: these are *not* used by the solo fused day path — they exist for the
#: stacked program axis (and the stacked fused path, where the same
#: per-run-order argument applies to the day axis).
_STACK_OVERRIDES = {
    "v_dot": lambda ctx, inputs, params: np.einsum(
        "...w,...w->...", inputs[0], inputs[1]
    ),
    "matvec": lambda ctx, inputs, params: np.einsum(
        "...fw,...w->...f", inputs[0], inputs[1]
    ),
    "rank": lambda ctx, inputs, params: _stacked_rank(inputs[0]),
}


def _stacked_func(name: str):
    """The stack-batched kernel for operator ``name`` (``None`` → lane loop)."""
    func = _batched_func(name)
    if func is not None:
        return func
    if name in _STACK_SAFE:
        return get_op(name).func
    return _STACK_OVERRIDES.get(name)


def _sanitize_into(out: np.ndarray, values: np.ndarray) -> None:
    """Write ``sanitize(values)`` into ``out`` without allocating.

    Same three elementwise steps as :func:`repro.core.ops.sanitize` (clip
    maps ``±inf`` to the bounds, the masked write zeroes NaN), fused into
    the preallocated output buffer — on the large ``(P, ...)`` stacked
    buffers the avoided copies are a measurable share of the day loop.
    """
    np.clip(values, -CLIP_VALUE, CLIP_VALUE, out=out)
    np.copyto(out, 0.0, where=np.isnan(out))


def _binary_out(ufunc):
    return lambda inputs, out: ufunc(inputs[0], inputs[1], out=out)


def _unary_out(ufunc):
    return lambda inputs, out: ufunc(inputs[0], out=out)


def _divide_out(inputs, out):
    # Same guarded quotient as ops._protected_divide, written into ``out``.
    np.divide(
        inputs[0],
        np.where(np.abs(inputs[1]) < _EPS, 1.0, inputs[1]),
        out=out,
    )


#: Elementwise operators backed by a single ufunc: the stacked path calls
#: them with ``out=`` so the result lands directly in the entry's
#: preallocated ``(P, ...)`` buffer and is sanitised in place — skipping a
#: temporary allocation plus one full copy pass per instruction, which on
#: DRAM-sized matrix-group buffers is a large share of the day loop.  A
#: ufunc computes each element identically with or without ``out=``, so the
#: result is bit-for-bit the registry operator's.
_OUT_KERNELS = {}
for _shape in ("s", "v", "m"):
    _OUT_KERNELS.update({
        f"{_shape}_add": _binary_out(np.add),
        f"{_shape}_sub": _binary_out(np.subtract),
        f"{_shape}_mul": _binary_out(np.multiply),
        f"{_shape}_div": _divide_out,
        f"{_shape}_min": _binary_out(np.minimum),
        f"{_shape}_max": _binary_out(np.maximum),
        f"{_shape}_abs": _unary_out(np.abs),
    })
_OUT_KERNELS["s_sign"] = _unary_out(np.sign)


def stack_signature(compiled: CompiledProgram) -> str:
    """The stacking key: the execution IR rendered with parameters masked.

    Two compiled programs with equal signatures have identical opcode
    sequences, SSA wiring, operand input/export sets and parameter *names*
    per instruction — everything :class:`StackedAlpha` needs to run them as
    one tape — while parameter *values* (constants, seeds, extraction
    indices) are lifted into the stacked per-program axis.  Fused-inference
    and static-predict eligibility are pure functions of this structure, so
    they always agree within a group.
    """
    ir = compiled.ir
    lines: list[str] = []
    for name in COMPONENTS:
        component = ir.components[name]
        lines.append(f"{name}:")
        names: dict[int, str] = {
            vid: operand.name for operand, vid in component.inputs.items()
        }
        if component.inputs:
            declared = ", ".join(
                operand.name for operand in sorted(component.inputs)
            )
            lines.append(f"  in {declared}")
        for index, instr in enumerate(component.instructions):
            names[instr.result] = f"%{index}"
            args = ", ".join(names.get(vid, f"?{vid}") for vid in instr.inputs)
            masked = "; " + ", ".join(
                f"{key}=*" for key, _ in sorted(instr.params)
            ) if instr.params else ""
            lines.append(f"  %{index} = {instr.op}({args}{masked})")
        if component.exports:
            exported = ", ".join(
                f"{operand.name}={names.get(vid, f'?{vid}')}"
                for operand, vid in sorted(component.exports.items())
            )
            lines.append(f"  out {exported}")
    return "\n".join(lines)


class _StackedEntry:
    """One instruction of the stacked tape, execution strategy pre-resolved.

    ``mode`` is decided once at bind time:

    * ``"stacked"`` — parameters identical across members and the operator
      has a leading-axis-exact kernel: one call over ``(P, ...)`` arrays;
    * ``"gather"`` — an extraction operator with per-member indices: one
      advanced-indexing call with precomputed index vectors;
    * ``"loop"`` — per-member slice fallback (exact by construction).
    """

    __slots__ = (
        "op", "mode", "func", "out_func", "nan_free", "spec_func", "gather",
        "inputs", "input_ids", "output", "output_id", "params0",
        "member_params", "calls", "pchunk",
    )

    def __init__(self, op, mode, func, spec_func, gather, inputs, input_ids,
                 output, output_id, params0, member_params, calls):
        self.op = op
        self.mode = mode
        self.func = func
        #: ``out=``-writing variant (elementwise ufuncs only, stacked mode).
        self.out_func = _OUT_KERNELS.get(op) if mode == "stacked" else None
        #: Whether the post-clip NaN scan is provably a no-op (see
        #: ``StackedAlpha._bind_entry``).
        self.nan_free = False
        self.spec_func = spec_func
        self.gather = gather
        self.inputs = inputs
        self.input_ids = input_ids
        self.output = output
        self.output_id = output_id
        self.params0 = params0
        self.member_params = member_params
        #: Kernel calls one execution of this entry issues (telemetry).
        self.calls = calls
        #: Whether the program axis may be chunked for cache residency
        #: (stacked-mode matrix contractions only; bitwise-neutral).
        self.pchunk = mode == "stacked" and op in _PROGRAM_CHUNK_OPS


def _make_gather(op: str, member_params, ctx):
    """Advanced-indexing kernel for an extraction op with per-member indices."""
    P = len(member_params)
    pidx = np.arange(P)
    if op == "get_scalar":
        rows = np.array([p["row"] % ctx.num_features for p in member_params])
        cols = np.array([p["col"] % ctx.window for p in member_params])
        kidx = np.arange(ctx.num_tasks)
        return lambda m: m[
            pidx[:, None], kidx[None, :], rows[:, None], cols[:, None]
        ]
    if op == "get_row":
        rows = np.array([p["row"] % ctx.num_features for p in member_params])
        return lambda m: m[pidx, :, rows, :]
    if op == "get_column":
        cols = np.array([p["col"] % ctx.window for p in member_params])
        return lambda m: m[pidx, :, :, cols]
    return None


class StackedAlpha:
    """One signature group of compiled alphas executed as a single tape.

    Satisfies the :class:`~repro.engine.backends.ExecutionEngine` per-day
    vocabulary with every array carrying a leading program axis:
    :attr:`prediction` is ``(P, K)``, :meth:`run_inference_batch` returns
    ``(D, P, K)``, and :meth:`set_input` / :meth:`set_label` broadcast one
    shared bar across the whole group — so the engine-layer protocol drives
    a group exactly as it drives one program.

    Parameters
    ----------
    compiled_group:
        The group's :class:`~repro.compile.compiler.CompiledProgram` members,
        all sharing one :func:`stack_signature` (validated here).
    ctx:
        The shared evaluation context every member binds to.
    program_chunk:
        Program-axis chunk size for the matrix-heavy stacked contractions
        (:data:`_PROGRAM_CHUNK_OPS`): ``None`` derives a cache-resident
        size from the context's per-lane working set, ``0`` disables
        chunking, a positive int forces that many lanes per kernel call.
        Contractions treat batch elements independently, so chunking never
        changes a bit of any result — only how many lanes each NumPy call
        touches at once.
    """

    def __init__(self, compiled_group, ctx,
                 program_chunk: int | None = None) -> None:
        compiled_group = list(compiled_group)
        if not compiled_group:
            raise ExecutionError("cannot stack an empty program group")
        template = compiled_group[0]
        signature = stack_signature(template)
        for other in compiled_group[1:]:
            if stack_signature(other) != signature:
                raise ExecutionError(
                    f"cannot stack {other.program.name!r} with "
                    f"{template.program.name!r}: tape signatures differ"
                )
        self.group = compiled_group
        self.ctx = ctx
        self.num_programs = P = len(compiled_group)
        #: Batched NumPy kernel calls issued so far (telemetry counter feed).
        self.kernel_calls = 0
        #: Set by :meth:`resume`: tape-restored state may hold raw captures
        #: of the feature/label arrays, so ``nan_free`` skips are disabled.
        self._force_nan_scan = False
        if program_chunk is None:
            # Auto: keep one chunk's matrix operands around the same
            # budget the fused path uses for its day chunks.
            per_lane = ctx.num_tasks * ctx.num_features * ctx.window
            program_chunk = max(1, _MAX_CHUNK_ELEMENTS // max(per_lane, 1))
        #: Lanes per kernel call for :data:`_PROGRAM_CHUNK_OPS` entries
        #: (``0`` = monolithic).
        self.program_chunk = int(program_chunk)

        shapes = {
            OperandType.SCALAR: (P, ctx.num_tasks),
            OperandType.VECTOR: (P, ctx.num_tasks, ctx.window),
            OperandType.MATRIX: (P, ctx.num_tasks, ctx.num_features,
                                 ctx.window),
        }
        ir = template.ir
        carried = template.dataflow.carried

        self._state: dict[Operand, np.ndarray] = {}

        def state_array(operand: Operand) -> np.ndarray:
            array = self._state.get(operand)
            if array is None:
                array = np.zeros(shapes[operand.type])
                self._state[operand] = array
            return array

        for operand in (INPUT_MATRIX, LABEL, PREDICTION):
            state_array(operand)

        self._buffers: dict[int, np.ndarray] = {}
        self._static_tape: list[_StackedEntry] = []
        self._tapes: dict[str, list[_StackedEntry]] = {}
        self._copies: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {}

        for name, component in ir.components.items():
            static_ids: set[int] = set()
            tape: list[_StackedEntry] = []
            for index, instr in enumerate(component.instructions):
                arrays = []
                for vid in instr.inputs:
                    value = ir.values[vid]
                    if value.operand is not None:
                        arrays.append(state_array(value.operand))
                    else:
                        arrays.append(self._buffers[vid])
                output = np.zeros(shapes[ir.values[instr.result].type])
                self._buffers[instr.result] = output
                member_params = tuple(
                    member.ir.components[name].instructions[index].param_dict
                    for member in compiled_group
                )
                entry = self._bind_entry(
                    instr, tuple(arrays), output, member_params
                )
                is_static = name != "setup" and all(
                    vid in static_ids for vid in instr.inputs
                )
                if is_static:
                    static_ids.add(instr.result)
                    self._static_tape.append(entry)
                else:
                    tape.append(entry)
            self._tapes[name] = tape
            self._copies[name] = [
                (state_array(operand), self._buffers[vid])
                for operand, vid in component.exports.items()
                if operand in carried
            ]

        predict = ir.components["predict"]
        prediction_value = predict.exports.get(PREDICTION)
        if prediction_value is not None:
            self._prediction = self._buffers[prediction_value]
        else:
            self._prediction = self._state[PREDICTION]
        self._prediction_id = prediction_value
        #: Per-member tape identity — the same key a solo CompiledAlpha of
        #: that member would carry, so suspended lanes resume anywhere.
        self.tape_keys = tuple(
            tape_key_for(member.ir) for member in compiled_group
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_programs(cls, programs, ctx) -> "StackedAlpha":
        """Compile ``programs`` in-process and stack them onto ``ctx``.

        The pickle-free rebind used by the shared-memory pool workers:
        only the (tiny) :class:`~repro.core.program.AlphaProgram` payloads
        cross the IPC channel; compilation, the stacked ``(P, ...)`` state
        buffers and the binding to a context whose panels are shared-memory
        views all happen inside the worker.  Raises
        :class:`~repro.errors.ExecutionError` when the programs do not
        share one :func:`stack_signature`.
        """
        from .compiler import compile_program

        return cls([compile_program(program) for program in programs], ctx)

    # ------------------------------------------------------------------
    def _bind_entry(self, instr, inputs, output, member_params):
        params0 = member_params[0]
        same_params = all(p == params0 for p in member_params[1:])
        stacked_func = _stacked_func(instr.op)
        if same_params and stacked_func is not None:
            entry = _StackedEntry(
                instr.op, "stacked", stacked_func, instr.spec.func, None,
                inputs, instr.inputs, output, instr.result, params0,
                member_params, calls=1,
            )
            if entry.out_func is not None:
                # The _OUT_KERNELS ops are closed over finite sanitised
                # inputs: sums/products/extrema of |x| <= CLIP_VALUE stay
                # finite, and the guarded divide is bounded by
                # CLIP_VALUE / _EPS.  Every input except the raw feature /
                # label arrays is a post-sanitize buffer, so unless the
                # entry reads those (or state was resumed from a tape —
                # see :meth:`resume`), the post-clip NaN scan cannot fire
                # and is skipped.
                raw = (self._state[INPUT_MATRIX], self._state[LABEL])
                entry.nan_free = not any(
                    array is raw[0] or array is raw[1] for array in inputs
                )
            return entry
        gather = None if same_params else _make_gather(
            instr.op, member_params, self.ctx
        )
        if gather is not None:
            return _StackedEntry(
                instr.op, "gather", None, instr.spec.func, gather,
                inputs, instr.inputs, output, instr.result, params0,
                member_params, calls=1,
            )
        return _StackedEntry(
            instr.op, "loop", None, instr.spec.func, None,
            inputs, instr.inputs, output, instr.result, params0,
            member_params, calls=self.num_programs,
        )

    # ------------------------------------------------------------------
    @property
    def prediction(self) -> np.ndarray:
        """The ``(P, K)`` predictions left by the last ``run_predict``."""
        return self._prediction

    @property
    def supports_fused_inference(self) -> bool:
        """Whether the group's inference runs as batched tape passes."""
        return self.group[0].fused_inference

    @property
    def supports_static_predict(self) -> bool:
        """Whether the group's whole ``Predict()`` tape is day-invariant."""
        return self.group[0].static_predict

    # ------------------------------------------------------------------
    def set_input(self, features: np.ndarray) -> None:
        """Broadcast one day's shared ``(K, f, w)`` bar into every lane."""
        self._state[INPUT_MATRIX][...] = features

    def set_label(self, labels: np.ndarray) -> None:
        """Broadcast one day's realised ``(K,)`` labels into every lane."""
        self._state[LABEL][...] = labels

    # ------------------------------------------------------------------
    def _run_tape(self, entries) -> None:
        ctx = self.ctx
        force_scan = self._force_nan_scan
        calls = 0
        for entry in entries:
            mode = entry.mode
            if mode == "stacked":
                out_func = entry.out_func
                if out_func is not None:
                    out = entry.output
                    out_func(entry.inputs, out)
                    np.clip(out, -CLIP_VALUE, CLIP_VALUE, out=out)
                    if force_scan or not entry.nan_free:
                        np.copyto(out, 0.0, where=np.isnan(out))
                elif (entry.pchunk
                        and 0 < self.program_chunk < self.num_programs):
                    chunk = self.program_chunk
                    for lane0 in range(0, self.num_programs, chunk):
                        lanes = slice(lane0, lane0 + chunk)
                        _sanitize_into(
                            entry.output[lanes],
                            entry.func(
                                ctx,
                                tuple(array[lanes]
                                      for array in entry.inputs),
                                entry.params0,
                            ),
                        )
                        calls += 1
                    calls -= entry.calls  # netted against the shared add
                else:
                    _sanitize_into(
                        entry.output,
                        entry.func(ctx, entry.inputs, entry.params0),
                    )
            elif mode == "gather":
                _sanitize_into(entry.output, entry.gather(entry.inputs[0]))
            else:
                output = entry.output
                func = entry.spec_func
                inputs = entry.inputs
                for lane, params in enumerate(entry.member_params):
                    output[lane] = func(
                        ctx, tuple(array[lane] for array in inputs), params
                    )
                # sanitize is elementwise, so one pass over the stacked
                # buffer equals P per-lane passes bit for bit — and costs
                # one dispatch instead of P.
                _sanitize_into(output, output)
            calls += entry.calls
        self.kernel_calls += calls

    @staticmethod
    def _write_back(copies) -> None:
        for target, source in copies:
            target[...] = source

    def run_setup(self) -> None:
        """Run every lane's ``Setup()`` once, plus the static prologue."""
        self._run_tape(self._tapes["setup"])
        self._write_back(self._copies["setup"])
        self._run_tape(self._static_tape)

    def run_predict(self) -> None:
        """Run every lane's ``Predict()`` for the current day."""
        self._run_tape(self._tapes["predict"])
        self._write_back(self._copies["predict"])

    def run_update(self) -> None:
        """Run every lane's ``Update()`` for the current day."""
        self._run_tape(self._tapes["update"])
        self._write_back(self._copies["update"])

    # ------------------------------------------------------------------
    # Suspend / resume: lanes slice in and out of the stacked buffers
    # ------------------------------------------------------------------
    def suspend_member(self, lane: int) -> TapeState:
        """Snapshot one lane as a standard :class:`TapeState`.

        The snapshot carries the member's *own* tape key and the per-program
        operand shapes, so it is interchangeable with one produced by a solo
        :class:`~repro.compile.executor.CompiledAlpha` of the same program —
        stacked fleets checkpoint into per-program servers and back.
        """
        ctx = self.ctx
        return TapeState(
            version=TAPE_STATE_VERSION,
            tape_key=self.tape_keys[lane],
            base_seed=ctx.base_seed,
            shape=(ctx.num_tasks, ctx.num_features, ctx.window),
            operands={
                operand.name: array[lane].copy()
                for operand, array in self._state.items()
            },
        )

    def resume(self, states) -> None:
        """Restore one :class:`TapeState` per lane into this fresh group.

        Validates each snapshot against its lane (tape key, binding shape,
        seed, operand set) before any lane is touched, re-runs the static
        prologue, then writes every lane's operand state.
        """
        states = list(states)
        if len(states) != self.num_programs:
            raise ExecutionError(
                f"expected {self.num_programs} tape states for this stacked "
                f"group, got {len(states)}"
            )
        ctx = self.ctx
        shape = (ctx.num_tasks, ctx.num_features, ctx.window)
        expected = {operand.name for operand in self._state}
        for lane, state in enumerate(states):
            if state.version != TAPE_STATE_VERSION:
                raise ExecutionError(
                    f"tape state has version {state.version}, this build "
                    f"reads version {TAPE_STATE_VERSION}"
                )
            if state.tape_key != self.tape_keys[lane]:
                raise ExecutionError(
                    "tape state was suspended from a different compiled "
                    "program"
                )
            if state.shape != shape:
                raise ExecutionError(
                    f"tape state was bound to shape {state.shape}, "
                    f"this executor is bound to {shape}"
                )
            if state.base_seed != ctx.base_seed:
                raise ExecutionError(
                    f"tape state was produced under base seed "
                    f"{state.base_seed}, this executor runs under "
                    f"{ctx.base_seed}"
                )
            snapshot = set(state.operands)
            if expected != snapshot:
                raise ExecutionError(
                    "tape state operand set does not match this tape "
                    f"(missing {sorted(expected - snapshot)}, "
                    f"unexpected {sorted(snapshot - expected)})"
                )
        self._run_tape(self._static_tape)
        for operand, array in self._state.items():
            name = operand.name
            for lane, state in enumerate(states):
                array[lane] = state.operands[name]
        # Restored operand state is whatever the tape holds — including raw
        # feature/label captures — so the nan_free scan skip no longer
        # applies to reads of carried state.
        self._force_nan_scan = True

    # ------------------------------------------------------------------
    def run_inference_batch(self, features: np.ndarray) -> np.ndarray:
        """Run the whole group's inference stage in batched tape passes.

        ``features`` is the shared ``(D, K, f, w)`` split; the return value
        holds ``(D, P, K)`` predictions, bit-for-bit equal to running each
        member's own fused (or day-loop) inference.  The day axis is chunked
        so the largest ``(P, C, K, f, w)`` intermediate stays bounded
        (:data:`_MAX_CHUNK_ELEMENTS`) however big the fleet.
        """
        template = self.group[0]
        if not template.fused_inference:
            raise ValueError(
                "program group is not eligible for fused inference; "
                "run day by day"
            )
        ctx = self.ctx
        P = self.num_programs
        num_days = features.shape[0]
        predict = template.ir.components["predict"]
        input_matrix_value = predict.inputs.get(INPUT_MATRIX)

        # Which values depend on the day axis is structural, hence shared.
        batched_ids: set[int] = set()
        if input_matrix_value is not None:
            batched_ids.add(input_matrix_value)
        for entry in self._tapes["predict"]:
            if any(vid in batched_ids for vid in entry.input_ids):
                batched_ids.add(entry.output_id)

        # Entries off the day axis read only current stacked state: one
        # execution covers every day (same move as the solo fused path).
        static_entries = [
            entry for entry in self._tapes["predict"]
            if entry.output_id not in batched_ids
        ]
        self._run_tape(static_entries)

        pred_vid = self._prediction_id
        if pred_vid is None or pred_vid not in batched_ids:
            # Prediction independent of m0: every day sees the same value.
            return np.broadcast_to(
                self._prediction, (num_days,) + self._prediction.shape
            ).copy()

        out = np.empty((num_days, P, ctx.num_tasks))
        per_day = P * ctx.num_tasks * ctx.num_features * ctx.window
        chunk = max(1, _MAX_CHUNK_ELEMENTS // max(per_day, 1))
        calls = 0
        for day0 in range(0, num_days, chunk):
            days = features[day0:day0 + chunk]
            C = days.shape[0]
            batched: dict[int, np.ndarray] = {}
            if input_matrix_value is not None:
                # Stride-0 view: the shared bar chunk is never materialised
                # P times.
                batched[input_matrix_value] = np.broadcast_to(
                    days, (P,) + days.shape
                )
            for entry in self._tapes["predict"]:
                if entry.output_id not in batched_ids:
                    continue
                inputs = tuple(
                    batched[vid] if vid in batched else array[:, None]
                    for vid, array in zip(entry.input_ids, entry.inputs)
                )
                output = np.empty((P, C) + entry.output.shape[1:])
                day_func = _batched_func(entry.op)
                if entry.mode == "stacked":
                    if entry.out_func is not None:
                        entry.out_func(inputs, output)
                        np.clip(output, -CLIP_VALUE, CLIP_VALUE, out=output)
                        if self._force_nan_scan or not entry.nan_free:
                            np.copyto(
                                output, 0.0, where=np.isnan(output)
                            )
                        calls += 1
                    elif entry.pchunk and 0 < self.program_chunk < P:
                        chunk = self.program_chunk
                        for lane0 in range(0, P, chunk):
                            lanes = slice(lane0, lane0 + chunk)
                            _sanitize_into(
                                output[lanes],
                                entry.func(
                                    ctx,
                                    tuple(array[lanes] for array in inputs),
                                    entry.params0,
                                ),
                            )
                            calls += 1
                    else:
                        _sanitize_into(
                            output, entry.func(ctx, inputs, entry.params0)
                        )
                        calls += 1
                elif day_func is not None:
                    # Per-member parameters, but the operator batches over
                    # the day axis: one day-batched call per lane (the
                    # elementwise sanitize hoists to one stacked pass).
                    for lane, params in enumerate(entry.member_params):
                        output[lane] = day_func(
                            ctx,
                            tuple(array[lane] for array in inputs),
                            params,
                        )
                    _sanitize_into(output, output)
                    calls += P
                else:
                    day_flags = tuple(
                        vid in batched for vid in entry.input_ids
                    )
                    for lane, params in enumerate(entry.member_params):
                        lane_inputs = tuple(array[lane] for array in inputs)
                        for day in range(C):
                            day_inputs = tuple(
                                array[day] if flag else array[0]
                                for array, flag in zip(lane_inputs, day_flags)
                            )
                            output[lane, day] = entry.spec_func(
                                ctx, day_inputs, params
                            )
                    _sanitize_into(output, output)
                    calls += P * C
                batched[entry.output_id] = output
            out[day0:day0 + C] = batched[pred_vid].transpose(1, 0, 2)
        self.kernel_calls += calls
        return out
