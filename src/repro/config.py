"""Global configuration defaults and random-number-generator helpers.

The paper's experiment settings (Section 5.2) are collected here as module
level constants so that every component agrees on the same defaults and the
experiment configurations in :mod:`repro.experiments.configs` can reference
them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# ---------------------------------------------------------------------------
# Paper constants (Section 5)
# ---------------------------------------------------------------------------

#: Number of feature types in the input feature matrix X (Section 5.2).
NUM_FEATURES = 13

#: Input time window in days (Section 5.2): X has shape (13, 13).
WINDOW = 13

#: Moving-average horizons used for the first four features.
MA_HORIZONS = (5, 10, 20, 30)

#: Volatility horizons used for the next four features.
VOL_HORIZONS = (5, 10, 20, 30)

#: Paper's maximum number of operations per component (Setup, Predict, Update).
MAX_SETUP_OPS = 21
MAX_PREDICT_OPS = 21
MAX_UPDATE_OPS = 45

#: Minimum number of operations per component.
MIN_OPS_PER_COMPONENT = 1

#: Paper's operand-address-space sizes.
NUM_SCALARS = 10
NUM_VECTORS = 16
NUM_MATRICES = 4

#: Evolution hyper-parameters (Section 5.2).
POPULATION_SIZE = 100
TOURNAMENT_SIZE = 10
MUTATION_PROBABILITY = 0.9

#: Hedge-fund weak-correlation standard (Section 1 / 5.4.1).
CORRELATION_CUTOFF = 0.15

#: Long-short portfolio sizes (Section 5.3).
LONG_POSITIONS = 50
SHORT_POSITIONS = 50

#: Annualisation factor for the Sharpe ratio (Section 5.3).
TRADING_DAYS_PER_YEAR = 252

#: Risk-free rate used in the Sharpe ratio (footnote 4: set to 0).
RISK_FREE_RATE = 0.0

#: Dataset split used in the paper (Section 5.1): 988 / 116 / 116 days.
PAPER_TRAIN_DAYS = 988
PAPER_VALID_DAYS = 116
PAPER_TEST_DAYS = 116

#: Number of stocks after filtering in the paper.
PAPER_NUM_STOCKS = 1026

#: Genetic-algorithm baseline probabilities (Section 5.2, following [15]).
GP_CROSSOVER_PROB = 0.4
GP_SUBTREE_MUTATION_PROB = 0.01
GP_HOIST_MUTATION_PROB = 0.0
GP_POINT_MUTATION_PROB = 0.01
GP_POINT_REPLACE_PROB = 0.4


# ---------------------------------------------------------------------------
# RNG helpers
# ---------------------------------------------------------------------------

def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged).  Every stochastic component in the
    package funnels its randomness through this helper so that experiments
    are reproducible when a seed is supplied.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


@dataclass(frozen=True)
class AddressSpace:
    """Sizes of the scalar / vector / matrix operand address spaces.

    The paper chooses 10 scalars, 16 vectors and 4 matrices (Section 5.2).
    ``s0`` is the label, ``s1`` the prediction and ``m0`` the input feature
    matrix; these reserved addresses are part of the scalar/matrix spaces.
    """

    num_scalars: int = NUM_SCALARS
    num_vectors: int = NUM_VECTORS
    num_matrices: int = NUM_MATRICES

    def __post_init__(self) -> None:
        if self.num_scalars < 2:
            raise ValueError("need at least s0 (label) and s1 (prediction)")
        if self.num_vectors < 1:
            raise ValueError("need at least one vector operand")
        if self.num_matrices < 1:
            raise ValueError("need at least m0 (input feature matrix)")


DEFAULT_ADDRESS_SPACE = AddressSpace()
