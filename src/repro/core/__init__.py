"""Core AlphaEvolve library: the alpha language, evaluator and search."""

from .cache import CacheStats, FingerprintCache, fingerprint
from .correlation import CorrelationFilter
from .evolution import (
    SCHEDULERS,
    Candidate,
    CandidateScorer,
    EvolutionConfig,
    EvolutionController,
    EvolutionResult,
    ScoreBatchHandle,
    TrajectoryPoint,
)
from .fitness import FitnessReport, INVALID_FITNESS, daily_ic, mean_ic
from .initializations import (
    INITIALIZATION_NAMES,
    domain_expert_alpha,
    get_initialization,
    neural_network_alpha,
    noop_alpha,
    random_alpha,
)
from .interpreter import AlphaEvaluator, EvaluationResult
from .memory import INPUT_MATRIX, LABEL, Memory, Operand, OperandType, PREDICTION
from .mining import MinedAlpha, MiningSession
from .mutation import MutationConfig, Mutator
from .ops import (
    CLIP_VALUE,
    Dimensions,
    ExecutionContext,
    OP_REGISTRY,
    OpKind,
    OpSpec,
    get_op,
    list_ops,
    sample_params,
)
from .program import AlphaProgram, ComponentLimits, Operation, COMPONENTS
from .pruning import PruneResult, backward_liveness, liveness_fixpoint, prune_program

__all__ = [
    "AlphaEvaluator",
    "AlphaProgram",
    "COMPONENTS",
    "CLIP_VALUE",
    "CacheStats",
    "Candidate",
    "CandidateScorer",
    "ComponentLimits",
    "CorrelationFilter",
    "Dimensions",
    "EvaluationResult",
    "EvolutionConfig",
    "EvolutionController",
    "EvolutionResult",
    "ExecutionContext",
    "SCHEDULERS",
    "ScoreBatchHandle",
    "FingerprintCache",
    "FitnessReport",
    "INITIALIZATION_NAMES",
    "INPUT_MATRIX",
    "INVALID_FITNESS",
    "LABEL",
    "Memory",
    "MinedAlpha",
    "MiningSession",
    "MutationConfig",
    "Mutator",
    "OP_REGISTRY",
    "OpKind",
    "OpSpec",
    "Operand",
    "OperandType",
    "Operation",
    "PREDICTION",
    "PruneResult",
    "TrajectoryPoint",
    "backward_liveness",
    "daily_ic",
    "domain_expert_alpha",
    "fingerprint",
    "get_initialization",
    "get_op",
    "list_ops",
    "liveness_fixpoint",
    "mean_ic",
    "neural_network_alpha",
    "noop_alpha",
    "prune_program",
    "random_alpha",
    "sample_params",
]
