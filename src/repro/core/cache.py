"""Fingerprint cache for candidate alphas (Section 4.2).

AutoML-Zero fingerprints a candidate by its predictions on a small sample set,
which requires (partially) evaluating it.  The paper's optimisation instead
fingerprints the candidate *without evaluation*: redundant operations are
pruned first, the remaining operations are rendered into a canonical string,
and that string is hashed.  If the fingerprint is already in the cache the
stored fitness score is reused; otherwise the alpha is evaluated and the
score is stored.

The cache also counts how many candidates were handled without evaluation —
redundant alphas and fingerprint hits — which is what Table 6 reports as the
benefit of the technique (number of searched alphas = pruned + evaluated).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .fitness import FitnessReport
from .program import AlphaProgram
from .pruning import PruneResult, prune_program

__all__ = ["CacheStats", "FingerprintCache", "fingerprint"]


def fingerprint(program: AlphaProgram, canonical: bool = True) -> str:
    """Hash the canonical string of a (pruned) program.

    With ``canonical=True`` (the default) the key is the canonicalised-IR
    rendering from :func:`repro.compile.canonical_key`: commutative operands
    are sorted, scalar constants folded, duplicated subexpressions merged and
    values named by position, so trivially equivalent programs — e.g.
    ``add(s2, s3)`` vs ``add(s3, s2)`` — share one fingerprint and never
    consume duplicate evaluations.  ``canonical=False`` reproduces the
    historical render-based fingerprint (kept for A/B comparisons and the
    hit-rate regression test).

    Cost: the canonical pipeline is ~0.3 ms per candidate on laptop-class
    hardware versus ~8 ms for one evaluation on the smoke task set, so every
    extra cache hit it produces repays its overhead ~25x.
    """
    if canonical:
        # Imported lazily: repro.compile depends on repro.core submodules.
        from ..compile import canonical_key

        key = canonical_key(program)
    else:
        key = program.structural_key(canonical=False)
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Counters describing how candidates were dispatched."""

    evaluated: int = 0
    fingerprint_hits: int = 0
    redundant_alphas: int = 0
    pruned_operations: int = 0

    @property
    def searched(self) -> int:
        """Total number of candidate alphas processed (Table 6's metric)."""
        return self.evaluated + self.fingerprint_hits + self.redundant_alphas

    @property
    def skipped(self) -> int:
        """Candidates that never reached the (expensive) evaluator."""
        return self.fingerprint_hits + self.redundant_alphas

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view used by experiment reports."""
        return {
            "evaluated": self.evaluated,
            "fingerprint_hits": self.fingerprint_hits,
            "redundant_alphas": self.redundant_alphas,
            "pruned_operations": self.pruned_operations,
            "searched": self.searched,
        }


@dataclass
class FingerprintCache:
    """Cache of fitness reports keyed by pruned-program fingerprints.

    Parameters
    ----------
    enabled:
        When False the cache neither prunes nor memoises — candidates always
        go to the evaluator.  This is the ``*_N`` ablation of Table 6 (the
        baseline then fingerprints by predictions, i.e. only after paying the
        evaluation cost, so nothing is saved).
    canonical:
        Whether fingerprints are computed on the canonicalised IR (the
        default; see :func:`fingerprint`) or with the historical render-based
        key.  Canonical fingerprints strictly increase the hit rate: every
        render-identical pair is also canonical-identical.
    """

    enabled: bool = True
    canonical: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: dict[str, FitnessReport] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def prepare(self, program: AlphaProgram) -> tuple[PruneResult | None, str | None,
                                                      FitnessReport | None]:
        """Prune + fingerprint ``program`` and look it up.

        Returns ``(prune_result, fingerprint, cached_report)``.  When the
        cache is disabled all three are ``None`` and the caller must evaluate
        the candidate directly.  When the candidate is redundant, a synthetic
        invalid report is returned (and counted) without touching the
        evaluator.
        """
        if not self.enabled:
            return None, None, None
        result = prune_program(program)
        self.stats.pruned_operations += result.removed_operations
        if result.is_redundant:
            self.stats.redundant_alphas += 1
            return result, None, FitnessReport.invalid("redundant alpha (pruned)")
        key = fingerprint(result.program, canonical=self.canonical)
        cached = self._entries.get(key)
        if cached is not None:
            self.stats.fingerprint_hits += 1
            return result, key, cached
        return result, key, None

    def record(self, key: str | None, report: FitnessReport) -> None:
        """Store the report of a freshly evaluated candidate."""
        self.stats.evaluated += 1
        if self.enabled and key is not None:
            self._entries[key] = report

    def clear(self) -> None:
        """Drop all cached entries (the statistics are kept)."""
        self._entries.clear()
