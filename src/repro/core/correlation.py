"""Weak-correlation cutoff between alphas (Sections 1 and 5.4.1).

Hedge funds demand that a new alpha's portfolio returns correlate with every
existing alpha's portfolio returns by less than 15 %.  During the evolutionary
process AlphaEvolve therefore discards any candidate whose validation
portfolio-return series correlates above the cutoff with any alpha already in
the mined set ``A``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..backtest.metrics import pearson_correlation
from ..config import CORRELATION_CUTOFF
from ..errors import ConfigurationError

__all__ = ["CorrelationFilter"]


@dataclass
class CorrelationFilter:
    """Tracks reference portfolio-return series and enforces the cutoff.

    Parameters
    ----------
    cutoff:
        Maximum tolerated absolute Pearson correlation (default 15 %).
    use_absolute:
        When True (default) the magnitude of the correlation is compared with
        the cutoff, so strongly anti-correlated alphas are rejected too;
        set to False to only reject positively correlated candidates.
    """

    cutoff: float = CORRELATION_CUTOFF
    use_absolute: bool = True
    _references: list[tuple[str, np.ndarray]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not (0.0 < self.cutoff <= 1.0):
            raise ConfigurationError("cutoff must lie in (0, 1]")

    # ------------------------------------------------------------------
    @property
    def num_references(self) -> int:
        """Number of reference alphas currently enforced."""
        return len(self._references)

    @property
    def reference_names(self) -> tuple[str, ...]:
        """Names of the reference alphas."""
        return tuple(name for name, _ in self._references)

    def add_reference(self, name: str, portfolio_returns: np.ndarray) -> None:
        """Register an existing alpha's portfolio-return series."""
        series = np.asarray(portfolio_returns, dtype=np.float64).ravel()
        if series.size < 2:
            raise ConfigurationError(
                "a reference portfolio-return series needs at least two days"
            )
        self._references.append((name, series))

    # ------------------------------------------------------------------
    def correlations(self, portfolio_returns: np.ndarray) -> dict[str, float]:
        """Correlation of ``portfolio_returns`` with every reference alpha."""
        series = np.asarray(portfolio_returns, dtype=np.float64).ravel()
        return {
            name: pearson_correlation(series, reference)
            for name, reference in self._references
        }

    def max_correlation(self, portfolio_returns: np.ndarray) -> float:
        """The largest (absolute, if configured) correlation with any reference.

        Returns 0.0 when no references are registered.
        """
        values = self.correlations(portfolio_returns)
        if not values:
            return 0.0
        if self.use_absolute:
            return max(abs(v) for v in values.values())
        return max(values.values())

    def passes(self, portfolio_returns: np.ndarray) -> bool:
        """True when the candidate respects the cutoff against all references."""
        return self.max_correlation(portfolio_returns) <= self.cutoff

    def fingerprint(self) -> str:
        """A digest of the cutoff and every reference series.

        Two filters with equal fingerprints reject exactly the same
        candidates; search checkpoints record it so a resume under a changed
        cutoff or accepted set fails loudly instead of reusing cached
        cutoff decisions that no longer hold.
        """
        digest = hashlib.sha256()
        digest.update(f"{self.cutoff!r}|{self.use_absolute!r}".encode())
        for name, series in self._references:
            digest.update(name.encode())
            digest.update(series.tobytes())
        return digest.hexdigest()
