"""Regularised evolutionary search over alpha programs (Section 3).

The search maintains an aging population of candidate alphas:

1. the population is seeded by mutating the initial (parent) alpha;
2. each iteration samples a *tournament* of fixed size, takes the member
   with the highest fitness as the new parent, mutates it into a child,
   evaluates the child, appends it to the population and removes the oldest
   member;
3. when the search budget is exhausted, the alpha with the highest fitness
   in the final population is returned as the evolved alpha.

Candidate scoring runs through the pruning + fingerprint cache
(:mod:`repro.core.cache`) and, when a set of previously accepted alphas is
supplied, through the 15 % correlation cutoff
(:mod:`repro.core.correlation`): a candidate that violates the cutoff
receives the invalid sentinel fitness and effectively drops out of
tournament selection, exactly like the paper's "candidate alphas are
eliminated if they are correlated with a given set of alphas".
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..backtest.engine import BacktestEngine
from ..config import POPULATION_SIZE, TOURNAMENT_SIZE, make_rng
from ..errors import EvolutionError
from .cache import CacheStats, FingerprintCache
from .correlation import CorrelationFilter
from .fitness import INVALID_FITNESS, FitnessReport
from .interpreter import AlphaEvaluator
from .mutation import Mutator
from .program import AlphaProgram

__all__ = ["EvolutionConfig", "Candidate", "TrajectoryPoint", "EvolutionResult",
           "EvolutionController"]


@dataclass(frozen=True)
class EvolutionConfig:
    """Hyper-parameters of the evolutionary search.

    The budget can be expressed as a maximum number of candidate alphas
    (``max_candidates``, counting pruned/cached/evaluated candidates alike —
    the paper's "searched alphas") and/or a wall-clock limit in seconds
    (``max_seconds``, the paper uses 60 hours per round); the search stops at
    whichever limit is hit first.
    """

    population_size: int = POPULATION_SIZE
    tournament_size: int = TOURNAMENT_SIZE
    max_candidates: int | None = 2000
    max_seconds: float | None = None
    use_pruning: bool = True
    log_every: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise EvolutionError("population_size must be at least 2")
        if self.tournament_size < 1 or self.tournament_size > self.population_size:
            raise EvolutionError(
                "tournament_size must lie in [1, population_size]"
            )
        if self.max_candidates is None and self.max_seconds is None:
            raise EvolutionError("at least one of max_candidates/max_seconds is required")
        if self.max_candidates is not None and self.max_candidates < 1:
            raise EvolutionError("max_candidates must be positive")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise EvolutionError("max_seconds must be positive")


@dataclass
class Candidate:
    """A scored member of the population."""

    program: AlphaProgram
    report: FitnessReport
    born_at: int

    @property
    def fitness(self) -> float:
        """Fitness used by tournament selection."""
        return self.report.fitness


@dataclass(frozen=True)
class TrajectoryPoint:
    """One point of the evolutionary trajectory (for Figure 6)."""

    candidates: int
    evaluations: int
    best_fitness: float
    elapsed_seconds: float


@dataclass
class EvolutionResult:
    """Outcome of one evolutionary run."""

    best_program: AlphaProgram
    best_report: FitnessReport
    best_in_population: Candidate
    trajectory: list[TrajectoryPoint]
    cache_stats: CacheStats
    candidates_generated: int
    elapsed_seconds: float

    @property
    def searched_alphas(self) -> int:
        """Total candidates processed, the quantity reported in Table 6."""
        return self.cache_stats.searched


class EvolutionController:
    """Runs regularised evolution for one alpha-mining round."""

    def __init__(
        self,
        evaluator: AlphaEvaluator,
        mutator: Mutator,
        config: EvolutionConfig | None = None,
        correlation_filter: CorrelationFilter | None = None,
        backtest_engine: BacktestEngine | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.evaluator = evaluator
        self.mutator = mutator
        self.config = config or EvolutionConfig()
        self.correlation_filter = correlation_filter
        if correlation_filter is not None and backtest_engine is None:
            raise EvolutionError(
                "a backtest engine is required when a correlation filter is used"
            )
        self.backtest_engine = backtest_engine
        self.rng = make_rng(seed)
        self.cache = FingerprintCache(enabled=self.config.use_pruning)
        self._candidates_generated = 0
        self._start_time = 0.0
        self._best_ever: Candidate | None = None
        self._trajectory: list[TrajectoryPoint] = []

    # ------------------------------------------------------------------
    # Candidate scoring
    # ------------------------------------------------------------------
    def score(self, program: AlphaProgram) -> FitnessReport:
        """Score one candidate through pruning, cache, evaluation and cutoff."""
        self._candidates_generated += 1
        prune_result, key, cached = self.cache.prepare(program)
        if cached is not None:
            return cached

        # With pruning enabled the evaluator runs the pruned program, which
        # is cheaper and numerically identical for the prediction; with the
        # technique disabled (Table 6 ablation) the full program runs.
        to_run = prune_result.program if prune_result is not None else program
        result = self.evaluator.evaluate(to_run)
        report = result.report

        if report.is_valid and self.correlation_filter is not None \
                and self.correlation_filter.num_references:
            returns = self.backtest_engine.portfolio_returns(
                result.predictions["valid"], split="valid"
            )
            max_corr = self.correlation_filter.max_correlation(returns)
            if max_corr > self.correlation_filter.cutoff:
                report = FitnessReport(
                    fitness=INVALID_FITNESS,
                    ic_valid=report.ic_valid,
                    daily_ic_valid=report.daily_ic_valid,
                    is_valid=False,
                    reason=(
                        f"correlation {max_corr:.3f} with an accepted alpha exceeds "
                        f"the {self.correlation_filter.cutoff:.0%} cutoff"
                    ),
                )
        self.cache.record(key, report)
        return report

    # ------------------------------------------------------------------
    def _budget_exhausted(self) -> bool:
        config = self.config
        if config.max_candidates is not None and \
                self._candidates_generated >= config.max_candidates:
            return True
        if config.max_seconds is not None and \
                time.perf_counter() - self._start_time >= config.max_seconds:
            return True
        return False

    def _register(self, candidate: Candidate) -> None:
        if self._best_ever is None or candidate.fitness > self._best_ever.fitness:
            self._best_ever = candidate
        self._trajectory.append(
            TrajectoryPoint(
                candidates=self._candidates_generated,
                evaluations=self.cache.stats.evaluated,
                best_fitness=self._best_ever.fitness,
                elapsed_seconds=time.perf_counter() - self._start_time,
            )
        )

    # ------------------------------------------------------------------
    def run(self, initial_program: AlphaProgram) -> EvolutionResult:
        """Evolve ``initial_program`` until the budget is exhausted."""
        config = self.config
        self._start_time = time.perf_counter()
        self._candidates_generated = 0
        self._best_ever = None
        self._trajectory = []

        population: deque[Candidate] = deque()
        parent_program = initial_program
        parent = Candidate(
            program=parent_program,
            report=self.score(parent_program),
            born_at=self._candidates_generated,
        )
        population.append(parent)
        self._register(parent)

        # ----- populate P0 by mutating the initial parent (Section 3 step 1)
        while len(population) < config.population_size and not self._budget_exhausted():
            child_program = self.mutator.mutate(parent_program)
            child = Candidate(
                program=child_program,
                report=self.score(child_program),
                born_at=self._candidates_generated,
            )
            population.append(child)
            self._register(child)

        # ----- main tournament loop (Section 3 steps 3-4)
        while not self._budget_exhausted():
            indices = self.rng.choice(
                len(population),
                size=min(config.tournament_size, len(population)),
                replace=False,
            )
            tournament = [population[int(i)] for i in indices]
            parent = max(tournament, key=lambda candidate: candidate.fitness)
            child_program = self.mutator.mutate(parent.program)
            child = Candidate(
                program=child_program,
                report=self.score(child_program),
                born_at=self._candidates_generated,
            )
            population.append(child)
            population.popleft()
            self._register(child)

        best_in_population = max(population, key=lambda candidate: candidate.fitness)
        # The paper selects the best alpha of the final population; if every
        # surviving member is invalid (tiny budgets), fall back to the best
        # candidate seen over the whole run.
        best = best_in_population
        if best.fitness <= INVALID_FITNESS and self._best_ever is not None:
            best = self._best_ever
        return EvolutionResult(
            best_program=best.program,
            best_report=best.report,
            best_in_population=best_in_population,
            trajectory=self._trajectory,
            cache_stats=self.cache.stats,
            candidates_generated=self._candidates_generated,
            elapsed_seconds=time.perf_counter() - self._start_time,
        )
