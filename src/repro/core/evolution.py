"""Regularised evolutionary search over alpha programs (Section 3).

The search maintains an aging population of candidate alphas:

1. the population is seeded by mutating the initial (parent) alpha;
2. each iteration samples a *tournament* of fixed size, takes the member
   with the highest fitness as the new parent, mutates it into a child,
   evaluates the child, appends it to the population and removes the oldest
   member;
3. when the search budget is exhausted, the alpha with the highest fitness
   in the final population is returned as the evolved alpha.

Candidate scoring runs through the pruning + fingerprint cache
(:mod:`repro.core.cache`) and, when a set of previously accepted alphas is
supplied, through the 15 % correlation cutoff
(:mod:`repro.core.correlation`): a candidate that violates the cutoff
receives the invalid sentinel fitness and effectively drops out of
tournament selection, exactly like the paper's "candidate alphas are
eliminated if they are correlated with a given set of alphas".

That prune → cache → evaluate → cutoff pipeline lives in
:class:`CandidateScorer` so that the serial :class:`EvolutionController` and
the island-model controller in :mod:`repro.parallel.islands` share one
scoring path.  Cache misses evaluate either on worker processes
(:class:`repro.parallel.pool.EvaluationPool`) or — serially — as one
:class:`repro.engine.fleet.FleetEngine` batch over a shared execution
context and data pass; both run the single protocol implementation of
:mod:`repro.engine.protocol` on the engine named by
:attr:`EvolutionConfig.engine`.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..backtest.engine import BacktestEngine
from ..config import POPULATION_SIZE, TOURNAMENT_SIZE, make_rng
from ..errors import EvolutionError
from ..obs import TELEMETRY
from .cache import CacheStats, FingerprintCache
from .correlation import CorrelationFilter
from .fitness import INVALID_FITNESS, FitnessReport
from .interpreter import AlphaEvaluator
from .mutation import Mutator
from .program import AlphaProgram

__all__ = ["EvolutionConfig", "Candidate", "TrajectoryPoint", "EvolutionResult",
           "CandidateScorer", "ScoreBatchHandle", "EvolutionController"]

#: Island-controller scheduling strategies (see
#: :meth:`repro.parallel.islands.IslandEvolutionController`).
SCHEDULERS = ("barrier", "overlap")


@dataclass(frozen=True)
class EvolutionConfig:
    """Hyper-parameters of the evolutionary search.

    The budget can be expressed as a maximum number of candidate alphas
    (``max_candidates``, counting pruned/cached/evaluated candidates alike —
    the paper's "searched alphas") and/or a wall-clock limit in seconds
    (``max_seconds``, the paper uses 60 hours per round); the search stops at
    whichever limit is hit first.

    ``num_workers`` and ``num_islands`` configure the parallel search
    subsystem (:mod:`repro.parallel`): with either above one,
    :meth:`repro.core.mining.MiningSession.search` runs the island-model
    controller, fanning candidate evaluation out to ``num_workers``
    processes.  Both default to one, which selects the serial controller.
    """

    population_size: int = POPULATION_SIZE
    tournament_size: int = TOURNAMENT_SIZE
    max_candidates: int | None = 2000
    max_seconds: float | None = None
    use_pruning: bool = True
    #: Legacy engine selector: execute candidates through the compilation
    #: pipeline (:mod:`repro.compile`) instead of the reference interpreter
    #: loop.  Results are bitwise identical; the CLI exposes
    #: ``--no-compile`` as an escape hatch.  Superseded by ``engine``.
    use_compile: bool = True
    #: Execution-engine name candidates run on (see
    #: :data:`repro.engine.ENGINES`); overrides ``use_compile`` when set.
    #: The CLI exposes it as ``--engine``.
    engine: str | None = None
    log_every: int = 0
    num_workers: int = 1
    num_islands: int = 1
    #: Island-controller scheduling strategy: ``"barrier"`` (score, then
    #: migrate, strictly in turn) or ``"overlap"`` (ring migration runs
    #: while the evaluation pool is busy scoring; migrants land one step
    #: later).  The CLI exposes it as ``--scheduler``.
    scheduler: str = "barrier"

    @property
    def execution_engine(self) -> str:
        """The resolved engine name (``engine`` over the legacy flag)."""
        from ..engine import resolve_engine

        return resolve_engine(self.engine, self.use_compile)

    def __post_init__(self) -> None:
        # Validate the engine name eagerly so a typo fails at configuration
        # time, not in a worker process mid-search — raising the same error
        # type as every other invalid field of this config.
        from ..errors import EngineError

        try:
            self.execution_engine
        except EngineError as exc:
            raise EvolutionError(str(exc)) from exc
        if self.population_size < 2:
            raise EvolutionError("population_size must be at least 2")
        if self.tournament_size < 1 or self.tournament_size > self.population_size:
            raise EvolutionError(
                "tournament_size must lie in [1, population_size]"
            )
        if self.max_candidates is None and self.max_seconds is None:
            raise EvolutionError("at least one of max_candidates/max_seconds is required")
        if self.max_candidates is not None and self.max_candidates < 1:
            raise EvolutionError("max_candidates must be positive")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise EvolutionError("max_seconds must be positive")
        if self.num_workers < 1:
            raise EvolutionError("num_workers must be at least 1")
        if self.num_islands < 1:
            raise EvolutionError("num_islands must be at least 1")
        if self.scheduler not in SCHEDULERS:
            raise EvolutionError(
                f"unknown scheduler {self.scheduler!r}; choose from "
                + ", ".join(SCHEDULERS)
            )


@dataclass
class Candidate:
    """A scored member of the population."""

    program: AlphaProgram
    report: FitnessReport
    born_at: int

    @property
    def fitness(self) -> float:
        """Fitness used by tournament selection."""
        return self.report.fitness


@dataclass(frozen=True)
class TrajectoryPoint:
    """One point of the evolutionary trajectory (for Figure 6)."""

    candidates: int
    evaluations: int
    best_fitness: float
    elapsed_seconds: float


@dataclass
class EvolutionResult:
    """Outcome of one evolutionary run."""

    best_program: AlphaProgram
    best_report: FitnessReport
    best_in_population: Candidate
    trajectory: list[TrajectoryPoint]
    cache_stats: CacheStats
    candidates_generated: int
    elapsed_seconds: float

    @property
    def searched_alphas(self) -> int:
        """Total candidates processed, the quantity reported in Table 6."""
        return self.cache_stats.searched


@dataclass
class _PendingEvaluation:
    """A cache miss awaiting evaluation, plus every batch slot it fills."""

    key: str | None
    program: AlphaProgram
    slots: list[int]


class ScoreBatchHandle:
    """An in-flight :meth:`CandidateScorer.score_batch_async` call.

    The scorer has already done all bookkeeping that must happen in
    proposal order (pruning, fingerprint-cache lookups, the searched-alpha
    counter) and — when a pool is attached — dispatched the cache misses to
    the workers.  :meth:`result` collects the evaluations, applies the
    correlation cutoff, records the cache entries and returns the reports;
    until then the caller is free to do unrelated work (the islands overlap
    scheduler performs ring migration here).  Reports are bitwise identical
    to a plain :meth:`~CandidateScorer.score_batch` call.
    """

    def __init__(self, scorer: "CandidateScorer", reports: list,
                 pending: list[_PendingEvaluation], dispatch,
                 started: float) -> None:
        self._scorer = scorer
        self._reports = reports
        self._pending = pending
        self._dispatch = dispatch
        self._started = started
        self._done = False

    def result(self) -> list[FitnessReport]:
        """Collect the evaluations and finalise the batch (idempotent)."""
        if not self._done:
            self._done = True
            self._scorer._finish_batch(
                self._reports, self._pending, self._dispatch, self._started
            )
        return self._reports


class CandidateScorer:
    """The shared prune → cache → evaluate → cutoff scoring pipeline.

    Both the serial :class:`EvolutionController` and the island-model
    controller (:mod:`repro.parallel.islands`) funnel every candidate through
    one scorer, so pruning, fingerprint caching, correlation cutoffs and the
    searched-alpha accounting behave identically in both search modes.

    Parameters
    ----------
    evaluator:
        Evaluates cache misses when no ``pool`` is supplied.
    correlation_filter / backtest_engine:
        When a filter with references is present, a valid candidate whose
        validation portfolio returns correlate above the cutoff with any
        reference is invalidated.  The engine computes those returns in the
        serial path; a pool must be constructed with
        ``compute_valid_returns=True`` so its workers return them instead.
    use_pruning:
        Disables the prune-before-evaluate fingerprint cache (Table 6's
        ``*_N`` ablation) when False.
    pool:
        Optional :class:`repro.parallel.pool.EvaluationPool`; cache misses in
        a batch are then evaluated by worker processes instead of
        ``evaluator``.
    canonical_fingerprint:
        Whether the cache fingerprints the canonicalised IR (the default) or
        uses the historical render-based key; see
        :class:`~repro.core.cache.FingerprintCache`.
    """

    def __init__(
        self,
        evaluator: AlphaEvaluator,
        correlation_filter: CorrelationFilter | None = None,
        backtest_engine: BacktestEngine | None = None,
        use_pruning: bool = True,
        pool=None,
        canonical_fingerprint: bool = True,
    ) -> None:
        if correlation_filter is not None and backtest_engine is None and pool is None:
            raise EvolutionError(
                "a backtest engine is required when a correlation filter is used"
            )
        if correlation_filter is not None and pool is not None \
                and not pool.compute_valid_returns:
            raise EvolutionError(
                "the evaluation pool must be built with compute_valid_returns=True "
                "when a correlation filter is used"
            )
        self.evaluator = evaluator
        self.correlation_filter = correlation_filter
        self.backtest_engine = backtest_engine
        self.use_pruning = use_pruning
        self.pool = pool
        self.canonical_fingerprint = canonical_fingerprint
        self.cache = FingerprintCache(enabled=use_pruning,
                                      canonical=canonical_fingerprint)
        self.candidates_generated = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all cached fingerprints and restart the candidate counter.

        Called at the start of every search run so that back-to-back runs do
        not share stale fingerprints (cached reports embed correlation-cutoff
        decisions that may no longer hold).
        """
        self.cache = FingerprintCache(enabled=self.use_pruning,
                                      canonical=self.canonical_fingerprint)
        self.candidates_generated = 0

    # ------------------------------------------------------------------
    def score(self, program: AlphaProgram) -> FitnessReport:
        """Score one candidate through pruning, cache, evaluation and cutoff."""
        return self.score_batch([program])[0]

    def score_batch(self, programs: list[AlphaProgram]) -> list[FitnessReport]:
        """Score a batch of candidates, dispatching cache misses together.

        Semantics match scoring the programs one by one with :meth:`score`:
        a program whose pruned fingerprint already appeared earlier in the
        batch reuses that evaluation (and counts as a fingerprint hit), so
        serial and batched scoring produce identical reports and cache
        statistics.
        """
        return self.score_batch_async(programs).result()

    def score_batch_async(self, programs: list[AlphaProgram]) -> ScoreBatchHandle:
        """Start scoring a batch; collect the reports on ``.result()``.

        All order-sensitive bookkeeping — pruning, fingerprint-cache
        lookups, the searched-alpha counter — happens here, synchronously,
        so interleaving other work before ``result()`` cannot change any
        outcome.  With a pool attached the cache misses are already on the
        workers when this returns; the caller overlaps useful work with
        their wall clock (the islands overlap scheduler migrates here).
        Serial scorers defer evaluation to ``result()`` instead.
        """
        batch_started = time.perf_counter() if TELEMETRY.enabled else 0.0
        reports: list[FitnessReport | None] = [None] * len(programs)
        pending: list[_PendingEvaluation] = []
        pending_by_key: dict[str, int] = {}
        for index, program in enumerate(programs):
            self.candidates_generated += 1
            prune_result, key, cached = self.cache.prepare(program)
            if cached is not None:
                reports[index] = cached
                continue
            if key is not None and key in pending_by_key:
                # An identical pruned program is already queued in this batch;
                # scored one-by-one the later copy would hit the cache.
                self.cache.stats.fingerprint_hits += 1
                pending[pending_by_key[key]].slots.append(index)
                continue
            # With pruning enabled the evaluator runs the pruned program,
            # which is cheaper and numerically identical for the prediction;
            # with the technique disabled (Table 6 ablation) the full program
            # runs.
            to_run = prune_result.program if prune_result is not None else program
            if key is not None:
                pending_by_key[key] = len(pending)
            pending.append(_PendingEvaluation(key=key, program=to_run, slots=[index]))

        dispatch = None
        if pending and self.pool is not None:
            dispatch = self.pool.submit_detailed(
                [item.program for item in pending]
            )
        return ScoreBatchHandle(self, reports, pending, dispatch, batch_started)

    def _finish_batch(self, reports: list, pending: list[_PendingEvaluation],
                      dispatch, started: float) -> None:
        """Collect evaluations, apply the cutoff, record cache entries."""
        if dispatch is not None:
            outcomes = dispatch.result()
            pairs = [(outcome.report, outcome.valid_returns)
                     for outcome in outcomes]
        else:
            pairs = self._evaluate_serial(pending)
        for item, (report, valid_returns) in zip(pending, pairs):
            report = self._apply_cutoff(report, valid_returns)
            self.cache.record(item.key, report)
            for slot in item.slots:
                reports[slot] = report
        if TELEMETRY.enabled:
            TELEMETRY.counter("search.candidates").inc(len(reports))
            TELEMETRY.counter("search.evaluations").inc(len(pending))
            TELEMETRY.histogram("search.score_batch_seconds").observe(
                time.perf_counter() - started
            )

    # ------------------------------------------------------------------
    def _evaluate_serial(
        self, pending: list[_PendingEvaluation]
    ) -> list[tuple[FitnessReport, np.ndarray | None]]:
        """Evaluate cache misses in-process, as one fleet batch.

        Returns ``(report, valid_returns)`` pairs where ``valid_returns`` is
        the validation portfolio-return series needed by the correlation
        cutoff (``None`` when no cutoff is active or the report is invalid).
        """
        if not pending:
            return []
        # Imported lazily: repro.engine builds on repro.core submodules.
        from ..engine import evaluate_program_batch

        cutoff_active = (
            self.correlation_filter is not None
            and self.correlation_filter.num_references > 0
        )
        # The whole batch of cache misses evaluates as one fleet over a
        # shared context and data pass.  Deduplication stays off: the cache
        # layer above already decided which candidates share an evaluation,
        # and the pruning-disabled ablation must not dedup behind its back.
        # This is the same entry point the pool workers run, which is what
        # keeps pooled and serial scoring bitwise identical.
        evaluated = evaluate_program_batch(
            self.evaluator, [item.program for item in pending]
        )
        results = []
        for result in evaluated:
            valid_returns = None
            if cutoff_active and result.is_valid:
                valid_returns = self.backtest_engine.portfolio_returns(
                    result.predictions["valid"], split="valid"
                )
            results.append((result.report, valid_returns))
        return results

    def _apply_cutoff(
        self, report: FitnessReport, valid_returns: np.ndarray | None
    ) -> FitnessReport:
        """Invalidate a valid report that violates the correlation cutoff."""
        if not report.is_valid or self.correlation_filter is None \
                or not self.correlation_filter.num_references:
            return report
        if valid_returns is None:
            return report
        max_corr = self.correlation_filter.max_correlation(valid_returns)
        if max_corr <= self.correlation_filter.cutoff:
            return report
        return FitnessReport(
            fitness=INVALID_FITNESS,
            ic_valid=report.ic_valid,
            daily_ic_valid=report.daily_ic_valid,
            is_valid=False,
            reason=(
                f"correlation {max_corr:.3f} with an accepted alpha exceeds "
                f"the {self.correlation_filter.cutoff:.0%} cutoff"
            ),
        )


class EvolutionController:
    """Runs regularised evolution for one alpha-mining round."""

    def __init__(
        self,
        evaluator: AlphaEvaluator,
        mutator: Mutator,
        config: EvolutionConfig | None = None,
        correlation_filter: CorrelationFilter | None = None,
        backtest_engine: BacktestEngine | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.evaluator = evaluator
        self.mutator = mutator
        self.config = config or EvolutionConfig()
        self.correlation_filter = correlation_filter
        self.backtest_engine = backtest_engine
        self.rng = make_rng(seed)
        self.scorer = CandidateScorer(
            evaluator,
            correlation_filter=correlation_filter,
            backtest_engine=backtest_engine,
            use_pruning=self.config.use_pruning,
        )
        self._start_time = 0.0
        self._best_ever: Candidate | None = None
        self._trajectory: list[TrajectoryPoint] = []

    # ------------------------------------------------------------------
    @property
    def cache(self) -> FingerprintCache:
        """The scorer's fingerprint cache (reset at the start of each run)."""
        return self.scorer.cache

    def score(self, program: AlphaProgram) -> FitnessReport:
        """Score one candidate through pruning, cache, evaluation and cutoff."""
        return self.scorer.score(program)

    # ------------------------------------------------------------------
    def _budget_exhausted(self) -> bool:
        config = self.config
        if config.max_candidates is not None and \
                self.scorer.candidates_generated >= config.max_candidates:
            return True
        if config.max_seconds is not None and \
                time.perf_counter() - self._start_time >= config.max_seconds:
            return True
        return False

    def _register(self, candidate: Candidate) -> None:
        if self._best_ever is None or candidate.fitness > self._best_ever.fitness:
            self._best_ever = candidate
        self._trajectory.append(
            TrajectoryPoint(
                candidates=self.scorer.candidates_generated,
                evaluations=self.cache.stats.evaluated,
                best_fitness=self._best_ever.fitness,
                elapsed_seconds=time.perf_counter() - self._start_time,
            )
        )

    # ------------------------------------------------------------------
    def run(self, initial_program: AlphaProgram) -> EvolutionResult:
        """Evolve ``initial_program`` until the budget is exhausted.

        ``run`` is reusable: every call starts from a fresh fingerprint cache
        and candidate counter, so back-to-back runs never reuse stale cached
        fitness reports (the mutator and tournament RNGs do advance across
        calls, as independent restarts should).
        """
        with TELEMETRY.span("search.run"):
            result = self._run(initial_program)
        if TELEMETRY.enabled:
            stats = result.cache_stats
            if stats.searched:
                TELEMETRY.gauge("search.cache_hit_rate").set(
                    stats.skipped / stats.searched
                )
            if result.elapsed_seconds > 0:
                TELEMETRY.gauge("search.candidates_per_second").set(
                    result.candidates_generated / result.elapsed_seconds
                )
        return result

    def _run(self, initial_program: AlphaProgram) -> EvolutionResult:
        config = self.config
        self._start_time = time.perf_counter()
        self.scorer.reset()
        self._best_ever = None
        self._trajectory = []

        population: deque[Candidate] = deque()
        parent_program = initial_program
        parent = Candidate(
            program=parent_program,
            report=self.score(parent_program),
            born_at=self.scorer.candidates_generated,
        )
        population.append(parent)
        self._register(parent)

        # ----- populate P0 by mutating the initial parent (Section 3 step 1)
        while len(population) < config.population_size and not self._budget_exhausted():
            child_program = self.mutator.mutate(parent_program)
            child = Candidate(
                program=child_program,
                report=self.score(child_program),
                born_at=self.scorer.candidates_generated,
            )
            population.append(child)
            self._register(child)

        # ----- main tournament loop (Section 3 steps 3-4)
        while not self._budget_exhausted():
            indices = self.rng.choice(
                len(population),
                size=min(config.tournament_size, len(population)),
                replace=False,
            )
            tournament = [population[int(i)] for i in indices]
            parent = max(tournament, key=lambda candidate: candidate.fitness)
            child_program = self.mutator.mutate(parent.program)
            child = Candidate(
                program=child_program,
                report=self.score(child_program),
                born_at=self.scorer.candidates_generated,
            )
            population.append(child)
            population.popleft()
            self._register(child)

        best_in_population = max(population, key=lambda candidate: candidate.fitness)
        # The paper selects the best alpha of the final population; if every
        # surviving member is invalid (tiny budgets), fall back to the best
        # candidate seen over the whole run.
        best = best_in_population
        if best.fitness <= INVALID_FITNESS and self._best_ever is not None:
            best = self._best_ever
        return EvolutionResult(
            best_program=best.program,
            best_report=best.report,
            best_in_population=best_in_population,
            trajectory=self._trajectory,
            cache_stats=self.cache.stats,
            candidates_generated=self.scorer.candidates_generated,
            elapsed_seconds=time.perf_counter() - self._start_time,
        )
