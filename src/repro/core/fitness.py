"""Fitness measures for candidate alphas.

The evolutionary search scores every candidate with the Information
Coefficient (IC, Eq. 1 of the paper): the average over validation days of the
sample Pearson correlation between the cross-section of predictions and the
cross-section of realised returns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExecutionError

__all__ = ["INVALID_FITNESS", "daily_ic", "mean_ic", "FitnessReport"]

#: Sentinel fitness assigned to invalid alphas (redundant programs, constant
#: predictions, execution failures).  The IC lies in [-1, 1], so any valid
#: alpha dominates this value in tournament selection.
INVALID_FITNESS = -2.0


def daily_ic(predictions: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-day cross-sectional Pearson correlation.

    Parameters
    ----------
    predictions, labels:
        Arrays of shape ``(N, K)`` — days by stocks.

    Returns
    -------
    np.ndarray
        Length-``N`` array of daily correlations.  Days where either the
        predictions or the labels have zero cross-sectional variance
        contribute a correlation of 0.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if predictions.shape != labels.shape:
        raise ExecutionError(
            f"predictions {predictions.shape} and labels {labels.shape} differ in shape"
        )
    if predictions.ndim != 2:
        raise ExecutionError("daily_ic expects 2-D (days, stocks) arrays")

    pred_centered = predictions - predictions.mean(axis=1, keepdims=True)
    label_centered = labels - labels.mean(axis=1, keepdims=True)
    pred_std = pred_centered.std(axis=1)
    label_std = label_centered.std(axis=1)
    covariance = (pred_centered * label_centered).mean(axis=1)
    denominator = pred_std * label_std
    with np.errstate(divide="ignore", invalid="ignore"):
        correlations = np.where(denominator > 0, covariance / denominator, 0.0)
    return np.nan_to_num(correlations, nan=0.0)


def mean_ic(predictions: np.ndarray, labels: np.ndarray) -> float:
    """The Information Coefficient (Eq. 1): mean of the daily correlations."""
    series = daily_ic(predictions, labels)
    if series.size == 0:
        return 0.0
    return float(series.mean())


@dataclass(frozen=True)
class FitnessReport:
    """Fitness of a candidate plus the diagnostics the miner records."""

    fitness: float
    ic_valid: float
    daily_ic_valid: np.ndarray
    is_valid: bool
    reason: str = ""

    @classmethod
    def invalid(cls, reason: str) -> "FitnessReport":
        """A report for an alpha that could not be scored."""
        return cls(
            fitness=INVALID_FITNESS,
            ic_valid=float("nan"),
            daily_ic_valid=np.empty(0),
            is_valid=False,
            reason=reason,
        )
