"""Starting alphas used to initialise the evolutionary search (Section 5.2).

The paper compares four initialisations:

* ``alpha_AE_D``    — a *domain-expert-designed* formulaic alpha (Figure 2);
* ``alpha_AE_NOOP`` — no initialisation (a minimal placeholder program);
* ``alpha_AE_R``    — a randomly designed alpha;
* ``alpha_AE_NN``   — a two-layer neural-network alpha.

All four are expressed in the alpha language itself, so AlphaEvolve can evolve
any of them.  The two-layer NN shows that the language is expressive enough to
contain machine-learning alphas: its Setup() samples random weights, its
Predict() computes ``w2 · relu(W1 x)`` on the latest day's feature vector and
its Update() performs one step of stochastic gradient descent on the squared
error — entirely with the registered operators.
"""

from __future__ import annotations

import numpy as np

from ..config import AddressSpace, DEFAULT_ADDRESS_SPACE
from ..errors import ConfigurationError
from .memory import INPUT_MATRIX, LABEL, Operand, PREDICTION
from .mutation import Mutator
from .ops import Dimensions
from .program import AlphaProgram, Operation

__all__ = [
    "INITIALIZATION_NAMES",
    "domain_expert_alpha",
    "noop_alpha",
    "random_alpha",
    "neural_network_alpha",
    "get_initialization",
]

#: Paper feature-row indices inside the input matrix (see FEATURE_NAMES).
_ROW_MA5 = 0
_ROW_MA20 = 2
_ROW_MA30 = 3
_ROW_CLOSE = 11

INITIALIZATION_NAMES = ("D", "NOOP", "R", "NN")


def domain_expert_alpha(dims: Dimensions, name: str = "alpha_D") -> AlphaProgram:
    """A classic moving-average-crossover formulaic alpha.

    The trading signal is the relative gap between the 5-day and the 20-day
    moving averages of the close price on the most recent day of the window —
    a standard momentum expression a human quant would write down directly
    (the "well-designed formulaic alpha" of Figure 2).  Setup() and Update()
    contain only placeholder constants (a formulaic alpha has no parameters),
    satisfying the minimum-one-operation constraint.
    """
    last = dims.window - 1
    s2, s3, s4 = Operand.scalar(2), Operand.scalar(3), Operand.scalar(4)
    predict = [
        Operation.make("get_scalar", (INPUT_MATRIX,), s2,
                       {"row": _ROW_MA5, "col": last}),
        Operation.make("get_scalar", (INPUT_MATRIX,), s3,
                       {"row": _ROW_MA20, "col": last}),
        Operation.make("s_sub", (s2, s3), s4),
        Operation.make("s_div", (s4, s3), PREDICTION),
    ]
    setup = [Operation.make("s_const", (), Operand.scalar(5), {"constant": 0.0})]
    update = [Operation.make("s_const", (), Operand.scalar(6), {"constant": 0.0})]
    return AlphaProgram(setup=setup, predict=predict, update=update, name=name)


def noop_alpha(dims: Dimensions, name: str = "alpha_NOOP") -> AlphaProgram:
    """The no-initialisation starting point (``alpha_AE_NOOP``)."""
    mutator = Mutator(dims, seed=0)
    program = mutator.empty_program(name=name)
    return program


def random_alpha(
    dims: Dimensions,
    seed: int | np.random.Generator | None = None,
    address_space: AddressSpace = DEFAULT_ADDRESS_SPACE,
    name: str = "alpha_R",
) -> AlphaProgram:
    """A randomly designed starting alpha (``alpha_AE_R``)."""
    mutator = Mutator(dims, address_space=address_space, seed=seed)
    return mutator.random_program(num_setup=2, num_predict=6, num_update=4, name=name)


def neural_network_alpha(
    dims: Dimensions,
    learning_rate: float = 0.01,
    weight_scale: float = 0.1,
    name: str = "alpha_NN",
) -> AlphaProgram:
    """A two-layer neural network written in the alpha language (``alpha_AE_NN``).

    * input  — the feature vector of the most recent day (a column of ``m0``);
    * hidden — ``relu(W1 x)`` with ``W1`` initialised uniformly in Setup();
    * output — ``w2 · hidden`` as the prediction;
    * Update() performs one SGD step on the squared error ``(y - s1)^2`` for
      both layers using the operators of the language (outer products for the
      weight-matrix gradient).
    """
    if learning_rate <= 0:
        raise ConfigurationError("learning_rate must be positive")
    last = dims.window - 1

    x = Operand.vector(0)        # input feature vector
    hidden_pre = Operand.vector(1)
    hidden_mask = Operand.vector(2)
    hidden = Operand.vector(3)
    w2 = Operand.vector(4)
    grad_w2 = Operand.vector(5)
    backprop = Operand.vector(6)
    scaled_backprop = Operand.vector(7)
    w1 = Operand.matrix(1)
    grad_w1 = Operand.matrix(2)
    error = Operand.scalar(2)
    step = Operand.scalar(3)
    lr = Operand.scalar(4)

    setup = [
        Operation.make("matrix_uniform", (), w1,
                       {"low": -weight_scale, "high": weight_scale}),
        Operation.make("vector_uniform", (), w2,
                       {"low": -weight_scale, "high": weight_scale}),
        Operation.make("s_const", (), lr, {"constant": learning_rate}),
    ]
    predict = [
        Operation.make("get_column", (INPUT_MATRIX,), x, {"col": last}),
        Operation.make("matvec", (w1, x), hidden_pre),
        Operation.make("v_heaviside", (hidden_pre,), hidden_mask),
        Operation.make("v_mul", (hidden_pre, hidden_mask), hidden),
        Operation.make("v_dot", (hidden, w2), PREDICTION),
    ]
    update = [
        # error = y - prediction, step = lr * error
        Operation.make("s_sub", (LABEL, PREDICTION), error),
        Operation.make("s_mul", (error, lr), step),
        # w2 += step * hidden
        Operation.make("v_scale", (step, hidden), grad_w2),
        Operation.make("v_add", (w2, grad_w2), w2),
        # W1 += outer(step * (w2 * relu'(hidden_pre)), x)
        Operation.make("v_mul", (w2, hidden_mask), backprop),
        Operation.make("v_scale", (step, backprop), scaled_backprop),
        Operation.make("v_outer", (scaled_backprop, x), grad_w1),
        Operation.make("m_add", (w1, grad_w1), w1),
    ]
    return AlphaProgram(setup=setup, predict=predict, update=update, name=name)


def get_initialization(
    kind: str,
    dims: Dimensions,
    seed: int | np.random.Generator | None = None,
    address_space: AddressSpace = DEFAULT_ADDRESS_SPACE,
) -> AlphaProgram:
    """Build the starting alpha for an initialisation code (``D``/``NOOP``/``R``/``NN``)."""
    kind = kind.upper()
    if kind == "D":
        return domain_expert_alpha(dims)
    if kind == "NOOP":
        return noop_alpha(dims)
    if kind == "R":
        return random_alpha(dims, seed=seed, address_space=address_space)
    if kind == "NN":
        return neural_network_alpha(dims)
    raise ConfigurationError(
        f"unknown initialisation {kind!r}; expected one of {INITIALIZATION_NAMES}"
    )
