"""Vectorised execution of alpha programs over a task set.

The evaluator implements the training / inference protocol of Section 2:

* **Training stage** — for every training day ``t`` (in chronological order)
  the input matrix ``m0`` is set to the day's feature matrices, ``Predict()``
  runs, and then the label ``s0`` is revealed and ``Update()`` runs.  Memory
  persists across days, so operands written by ``Update()`` accumulate
  long-term information: they are the alpha's *parameters*.
* **Inference stage** — the trained memory is carried over; for every
  validation/test day only ``Predict()`` runs and the value left in ``s1`` is
  recorded as the prediction.  The realised label is written into ``s0``
  *after* the prediction is recorded (it is known the next day), so alphas
  may use recent returns as features without look-ahead.

``Setup()`` runs once before the training stage.

The evaluator executes every operation for all ``K`` stocks at once (see
:mod:`repro.core.memory`), which is what makes the cross-sectional
RelationOps well-defined and the search fast enough in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import AddressSpace, DEFAULT_ADDRESS_SPACE, make_rng
from ..data.dataset import TaskSet
from ..errors import ExecutionError
from .fitness import FitnessReport, INVALID_FITNESS, daily_ic, mean_ic
from .memory import INPUT_MATRIX, LABEL, Memory, PREDICTION
from .ops import ExecutionContext
from .program import AlphaProgram

__all__ = ["EvaluationResult", "AlphaEvaluator"]


@dataclass
class EvaluationResult:
    """Outcome of evaluating one alpha program on a task set."""

    program: AlphaProgram
    fitness: float
    ic_valid: float
    ic_test: float
    predictions: dict[str, np.ndarray]
    daily_ic_valid: np.ndarray = field(default_factory=lambda: np.empty(0))
    is_valid: bool = True
    reason: str = ""

    @property
    def report(self) -> FitnessReport:
        """The fitness report corresponding to this evaluation."""
        return FitnessReport(
            fitness=self.fitness,
            ic_valid=self.ic_valid,
            daily_ic_valid=self.daily_ic_valid,
            is_valid=self.is_valid,
            reason=self.reason,
        )


class AlphaEvaluator:
    """Executes and scores alpha programs on a :class:`TaskSet`.

    Parameters
    ----------
    taskset:
        The samples of all stock tasks.
    address_space:
        Operand address-space sizes (defaults to the paper's 10/16/4).
    seed:
        Seed of the evaluator's RNG (used only by stochastic initialiser
        operators such as ``vector_uniform``); fixing it makes evaluation
        deterministic.
    max_train_steps:
        Optional cap on the number of training days used during the (single
        epoch) training pass.  When set, training days are subsampled evenly.
        This mirrors the paper's "train by one epoch for fast evaluation" and
        lets the laptop-scale experiment configs trade accuracy for speed.
    use_update:
        When False the ``Update()`` component is skipped entirely — this is
        the ``*_P`` ablation of Table 4 (alpha without the parameter-updating
        function).
    evaluate_test:
        Whether :meth:`evaluate` also produces test-split predictions.
    compiled:
        When True (the default) programs execute through the compilation
        pipeline (:mod:`repro.compile`): a flat instruction tape with
        pre-resolved dispatch and preallocated slots, and a fused batched
        inference stage when the trained memory is static across days.
        Results are bitwise identical to the interpreter loop
        (``compiled=False``, the reference implementation and the
        ``--no-compile`` escape hatch).
    """

    def __init__(
        self,
        taskset: TaskSet,
        address_space: AddressSpace = DEFAULT_ADDRESS_SPACE,
        seed: int | np.random.Generator | None = 0,
        max_train_steps: int | None = None,
        use_update: bool = True,
        evaluate_test: bool = True,
        compiled: bool = True,
    ) -> None:
        if taskset.num_features != taskset.window:
            raise ExecutionError(
                "the alpha language requires square feature matrices (f == w); "
                f"got f={taskset.num_features}, w={taskset.window}"
            )
        self.taskset = taskset
        self.address_space = address_space
        self._seed_rng = make_rng(seed)
        self._base_seed = int(self._seed_rng.integers(0, 2**63 - 1))
        self.max_train_steps = max_train_steps
        self.use_update = use_update
        self.evaluate_test = evaluate_test
        self.compiled = bool(compiled)
        self._sector_index = taskset.taxonomy.group_index("sector")
        self._industry_index = taskset.taxonomy.group_index("industry")

    # ------------------------------------------------------------------
    @property
    def base_seed(self) -> int:
        """The derived seed all evaluation RNGs start from.

        Two evaluators with equal ``base_seed`` (and equal settings) produce
        bitwise-identical results; search checkpoints record it to detect a
        resume under a different evaluator.
        """
        return self._base_seed

    # ------------------------------------------------------------------
    def make_context(self) -> ExecutionContext:
        """A fresh :class:`ExecutionContext` for one program execution.

        :meth:`run` builds one per call; the streaming subsystem
        (:mod:`repro.stream`) builds one per registered alpha through this
        same method, which is what keeps online serving bitwise identical to
        the offline batch path.
        """
        return ExecutionContext(
            num_tasks=self.taskset.num_tasks,
            num_features=self.taskset.num_features,
            window=self.taskset.window,
            sector_index=self._sector_index,
            industry_index=self._industry_index,
            rng=np.random.default_rng(self._base_seed),
            base_seed=self._base_seed,
        )

    def train_day_indices(self) -> np.ndarray:
        """The training-day subsample the (single-epoch) training pass visits.

        With ``max_train_steps`` unset this is every training day in order;
        otherwise the days are subsampled evenly.  Public because the
        streaming subsystem (:mod:`repro.stream`) must warm-start its
        executors over *exactly* this subsample to stay bitwise identical to
        the offline batch path.
        """
        train_days = self.taskset.split.train
        if self.max_train_steps is None or self.max_train_steps >= train_days:
            return np.arange(train_days)
        return np.linspace(0, train_days - 1, self.max_train_steps).astype(np.int64)

    # ------------------------------------------------------------------
    def run(
        self,
        program: AlphaProgram,
        splits: tuple[str, ...] = ("valid", "test"),
        use_update: bool | None = None,
    ) -> dict[str, np.ndarray]:
        """Train the alpha and return its predictions on the requested splits.

        The training pass always runs (one epoch over the training days); the
        returned dictionary maps each requested split name to an array of
        shape ``(num_days_in_split, K)``.
        """
        use_update = self.use_update if use_update is None else use_update
        program.validate(self.address_space)

        ctx = self.make_context()
        if self.compiled:
            return self._run_compiled(program, splits, use_update, ctx)
        memory = Memory(
            num_tasks=self.taskset.num_tasks,
            num_features=self.taskset.num_features,
            window=self.taskset.window,
            address_space=self.address_space,
        )

        setup_ops = [(op.spec, op.inputs, op.output, op.param_dict) for op in program.setup]
        predict_ops = [(op.spec, op.inputs, op.output, op.param_dict) for op in program.predict]
        update_ops = [(op.spec, op.inputs, op.output, op.param_dict) for op in program.update]

        def execute(op_list) -> None:
            for spec, inputs, output, params in op_list:
                arrays = tuple(memory.read(operand) for operand in inputs)
                memory.write(output, spec(ctx, arrays, params))

        execute(setup_ops)

        # ----- training stage (single epoch, Section 5.2) -----
        train_features = self.taskset.split_features("train")
        train_labels = self.taskset.split_labels("train")
        train_predictions = np.zeros((train_features.shape[0], self.taskset.num_tasks))
        for day in self.train_day_indices():
            memory.write(INPUT_MATRIX, train_features[day])
            execute(predict_ops)
            train_predictions[day] = memory.read(PREDICTION)
            memory.write(LABEL, train_labels[day])
            if use_update:
                execute(update_ops)

        predictions: dict[str, np.ndarray] = {}
        if "train" in splits:
            predictions["train"] = train_predictions

        # ----- inference stage -----
        for split in ("valid", "test"):
            if split not in splits:
                continue
            features = self.taskset.split_features(split)
            labels = self.taskset.split_labels(split)
            split_predictions = np.zeros((features.shape[0], self.taskset.num_tasks))
            for day in range(features.shape[0]):
                memory.write(INPUT_MATRIX, features[day])
                execute(predict_ops)
                split_predictions[day] = memory.read(PREDICTION)
                memory.write(LABEL, labels[day])
            predictions[split] = split_predictions
        return predictions

    # ------------------------------------------------------------------
    def _run_compiled(
        self,
        program: AlphaProgram,
        splits: tuple[str, ...],
        use_update: bool,
        ctx,
    ) -> dict[str, np.ndarray]:
        """The compiled counterpart of :meth:`run` (bitwise identical).

        The training stage keeps its sequential per-day loop (labels are
        revealed between days) but runs on the flat tape; the inference
        stage collapses into one batched tape pass whenever the program is
        eligible (see :mod:`repro.compile.executor`).
        """
        # Imported lazily: repro.compile depends on repro.core submodules.
        from ..compile import CompiledAlpha, compile_program

        executor = CompiledAlpha(compile_program(program), ctx)
        executor.run_setup()

        # ----- training stage (single epoch, Section 5.2) -----
        train_features = self.taskset.split_features("train")
        train_labels = self.taskset.split_labels("train")
        train_predictions = np.zeros((train_features.shape[0], self.taskset.num_tasks))
        for day in self.train_day_indices():
            executor.set_input(train_features[day])
            executor.run_predict()
            train_predictions[day] = executor.prediction
            executor.set_label(train_labels[day])
            if use_update:
                executor.run_update()

        predictions: dict[str, np.ndarray] = {}
        if "train" in splits:
            predictions["train"] = train_predictions

        # ----- inference stage (fused into one batched pass if eligible) ---
        for split in ("valid", "test"):
            if split not in splits:
                continue
            features = self.taskset.split_features(split)
            labels = self.taskset.split_labels(split)
            if executor.supports_fused_inference:
                # Predict() reads neither the label nor its own writes, so
                # the day loop (and the post-prediction label reveal) is
                # unobservable — all days batch into one tape pass.
                predictions[split] = executor.run_inference_batch(features)
                continue
            split_predictions = np.zeros((features.shape[0], self.taskset.num_tasks))
            for day in range(features.shape[0]):
                executor.set_input(features[day])
                executor.run_predict()
                split_predictions[day] = executor.prediction
                executor.set_label(labels[day])
            predictions[split] = split_predictions
        return predictions

    # ------------------------------------------------------------------
    def evaluate(
        self,
        program: AlphaProgram,
        use_update: bool | None = None,
    ) -> EvaluationResult:
        """Train and score ``program``; never raises on numerical failures.

        Structural failures (invalid operands, disallowed operators) do raise
        :class:`~repro.errors.ProgramError` because they indicate a bug in the
        caller (the mutator never produces them); numerical degeneracies such
        as constant predictions yield an invalid :class:`EvaluationResult`
        with the sentinel fitness instead.
        """
        splits: tuple[str, ...] = ("valid", "test") if self.evaluate_test else ("valid",)
        predictions = self.run(program, splits=splits, use_update=use_update)

        valid_preds = predictions["valid"]
        valid_labels = self.taskset.split_labels("valid")
        per_day_variance = valid_preds.std(axis=1)
        if not np.isfinite(valid_preds).all() or np.all(per_day_variance < 1e-12):
            return EvaluationResult(
                program=program,
                fitness=INVALID_FITNESS,
                ic_valid=float("nan"),
                ic_test=float("nan"),
                predictions=predictions,
                is_valid=False,
                reason="degenerate predictions on the validation split",
            )

        ic_series = daily_ic(valid_preds, valid_labels)
        ic_valid = float(ic_series.mean())
        ic_test = float("nan")
        if "test" in predictions:
            ic_test = mean_ic(predictions["test"], self.taskset.split_labels("test"))
        return EvaluationResult(
            program=program,
            fitness=ic_valid,
            ic_valid=ic_valid,
            ic_test=ic_test,
            predictions=predictions,
            daily_ic_valid=ic_series,
            is_valid=True,
        )
