"""Evaluation of alpha programs over a task set (the engine-layer facade).

The evaluator owns the *evaluation policy* of Section 2 — which splits
exist, how training days are subsampled, how a prediction panel turns into
a fitness — and delegates all *execution* to the unified engine layer
(:mod:`repro.engine`):

* the train/inference label-reveal protocol is implemented exactly once, in
  :mod:`repro.engine.protocol` (this module historically held two copies of
  that day-loop; both are gone);
* the execution backend is selected by name — ``"interpreter"`` for the
  reference per-operation loop, ``"compiled"`` for the flat-tape pipeline
  of :mod:`repro.compile` — via :func:`repro.engine.make_backend`; the
  historical ``compiled=`` flag maps onto those names and keeps working;
* the engine's time-vectorised fast paths (fused inference, static-predict
  time batching) are enabled by default and are bitwise identical to the
  day loop, a contract gated by ``benchmarks/bench_engine.py`` and the
  ``tests/engine`` parity suite.

The evaluator executes every operation for all ``K`` stocks at once (see
:mod:`repro.core.memory`), which is what makes the cross-sectional
RelationOps well-defined and the search fast enough in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import AddressSpace, DEFAULT_ADDRESS_SPACE, make_rng
from ..data.dataset import TaskSet
from ..errors import ExecutionError
from .fitness import FitnessReport, INVALID_FITNESS, daily_ic, mean_ic
from .ops import ExecutionContext
from .program import AlphaProgram

__all__ = ["EvaluationResult", "AlphaEvaluator"]


@dataclass
class EvaluationResult:
    """Outcome of evaluating one alpha program on a task set."""

    program: AlphaProgram
    fitness: float
    ic_valid: float
    ic_test: float
    predictions: dict[str, np.ndarray]
    daily_ic_valid: np.ndarray = field(default_factory=lambda: np.empty(0))
    is_valid: bool = True
    reason: str = ""

    @property
    def report(self) -> FitnessReport:
        """The fitness report corresponding to this evaluation."""
        return FitnessReport(
            fitness=self.fitness,
            ic_valid=self.ic_valid,
            daily_ic_valid=self.daily_ic_valid,
            is_valid=self.is_valid,
            reason=self.reason,
        )


class AlphaEvaluator:
    """Executes and scores alpha programs on a :class:`TaskSet`.

    Parameters
    ----------
    taskset:
        The samples of all stock tasks.
    address_space:
        Operand address-space sizes (defaults to the paper's 10/16/4).
    seed:
        Seed of the evaluator's RNG (used only by stochastic initialiser
        operators such as ``vector_uniform``); fixing it makes evaluation
        deterministic.
    max_train_steps:
        Optional cap on the number of training days used during the (single
        epoch) training pass.  When set, training days are subsampled evenly.
        This mirrors the paper's "train by one epoch for fast evaluation" and
        lets the laptop-scale experiment configs trade accuracy for speed.
    use_update:
        When False the ``Update()`` component is skipped entirely — this is
        the ``*_P`` ablation of Table 4 (alpha without the parameter-updating
        function).
    evaluate_test:
        Whether :meth:`evaluate` also produces test-split predictions.
    compiled:
        Legacy engine selector, kept for compatibility: ``True`` (the
        default) maps to ``engine="compiled"``, ``False`` to
        ``engine="interpreter"``.  Results are bitwise identical either
        way.
    engine:
        Execution-engine name from :data:`repro.engine.ENGINES`
        (``"interpreter"`` / ``"compiled"``); overrides ``compiled`` when
        given.
    time_batched:
        Whether the engine layer may collapse eligible stages into one
        vectorised kernel call (fused inference, static-predict time
        batching).  On by default; results are bitwise identical with it
        off — the flag exists so benchmarks and the parity suite can A/B
        the fast paths.
    """

    def __init__(
        self,
        taskset: TaskSet,
        address_space: AddressSpace = DEFAULT_ADDRESS_SPACE,
        seed: int | np.random.Generator | None = 0,
        max_train_steps: int | None = None,
        use_update: bool = True,
        evaluate_test: bool = True,
        compiled: bool = True,
        engine: str | None = None,
        time_batched: bool = True,
    ) -> None:
        if taskset.num_features != taskset.window:
            raise ExecutionError(
                "the alpha language requires square feature matrices (f == w); "
                f"got f={taskset.num_features}, w={taskset.window}"
            )
        # Imported lazily: repro.engine builds on repro.core submodules.
        from ..engine import resolve_engine

        self.taskset = taskset
        self.address_space = address_space
        self._seed_rng = make_rng(seed)
        self._base_seed = int(self._seed_rng.integers(0, 2**63 - 1))
        self.max_train_steps = max_train_steps
        self.use_update = use_update
        self.evaluate_test = evaluate_test
        self.engine = resolve_engine(engine, compiled)
        self.time_batched = bool(time_batched)
        self._sector_index = taskset.taxonomy.group_index("sector")
        self._industry_index = taskset.taxonomy.group_index("industry")

    # ------------------------------------------------------------------
    @property
    def compiled(self) -> bool:
        """Legacy view of the engine selection (``engine == "compiled"``)."""
        return self.engine == "compiled"

    @property
    def base_seed(self) -> int:
        """The derived seed all evaluation RNGs start from.

        Two evaluators with equal ``base_seed`` (and equal settings) produce
        bitwise-identical results; search checkpoints record it to detect a
        resume under a different evaluator.
        """
        return self._base_seed

    # ------------------------------------------------------------------
    def make_context(self) -> ExecutionContext:
        """A fresh :class:`ExecutionContext` for one program execution.

        :meth:`run` builds one per call; the engine layer
        (:class:`~repro.engine.fleet.FleetEngine`) and the streaming
        subsystem (:mod:`repro.stream`) build theirs through this same
        method, which is what keeps fleet evaluation and online serving
        bitwise identical to the offline batch path.
        """
        return ExecutionContext(
            num_tasks=self.taskset.num_tasks,
            num_features=self.taskset.num_features,
            window=self.taskset.window,
            sector_index=self._sector_index,
            industry_index=self._industry_index,
            rng=np.random.default_rng(self._base_seed),
            base_seed=self._base_seed,
        )

    def train_day_indices(self) -> np.ndarray:
        """The training-day subsample the (single-epoch) training pass visits.

        With ``max_train_steps`` unset this is every training day in order;
        otherwise the days are subsampled evenly.  Public because the engine
        and streaming layers must warm their executors over *exactly* this
        subsample to stay bitwise identical to the offline batch path.
        """
        train_days = self.taskset.split.train
        if self.max_train_steps is None or self.max_train_steps >= train_days:
            return np.arange(train_days)
        return np.linspace(0, train_days - 1, self.max_train_steps).astype(np.int64)

    # ------------------------------------------------------------------
    def make_backend(self, program: AlphaProgram):
        """A fresh execution backend for ``program`` under this evaluator."""
        # Imported lazily: repro.engine builds on repro.core submodules.
        from ..engine import make_backend

        return make_backend(
            program,
            self.make_context(),
            engine=self.engine,
            address_space=self.address_space,
        )

    def run(
        self,
        program: AlphaProgram,
        splits: tuple[str, ...] = ("valid", "test"),
        use_update: bool | None = None,
    ) -> dict[str, np.ndarray]:
        """Train the alpha and return its predictions on the requested splits.

        The training pass always runs (one epoch over the training days); the
        returned dictionary maps each requested split name to an array of
        shape ``(num_days_in_split, K)``.  Execution is delegated to the
        single protocol implementation in :mod:`repro.engine.protocol`.
        """
        # Imported lazily: repro.engine builds on repro.core submodules.
        from ..engine import run_protocol

        use_update = self.use_update if use_update is None else use_update
        # Validation happens inside the backend constructor (every backend
        # validates against this evaluator's address space).
        return run_protocol(
            self.make_backend(program),
            self.taskset,
            splits=splits,
            day_indices=self.train_day_indices(),
            use_update=use_update,
            time_batched=self.time_batched,
        )

    # ------------------------------------------------------------------
    def score(
        self,
        program: AlphaProgram,
        predictions: dict[str, np.ndarray],
    ) -> EvaluationResult:
        """Turn a prediction panel into an :class:`EvaluationResult`.

        The scoring half of :meth:`evaluate`, split out so the fleet engine
        (:meth:`repro.engine.fleet.FleetEngine.evaluate`) can score
        predictions it produced over a shared data pass with exactly the
        evaluator's fitness semantics.
        """
        valid_preds = predictions["valid"]
        valid_labels = self.taskset.split_labels("valid")
        per_day_variance = valid_preds.std(axis=1)
        if not np.isfinite(valid_preds).all() or np.all(per_day_variance < 1e-12):
            return EvaluationResult(
                program=program,
                fitness=INVALID_FITNESS,
                ic_valid=float("nan"),
                ic_test=float("nan"),
                predictions=predictions,
                is_valid=False,
                reason="degenerate predictions on the validation split",
            )

        ic_series = daily_ic(valid_preds, valid_labels)
        ic_valid = float(ic_series.mean())
        ic_test = float("nan")
        if "test" in predictions:
            ic_test = mean_ic(predictions["test"], self.taskset.split_labels("test"))
        return EvaluationResult(
            program=program,
            fitness=ic_valid,
            ic_valid=ic_valid,
            ic_test=ic_test,
            predictions=predictions,
            daily_ic_valid=ic_series,
            is_valid=True,
        )

    def evaluate(
        self,
        program: AlphaProgram,
        use_update: bool | None = None,
    ) -> EvaluationResult:
        """Train and score ``program``; never raises on numerical failures.

        Structural failures (invalid operands, disallowed operators) do raise
        :class:`~repro.errors.ProgramError` because they indicate a bug in the
        caller (the mutator never produces them); numerical degeneracies such
        as constant predictions yield an invalid :class:`EvaluationResult`
        with the sentinel fitness instead.
        """
        splits: tuple[str, ...] = ("valid", "test") if self.evaluate_test else ("valid",)
        predictions = self.run(program, splits=splits, use_update=use_update)
        return self.score(program, predictions)
