"""Operand address spaces and the vectorised operand memory.

An alpha program (Section 2 of the paper) operates on three operand spaces:

* scalars ``s0 .. s{S-1}``  — ``s0`` is the label, ``s1`` the prediction;
* vectors ``v0 .. v{V-1}``  — length ``w`` (the input window);
* matrices ``m0 .. m{M-1}`` — shape ``(f, w)``; ``m0`` is the input feature
  matrix.

The paper evaluates an alpha over ``K`` tasks (stocks).  Instead of looping
over tasks in Python, :class:`Memory` stores every operand with a leading
task dimension (scalars ``(K,)``, vectors ``(K, w)``, matrices ``(K, f, w)``)
so one numpy call executes an operation for all stocks at a time step.  This
is also what makes the cross-sectional RelationOps natural to implement.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..config import AddressSpace, DEFAULT_ADDRESS_SPACE
from ..errors import OperandError

__all__ = [
    "OperandType",
    "Operand",
    "LABEL",
    "PREDICTION",
    "INPUT_MATRIX",
    "Memory",
]


class OperandType(str, Enum):
    """The three operand kinds of the alpha language."""

    SCALAR = "scalar"
    VECTOR = "vector"
    MATRIX = "matrix"

    @property
    def prefix(self) -> str:
        """Single-letter prefix used in rendered programs (``s``/``v``/``m``)."""
        return {"scalar": "s", "vector": "v", "matrix": "m"}[self.value]


@dataclass(frozen=True, order=True)
class Operand:
    """An operand address such as ``s3``, ``v7`` or ``m0``."""

    type: OperandType
    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise OperandError(f"operand index must be non-negative, got {self.index}")

    @property
    def name(self) -> str:
        """Canonical name, e.g. ``"s3"``."""
        return f"{self.type.prefix}{self.index}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @classmethod
    def parse(cls, name: str) -> "Operand":
        """Parse an operand from its canonical name (``"s3"``, ``"m0"`` ...)."""
        name = name.strip().lower()
        if len(name) < 2:
            raise OperandError(f"cannot parse operand name {name!r}")
        prefix, digits = name[0], name[1:]
        types = {"s": OperandType.SCALAR, "v": OperandType.VECTOR, "m": OperandType.MATRIX}
        if prefix not in types or not digits.isdigit():
            raise OperandError(f"cannot parse operand name {name!r}")
        return cls(types[prefix], int(digits))

    @classmethod
    def scalar(cls, index: int) -> "Operand":
        """Shorthand for a scalar operand."""
        return cls(OperandType.SCALAR, index)

    @classmethod
    def vector(cls, index: int) -> "Operand":
        """Shorthand for a vector operand."""
        return cls(OperandType.VECTOR, index)

    @classmethod
    def matrix(cls, index: int) -> "Operand":
        """Shorthand for a matrix operand."""
        return cls(OperandType.MATRIX, index)


#: Reserved operand holding the regression label ``y`` during training.
LABEL = Operand.scalar(0)
#: Reserved operand holding the alpha's prediction.
PREDICTION = Operand.scalar(1)
#: Reserved operand holding the input feature matrix ``X``.
INPUT_MATRIX = Operand.matrix(0)


class Memory:
    """Vectorised operand storage for ``K`` tasks.

    Parameters
    ----------
    num_tasks:
        Number of tasks (stocks) ``K``.
    num_features:
        Number of feature types ``f`` (rows of a matrix operand).
    window:
        Input window ``w`` (vector length and matrix columns).
    address_space:
        Sizes of the scalar/vector/matrix spaces.
    """

    def __init__(
        self,
        num_tasks: int,
        num_features: int,
        window: int,
        address_space: AddressSpace = DEFAULT_ADDRESS_SPACE,
    ) -> None:
        if num_tasks <= 0:
            raise OperandError("num_tasks must be positive")
        if num_features <= 0 or window <= 0:
            raise OperandError("num_features and window must be positive")
        self.num_tasks = num_tasks
        self.num_features = num_features
        self.window = window
        self.address_space = address_space
        self.scalars = np.zeros((address_space.num_scalars, num_tasks))
        self.vectors = np.zeros((address_space.num_vectors, num_tasks, window))
        self.matrices = np.zeros(
            (address_space.num_matrices, num_tasks, num_features, window)
        )

    # ------------------------------------------------------------------
    def _check(self, operand: Operand) -> None:
        limits = {
            OperandType.SCALAR: self.address_space.num_scalars,
            OperandType.VECTOR: self.address_space.num_vectors,
            OperandType.MATRIX: self.address_space.num_matrices,
        }
        if operand.index >= limits[operand.type]:
            raise OperandError(
                f"operand {operand.name} outside address space "
                f"({limits[operand.type]} {operand.type.value}s)"
            )

    def read(self, operand: Operand) -> np.ndarray:
        """Return the stored value of ``operand`` (a view, do not mutate)."""
        self._check(operand)
        if operand.type is OperandType.SCALAR:
            return self.scalars[operand.index]
        if operand.type is OperandType.VECTOR:
            return self.vectors[operand.index]
        return self.matrices[operand.index]

    def write(self, operand: Operand, value: np.ndarray) -> None:
        """Store ``value`` into ``operand``, broadcasting over the task axis."""
        self._check(operand)
        value = np.asarray(value, dtype=np.float64)
        if operand.type is OperandType.SCALAR:
            target = self.scalars[operand.index]
        elif operand.type is OperandType.VECTOR:
            target = self.vectors[operand.index]
        else:
            target = self.matrices[operand.index]
        try:
            target[...] = value
        except ValueError as exc:
            raise OperandError(
                f"cannot write value of shape {value.shape} into operand "
                f"{operand.name} of shape {target.shape}"
            ) from exc

    def reset(self) -> None:
        """Zero every operand (used between evaluation stages if requested)."""
        self.scalars.fill(0.0)
        self.vectors.fill(0.0)
        self.matrices.fill(0.0)

    def copy(self) -> "Memory":
        """Deep-copy the memory (used to snapshot trained parameters)."""
        clone = Memory(
            self.num_tasks, self.num_features, self.window, self.address_space
        )
        clone.scalars[...] = self.scalars
        clone.vectors[...] = self.vectors
        clone.matrices[...] = self.matrices
        return clone

    # ------------------------------------------------------------------
    def all_operands(self) -> list[Operand]:
        """Enumerate every addressable operand in the memory."""
        operands = [Operand.scalar(i) for i in range(self.address_space.num_scalars)]
        operands += [Operand.vector(i) for i in range(self.address_space.num_vectors)]
        operands += [Operand.matrix(i) for i in range(self.address_space.num_matrices)]
        return operands
