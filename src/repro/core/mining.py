"""Multi-round mining of weakly correlated alphas (Section 5.4.1).

The experimental protocol of the paper runs several mining rounds.  In each
round an evolutionary search is launched (per initialisation), the best alpha
of the round is added to the mined set ``A``, and subsequent rounds discard
candidates whose validation portfolio returns correlate above the 15 % cutoff
with *any* alpha already in ``A``.  In the last round the alphas in ``A``
themselves are used as initialisations (``alpha_AE_B0_4`` etc.).

:class:`MiningSession` encapsulates that protocol: it owns the task set, the
accepted set ``A`` (with the validation return series the cutoff needs), and
a :meth:`search` method that runs one evolutionary search under the current
cutoffs and reports the paper's metrics for the evolved alpha.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

import numpy as np

from ..backtest.engine import BacktestEngine, BacktestResult
from ..config import (
    CORRELATION_CUTOFF,
    LONG_POSITIONS,
    SHORT_POSITIONS,
    make_rng,
)
from ..data.dataset import TaskSet
from ..errors import EvolutionError
from .correlation import CorrelationFilter
from .evolution import EvolutionConfig, EvolutionController, EvolutionResult
from .interpreter import AlphaEvaluator
from .mutation import MutationConfig, Mutator
from .ops import Dimensions
from .program import AlphaProgram
from .pruning import prune_program

__all__ = ["MinedAlpha", "MiningSession"]


@dataclass
class MinedAlpha:
    """One evolved (or baseline) alpha with the metrics the paper tabulates."""

    name: str
    program: AlphaProgram
    sharpe: float
    ic: float
    correlation_with_accepted: float
    valid_returns: np.ndarray
    test_result: BacktestResult
    evolution: EvolutionResult | None = None
    extras: dict[str, float] = field(default_factory=dict)

    def row(self) -> dict[str, float | str]:
        """A table row in the format of Tables 1-3."""
        return {
            "alpha": self.name,
            "sharpe": self.sharpe,
            "ic": self.ic,
            "correlation": self.correlation_with_accepted,
        }


class MiningSession:
    """Stateful weakly-correlated alpha mining over one task set."""

    def __init__(
        self,
        taskset: TaskSet,
        evolution_config: EvolutionConfig | None = None,
        mutation_config: MutationConfig | None = None,
        correlation_cutoff: float = CORRELATION_CUTOFF,
        long_k: int = LONG_POSITIONS,
        short_k: int = SHORT_POSITIONS,
        max_train_steps: int | None = None,
        seed: int | np.random.Generator | None = 0,
        checkpoint_dir: str | None = None,
        checkpoint_interval: int = 500,
    ) -> None:
        self.taskset = taskset
        self.evolution_config = evolution_config or EvolutionConfig()
        self.mutation_config = mutation_config or MutationConfig()
        self.correlation_cutoff = correlation_cutoff
        self.max_train_steps = max_train_steps
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_interval = checkpoint_interval
        self.long_k = long_k
        self.short_k = short_k
        self.rng = make_rng(seed)
        self.engine = BacktestEngine(taskset, long_k=long_k, short_k=short_k)
        self.dims = Dimensions(
            num_features=taskset.num_features, window=taskset.window
        )
        #: the mined set A: alphas accepted so far, with their validation
        #: portfolio returns (the reference series for the cutoff).
        self.accepted: list[MinedAlpha] = []

    # ------------------------------------------------------------------
    def _correlation_filter(self, enforce_cutoff: bool) -> CorrelationFilter | None:
        if not enforce_cutoff or not self.accepted:
            return None
        correlation_filter = CorrelationFilter(cutoff=self.correlation_cutoff)
        for alpha in self.accepted:
            correlation_filter.add_reference(alpha.name, alpha.valid_returns)
        return correlation_filter

    def _assess(
        self,
        name: str,
        program: AlphaProgram,
        evaluator: AlphaEvaluator,
        evolution: EvolutionResult | None = None,
    ) -> MinedAlpha:
        """Backtest ``program`` on the test split and measure its correlation."""
        predictions = evaluator.run(program, splits=("valid", "test"))
        valid_returns = self.engine.portfolio_returns(predictions["valid"], split="valid")
        test_result = self.engine.evaluate(predictions["test"], split="test", name=name)
        reference_filter = self._correlation_filter(enforce_cutoff=True)
        correlation = (
            reference_filter.max_correlation(valid_returns)
            if reference_filter is not None
            else float("nan")
        )
        return MinedAlpha(
            name=name,
            program=program,
            sharpe=test_result.sharpe,
            ic=test_result.ic,
            correlation_with_accepted=correlation,
            valid_returns=valid_returns,
            test_result=test_result,
            evolution=evolution,
        )

    # ------------------------------------------------------------------
    def evaluate_alpha(self, program: AlphaProgram, name: str | None = None,
                       use_update: bool = True) -> MinedAlpha:
        """Backtest a fixed alpha program without evolving it.

        Used for the un-evolved domain-expert alpha of Table 1 and for the
        parameter-updating ablation of Table 4 (``use_update=False``).
        """
        evaluator = AlphaEvaluator(
            self.taskset,
            seed=int(self.rng.integers(0, 2**31 - 1)),
            max_train_steps=self.max_train_steps,
            use_update=use_update,
            engine=self.evolution_config.execution_engine,
        )
        return self._assess(name or program.name, program, evaluator)

    def search(
        self,
        initial_program: AlphaProgram,
        name: str,
        enforce_cutoff: bool = True,
        evolution_config: EvolutionConfig | None = None,
        use_pruning: bool | None = None,
    ) -> MinedAlpha:
        """Run one evolutionary search and return the evolved alpha's metrics.

        Parameters
        ----------
        initial_program:
            The starting parent alpha (one of the Section 5.2 initialisations
            or a previously mined alpha for the last round).
        name:
            Name given to the evolved alpha (e.g. ``"alpha_AE_D_0"``).
        enforce_cutoff:
            Whether candidates are checked against the accepted set ``A``.
        evolution_config / use_pruning:
            Optional overrides of the session-level configuration (used by
            the pruning ablation of Table 6).

        With ``num_islands`` or ``num_workers`` above one in the effective
        configuration — or a session ``checkpoint_dir``, which requires the
        checkpointable controller — the search runs on the island-model
        controller of :mod:`repro.parallel` (fanning evaluation out to a
        worker pool when ``num_workers > 1``).  With a ``checkpoint_dir``
        the search state is checkpointed to ``<dir>/<name>.ckpt`` and an
        existing checkpoint of that name is resumed automatically.
        """
        config = evolution_config or self.evolution_config
        if use_pruning is not None:
            config = replace(config, use_pruning=use_pruning)
        evaluator_seed = int(self.rng.integers(0, 2**31 - 1))
        evaluator = AlphaEvaluator(
            self.taskset,
            seed=evaluator_seed,
            max_train_steps=self.max_train_steps,
            engine=config.execution_engine,
        )
        mutation_seed = int(self.rng.integers(0, 2**31 - 1))
        controller_seed = int(self.rng.integers(0, 2**31 - 1))
        correlation_filter = self._correlation_filter(enforce_cutoff)
        # The serial controller cannot checkpoint; a configured checkpoint
        # directory therefore also selects the island controller (with a
        # single island it runs plain regularised evolution).
        if config.num_islands > 1 or config.num_workers > 1 \
                or self.checkpoint_dir is not None:
            evolution = self._run_island_search(
                initial_program, name, config, evaluator,
                correlation_filter, evaluator_seed, mutation_seed, controller_seed,
            )
        else:
            controller = EvolutionController(
                evaluator=evaluator,
                mutator=Mutator(self.dims, config=self.mutation_config, seed=mutation_seed),
                config=config,
                correlation_filter=correlation_filter,
                backtest_engine=self.engine,
                seed=controller_seed,
            )
            evolution = controller.run(initial_program)
        evolved = evolution.best_program.copy(name=name)
        mined = self._assess(name, evolved, evaluator, evolution=evolution)
        mined.extras["searched_alphas"] = float(evolution.searched_alphas)
        mined.extras["evaluated_alphas"] = float(evolution.cache_stats.evaluated)
        mined.extras["elapsed_seconds"] = float(evolution.elapsed_seconds)
        mined.extras["valid_ic"] = float(evolution.best_report.ic_valid)
        mined.extras["num_islands"] = float(config.num_islands)
        mined.extras["num_workers"] = float(config.num_workers)
        return mined

    def _run_island_search(
        self,
        initial_program: AlphaProgram,
        name: str,
        config: EvolutionConfig,
        evaluator: AlphaEvaluator,
        correlation_filter: CorrelationFilter | None,
        evaluator_seed: int,
        mutation_seed: int,
        controller_seed: int,
    ) -> EvolutionResult:
        """Run one search on the parallel island controller."""
        # Imported lazily: repro.parallel depends on repro.core submodules.
        from ..parallel.islands import IslandConfig, IslandEvolutionController
        from ..parallel.pool import EvaluationPool

        checkpoint_path = None
        if self.checkpoint_dir is not None:
            checkpoint_path = os.path.join(self.checkpoint_dir, f"{name}.ckpt")
        pool = None
        try:
            if config.num_workers > 1:
                pool = EvaluationPool(
                    self.taskset,
                    num_workers=config.num_workers,
                    evaluator_seed=evaluator_seed,
                    max_train_steps=self.max_train_steps,
                    long_k=self.long_k,
                    short_k=self.short_k,
                    # The cutoff needs validation portfolio returns; without
                    # references the workers skip that backtest entirely.
                    compute_valid_returns=correlation_filter is not None,
                    engine=config.execution_engine,
                )
            controller = IslandEvolutionController(
                evaluator=evaluator,
                dims=self.dims,
                config=config,
                island_config=IslandConfig(num_islands=config.num_islands),
                mutation_config=self.mutation_config,
                correlation_filter=correlation_filter,
                backtest_engine=self.engine,
                seed=controller_seed,
                mutation_seed=mutation_seed,
                pool=pool,
                checkpoint_path=checkpoint_path,
                checkpoint_interval=self.checkpoint_interval,
            )
            return controller.run(initial_program)
        finally:
            if pool is not None:
                pool.close()

    # ------------------------------------------------------------------
    def accept(self, alpha: MinedAlpha) -> None:
        """Add ``alpha`` to the mined set ``A`` (future searches respect it)."""
        if alpha.valid_returns.size < 2:
            raise EvolutionError(
                f"cannot accept alpha {alpha.name!r}: its validation return "
                "series is too short for correlation checks"
            )
        self.accepted.append(alpha)

    def accepted_programs(self) -> list[AlphaProgram]:
        """The programs of the mined set ``A`` (used to seed the last round)."""
        return [alpha.program for alpha in self.accepted]

    def describe_accepted(self) -> list[dict[str, float | str]]:
        """Table rows for every accepted alpha."""
        return [alpha.row() for alpha in self.accepted]

    @staticmethod
    def simplify(program: AlphaProgram) -> AlphaProgram:
        """Prune an evolved alpha for presentation (Section 5.4.2 style)."""
        return prune_program(program).program
