"""Mutation operators and random-program generation for the evolutionary search.

The paper (Section 3) mutates a parent alpha into a child with two types of
mutations:

1. *randomising* operands or OP(s) of operations;
2. *inserting* a random operation at a random location, or *removing* an
   operation at a random location.

The mutation probability of each operation is 0.9 (Section 5.2): a sampled
mutation actually modifies the program with that probability, otherwise the
child is a plain copy of the parent (which still enters the population and
ages out, exactly as in regularised evolution).

Random operand / operation / program generation lives here as well because
the no-initialisation and random-initialisation baselines (``alpha_AE_NOOP``
and ``alpha_AE_R``) and the insert mutation all need it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import (
    AddressSpace,
    DEFAULT_ADDRESS_SPACE,
    MUTATION_PROBABILITY,
    make_rng,
)
from ..errors import EvolutionError
from .memory import INPUT_MATRIX, LABEL, Operand, OperandType, PREDICTION
from .ops import Dimensions, OpKind, OpSpec, list_ops, sample_params
from .program import COMPONENTS, AlphaProgram, ComponentLimits, Operation

__all__ = ["MutationConfig", "Mutator"]


@dataclass(frozen=True)
class MutationConfig:
    """Tunable knobs of the mutation process.

    ``mutation_probability`` follows Section 5.2.  The action weights choose
    between the paper's two mutation types (randomise vs. insert/remove); the
    bias parameters tilt random generation towards programs that read the
    input matrix and write the prediction, without which almost every random
    program would be redundant and pruned.
    """

    mutation_probability: float = MUTATION_PROBABILITY
    randomize_weight: float = 0.7
    insert_weight: float = 0.15
    remove_weight: float = 0.15
    prediction_output_bias: float = 0.25
    input_matrix_bias: float = 0.4
    allow_relation_ops: bool = True
    allow_extraction_ops: bool = True

    def __post_init__(self) -> None:
        if not (0.0 <= self.mutation_probability <= 1.0):
            raise EvolutionError("mutation_probability must lie in [0, 1]")
        weights = (self.randomize_weight, self.insert_weight, self.remove_weight)
        if min(weights) < 0 or sum(weights) <= 0:
            raise EvolutionError("mutation action weights must be non-negative and not all zero")


class Mutator:
    """Generates random operations and mutates alpha programs."""

    def __init__(
        self,
        dims: Dimensions,
        address_space: AddressSpace = DEFAULT_ADDRESS_SPACE,
        limits: ComponentLimits | None = None,
        config: MutationConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.dims = dims
        self.address_space = address_space
        self.limits = limits or ComponentLimits()
        self.config = config or MutationConfig()
        self.rng = make_rng(seed)
        self._ops_by_component = {
            component: self._allowed_ops(component) for component in COMPONENTS
        }

    # ------------------------------------------------------------------
    # Random building blocks
    # ------------------------------------------------------------------
    def _allowed_ops(self, component: str) -> list[OpSpec]:
        specs = list_ops(component=component)
        if not self.config.allow_relation_ops:
            specs = [s for s in specs if s.kind is not OpKind.RELATION]
        if not self.config.allow_extraction_ops:
            specs = [s for s in specs if s.kind is not OpKind.EXTRACTION]
        if not specs:
            raise EvolutionError(f"no operators available for component {component!r}")
        return specs

    def random_operand(self, operand_type: OperandType, as_output: bool = False,
                       component: str = "predict") -> Operand:
        """Sample an operand address of the requested type.

        Outputs avoid overwriting the reserved label ``s0`` and the input
        matrix ``m0``; scalar outputs in ``Predict()`` are biased towards the
        prediction operand ``s1`` so random programs have a chance of being
        non-redundant.
        """
        sizes = {
            OperandType.SCALAR: self.address_space.num_scalars,
            OperandType.VECTOR: self.address_space.num_vectors,
            OperandType.MATRIX: self.address_space.num_matrices,
        }
        size = sizes[operand_type]
        if not as_output:
            if (
                operand_type is OperandType.MATRIX
                and self.rng.random() < self.config.input_matrix_bias
            ):
                return INPUT_MATRIX
            return Operand(operand_type, int(self.rng.integers(0, size)))

        if (
            operand_type is OperandType.SCALAR
            and component == "predict"
            and self.rng.random() < self.config.prediction_output_bias
        ):
            return PREDICTION
        for _ in range(16):
            candidate = Operand(operand_type, int(self.rng.integers(0, size)))
            if candidate == LABEL or candidate == INPUT_MATRIX:
                continue
            return candidate
        # Degenerate address spaces (e.g. a single matrix slot) fall through
        # to the prediction/label-safe default.
        return PREDICTION if operand_type is OperandType.SCALAR else Operand(operand_type, size - 1)

    def random_operation(self, component: str) -> Operation:
        """Sample a random, type-correct operation for ``component``."""
        specs = self._ops_by_component[component]
        spec = specs[int(self.rng.integers(0, len(specs)))]
        inputs = tuple(
            self.random_operand(input_type, as_output=False, component=component)
            for input_type in spec.input_types
        )
        output = self.random_operand(spec.output_type, as_output=True, component=component)
        params = sample_params(spec, self.dims, self.rng)
        return Operation.make(spec.name, inputs, output, params)

    def random_program(
        self,
        num_setup: int = 2,
        num_predict: int = 6,
        num_update: int = 4,
        name: str = "alpha_random",
    ) -> AlphaProgram:
        """Generate a random alpha (used by the ``alpha_AE_R`` initialisation)."""
        limits = self.limits
        counts = {
            "setup": min(max(num_setup, limits.min_ops), limits.max_setup_ops),
            "predict": min(max(num_predict, limits.min_ops), limits.max_predict_ops),
            "update": min(max(num_update, limits.min_ops), limits.max_update_ops),
        }
        program = AlphaProgram(
            setup=[self.random_operation("setup") for _ in range(counts["setup"])],
            predict=[self.random_operation("predict") for _ in range(counts["predict"])],
            update=[self.random_operation("update") for _ in range(counts["update"])],
            name=name,
        )
        program.validate(self.address_space, self.limits)
        return program

    def empty_program(self, name: str = "alpha_noop") -> AlphaProgram:
        """The minimal no-op initialisation (``alpha_AE_NOOP``).

        Each component holds the minimum allowed single operation; the predict
        component writes a constant prediction, which the search must then
        evolve into something useful.
        """
        predict = [
            Operation.make(
                "get_scalar",
                (INPUT_MATRIX,),
                PREDICTION,
                {"row": 0, "col": self.dims.window - 1},
            )
        ]
        setup = [Operation.make("s_const", (), Operand.scalar(2), {"constant": 0.0})]
        update = [Operation.make("s_const", (), Operand.scalar(3), {"constant": 0.0})]
        return AlphaProgram(setup=setup, predict=predict, update=update, name=name)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def mutate(self, parent: AlphaProgram, name: str | None = None) -> AlphaProgram:
        """Return a child program mutated from ``parent``.

        With probability ``1 - mutation_probability`` the child is an exact
        copy.  Otherwise one action is applied: randomise an operation,
        insert a random operation, or remove an operation (respecting the
        per-component minimum / maximum operation counts).
        """
        child = parent.copy(name=name or parent.name)
        if self.rng.random() >= self.config.mutation_probability:
            return child

        weights = np.array([
            self.config.randomize_weight,
            self.config.insert_weight,
            self.config.remove_weight,
        ])
        action = self.rng.choice(["randomize", "insert", "remove"], p=weights / weights.sum())
        if action == "randomize":
            return self._randomize(child)
        if action == "insert":
            return self._insert(child)
        return self._remove(child)

    # ------------------------------------------------------------------
    def _pick_component(self, program: AlphaProgram, require_nonempty: bool = True,
                        for_insert: bool = False) -> str | None:
        candidates = []
        for component in COMPONENTS:
            operations = program.component(component)
            if for_insert and len(operations) >= self.limits.max_for(component):
                continue
            if require_nonempty and not operations:
                continue
            candidates.append(component)
        if not candidates:
            return None
        return str(self.rng.choice(candidates))

    def _randomize(self, program: AlphaProgram) -> AlphaProgram:
        component = self._pick_component(program)
        if component is None:
            return program
        operations = program.component(component)
        index = int(self.rng.integers(0, len(operations)))
        old = operations[index]
        if self.rng.random() < 0.5:
            # Randomise the whole operation but keep its output slot so that
            # downstream consumers of the operand still see *some* value.
            specs = self._ops_by_component[component]
            same_output = [s for s in specs if s.output_type is old.output.type]
            spec = same_output[int(self.rng.integers(0, len(same_output)))] if same_output \
                else specs[int(self.rng.integers(0, len(specs)))]
            inputs = tuple(
                self.random_operand(t, as_output=False, component=component)
                for t in spec.input_types
            )
            output = old.output if spec.output_type is old.output.type else \
                self.random_operand(spec.output_type, as_output=True, component=component)
            params = sample_params(spec, self.dims, self.rng)
            operations[index] = Operation.make(spec.name, inputs, output, params)
        else:
            operations[index] = self._tweak_operation(old, component)
        return program

    def _tweak_operation(self, operation: Operation, component: str) -> Operation:
        """Randomise a single aspect (one input, the output, or the params)."""
        spec = operation.spec
        choices = ["output"]
        if spec.arity:
            choices.append("input")
        if spec.param_names:
            choices.append("params")
        choice = str(self.rng.choice(choices))
        inputs = list(operation.inputs)
        output = operation.output
        params = operation.param_dict
        if choice == "input":
            position = int(self.rng.integers(0, spec.arity))
            inputs[position] = self.random_operand(
                spec.input_types[position], as_output=False, component=component
            )
        elif choice == "output":
            output = self.random_operand(spec.output_type, as_output=True, component=component)
        else:
            params = sample_params(spec, self.dims, self.rng)
        return Operation.make(spec.name, tuple(inputs), output, params)

    def _insert(self, program: AlphaProgram) -> AlphaProgram:
        component = self._pick_component(program, require_nonempty=False, for_insert=True)
        if component is None:
            return program
        operations = program.component(component)
        position = int(self.rng.integers(0, len(operations) + 1))
        operations.insert(position, self.random_operation(component))
        return program

    def _remove(self, program: AlphaProgram) -> AlphaProgram:
        removable = [
            component for component in COMPONENTS
            if len(program.component(component)) > self.limits.min_ops
        ]
        if not removable:
            return self._insert(program)
        component = str(self.rng.choice(removable))
        operations = program.component(component)
        position = int(self.rng.integers(0, len(operations)))
        operations.pop(position)
        return program
