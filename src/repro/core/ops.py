"""Operator registry for the alpha language.

The allowable OPs (Section 2) consist of:

* basic mathematical operators for scalars, vectors and matrices in the
  spirit of AutoML-Zero [21];
* **ExtractionOps** (Section 4.1): ``get_scalar`` / ``get_row`` /
  ``get_column`` pull a scalar, a row or a column out of the input feature
  matrix, which is what lets the search find the paper's "new class" of
  alphas rather than rediscovering machine-learning alphas from scratch;
* **RelationOps** (Section 4.1): ``rank``, ``relation_rank`` and
  ``relation_demean`` are cross-sectional operators over all tasks (stocks)
  or over the tasks in the same sector/industry, which is how relational
  domain knowledge is injected without structural assumptions.

Every operator is registered as an :class:`OpSpec` describing its input and
output operand types, the components it may appear in, and the constant
parameters it carries (e.g. the row/column index of an extraction, the axis
of a reduction, the bounds of a uniform initialiser).  The vectorised
execution functions receive arrays with a leading task dimension ``K``:
scalars ``(K,)``, vectors ``(K, w)``, matrices ``(K, f, w)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

import numpy as np

from ..errors import OperatorError
from .memory import OperandType

__all__ = [
    "CLIP_VALUE",
    "OpKind",
    "Dimensions",
    "ExecutionContext",
    "OpSpec",
    "OP_REGISTRY",
    "get_op",
    "list_ops",
    "sample_params",
    "sanitize",
]

#: Values are clipped to +/- this bound after every operation so that a badly
#: behaved candidate alpha cannot overflow and poison the whole evaluation.
CLIP_VALUE = 1e6


def sanitize(values: np.ndarray) -> np.ndarray:
    """Replace non-finite entries and clip to ``[-CLIP_VALUE, CLIP_VALUE]``.

    Bit-for-bit equal to ``clip(nan_to_num(values), ...)`` — ``clip`` already
    maps ``±inf`` to the bounds and propagates NaN, which the masked write
    then zeroes — but in one output allocation and three passes instead of
    ``nan_to_num``'s copy plus three finiteness scans.  This runs after
    *every* operator of every execution path, so its constant matters.
    """
    out = np.clip(np.asarray(values), -CLIP_VALUE, CLIP_VALUE)
    if not isinstance(out, np.ndarray):
        # ufuncs collapse 0-d inputs to scalars, which copyto rejects.
        return out if out == out else out.dtype.type(0.0)
    if out.dtype.kind == "f":
        np.copyto(out, 0.0, where=np.isnan(out))
    return out


class OpKind(str, Enum):
    """Coarse operator families used by mutation and the experiments."""

    ARITHMETIC = "arithmetic"
    EXTRACTION = "extraction"
    RELATION = "relation"
    INIT = "init"


@dataclass(frozen=True)
class Dimensions:
    """Problem dimensions needed to sample operator parameters."""

    num_features: int
    window: int


@dataclass
class ExecutionContext:
    """Per-evaluation context handed to operator implementations.

    Holds the task-relation structure required by the RelationOps and a base
    seed for the (rare) stochastic initialiser operators.  Initialiser draws
    are derived from ``base_seed`` *and* the operator's own parameters — not
    from a shared stream — so that the values an operation produces do not
    depend on how many other stochastic operations ran before it.  This keeps
    pruning semantics-preserving (a pruned program predicts exactly what the
    original predicted), which the fingerprint cache relies on.
    """

    num_tasks: int
    num_features: int
    window: int
    sector_index: np.ndarray
    industry_index: np.ndarray
    rng: np.random.Generator = field(default_factory=np.random.default_rng)
    base_seed: int = 0

    def init_rng(self, params: dict) -> np.random.Generator:
        """A deterministic RNG for an initialiser operator with ``params``."""
        key = (self.base_seed,) + tuple(sorted(
            (name, round(float(value), 9)) for name, value in params.items()
            if isinstance(value, (int, float))
        ))
        return np.random.default_rng(abs(hash(key)) % (2**63))

    def group_index(self, level: str) -> np.ndarray:
        """Dense group index per task for ``level`` in {'sector', 'industry'}."""
        if level == "sector":
            return self.sector_index
        if level == "industry":
            return self.industry_index
        raise OperatorError(f"unknown relation level {level!r}")


OpFunc = Callable[[ExecutionContext, tuple[np.ndarray, ...], dict], np.ndarray]


@dataclass(frozen=True)
class OpSpec:
    """Description of a single operator."""

    name: str
    kind: OpKind
    input_types: tuple[OperandType, ...]
    output_type: OperandType
    func: OpFunc
    param_names: tuple[str, ...] = ()
    components: frozenset = frozenset({"setup", "predict", "update"})
    symbol: str | None = None
    #: Whether swapping the two inputs leaves the result unchanged (e.g.
    #: ``a + b == b + a``).  Canonicalisation — in
    #: :meth:`repro.core.program.AlphaProgram.structural_key` and in the
    #: compile pipeline (:mod:`repro.compile.passes`) — sorts the operands of
    #: commutative operators so mirror-image programs share one fingerprint.
    commutative: bool = False

    @property
    def arity(self) -> int:
        """Number of input operands."""
        return len(self.input_types)

    def __call__(self, ctx: ExecutionContext, inputs: tuple[np.ndarray, ...],
                 params: dict) -> np.ndarray:
        if len(inputs) != self.arity:
            raise OperatorError(
                f"operator {self.name} expects {self.arity} inputs, got {len(inputs)}"
            )
        return sanitize(self.func(ctx, inputs, params))

    def __reduce__(self):
        # ``func`` is often a closure, which pickle cannot serialise; specs
        # are registry singletons, so (de)serialise them by name instead.
        # Search checkpoints and pool submissions rely on this.
        return (get_op, (self.name,))


OP_REGISTRY: dict[str, OpSpec] = {}


def _register(spec: OpSpec) -> OpSpec:
    if spec.name in OP_REGISTRY:
        raise OperatorError(f"operator {spec.name} registered twice")
    OP_REGISTRY[spec.name] = spec
    return spec


def get_op(name: str) -> OpSpec:
    """Look up an operator by name."""
    try:
        return OP_REGISTRY[name]
    except KeyError as exc:
        raise OperatorError(f"unknown operator {name!r}") from exc


def list_ops(
    kind: OpKind | None = None,
    output_type: OperandType | None = None,
    component: str | None = None,
) -> list[OpSpec]:
    """List registered operators, optionally filtered."""
    specs = list(OP_REGISTRY.values())
    if kind is not None:
        specs = [s for s in specs if s.kind is kind]
    if output_type is not None:
        specs = [s for s in specs if s.output_type is output_type]
    if component is not None:
        specs = [s for s in specs if component in s.components]
    return specs


# ---------------------------------------------------------------------------
# Parameter sampling (used by mutation and random-program generation)
# ---------------------------------------------------------------------------

def sample_params(spec: OpSpec, dims: Dimensions, rng: np.random.Generator) -> dict:
    """Sample a full parameter dictionary for ``spec``."""
    params: dict = {}
    for name in spec.param_names:
        params[name] = _sample_param(name, dims, rng)
    return params


def _sample_param(name: str, dims: Dimensions, rng: np.random.Generator):
    if name == "row":
        return int(rng.integers(0, dims.num_features))
    if name == "col":
        return int(rng.integers(0, dims.window))
    if name == "axis":
        return int(rng.integers(0, 2))
    if name == "constant":
        return float(np.round(rng.normal(0.0, 1.0), 6))
    if name in ("low", "high"):
        return float(np.round(rng.uniform(-1.0, 1.0), 6))
    if name == "level":
        return str(rng.choice(["sector", "industry"]))
    raise OperatorError(f"no sampler for operator parameter {name!r}")


# ---------------------------------------------------------------------------
# Shared numeric helpers
# ---------------------------------------------------------------------------

_EPS = 1e-9


def _protected_divide(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    safe = np.where(np.abs(denominator) < _EPS, 1.0, denominator)
    return numerator / safe


def _cross_sectional_rank(values: np.ndarray) -> np.ndarray:
    """Normalised [0, 1] average ranks of a 1-D array."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty_like(values)
    ranks[order] = np.arange(values.size, dtype=np.float64)
    # average ties to keep the operator deterministic and smooth
    unique, inverse, counts = np.unique(values, return_inverse=True, return_counts=True)
    if unique.size != values.size:
        sums = np.zeros(unique.size)
        np.add.at(sums, inverse, ranks)
        ranks = sums[inverse] / counts[inverse]
    if values.size == 1:
        return np.zeros_like(values)
    return ranks / (values.size - 1)


def _grouped_rank(values: np.ndarray, groups: np.ndarray) -> np.ndarray:
    out = np.empty_like(values)
    for group in np.unique(groups):
        members = groups == group
        out[members] = _cross_sectional_rank(values[members])
    return out


def _grouped_mean(values: np.ndarray, groups: np.ndarray) -> np.ndarray:
    num_groups = int(groups.max()) + 1
    sums = np.bincount(groups, weights=values, minlength=num_groups)
    counts = np.bincount(groups, minlength=num_groups).astype(np.float64)
    means = sums / np.maximum(counts, 1.0)
    return means[groups]


def _grouped_demean(values: np.ndarray, groups: np.ndarray) -> np.ndarray:
    return values - _grouped_mean(values, groups)


# ---------------------------------------------------------------------------
# Scalar operators
# ---------------------------------------------------------------------------

_S = OperandType.SCALAR
_V = OperandType.VECTOR
_M = OperandType.MATRIX


def _unary(fn):
    return lambda ctx, inputs, params: fn(inputs[0])


def _binary(fn):
    return lambda ctx, inputs, params: fn(inputs[0], inputs[1])


_register(OpSpec("s_add", OpKind.ARITHMETIC, (_S, _S), _S, _binary(np.add), symbol="+",
                  commutative=True))
_register(OpSpec("s_sub", OpKind.ARITHMETIC, (_S, _S), _S, _binary(np.subtract), symbol="-"))
_register(OpSpec("s_mul", OpKind.ARITHMETIC, (_S, _S), _S, _binary(np.multiply), symbol="*",
                  commutative=True))
_register(OpSpec("s_div", OpKind.ARITHMETIC, (_S, _S), _S, _binary(_protected_divide), symbol="/"))
_register(OpSpec("s_min", OpKind.ARITHMETIC, (_S, _S), _S, _binary(np.minimum),
                  commutative=True))
_register(OpSpec("s_max", OpKind.ARITHMETIC, (_S, _S), _S, _binary(np.maximum),
                  commutative=True))
_register(OpSpec("s_abs", OpKind.ARITHMETIC, (_S,), _S, _unary(np.abs)))
_register(OpSpec("s_sign", OpKind.ARITHMETIC, (_S,), _S, _unary(np.sign)))
_register(OpSpec("s_sin", OpKind.ARITHMETIC, (_S,), _S, _unary(np.sin)))
_register(OpSpec("s_cos", OpKind.ARITHMETIC, (_S,), _S, _unary(np.cos)))
_register(OpSpec("s_tan", OpKind.ARITHMETIC, (_S,), _S, _unary(np.tan)))
_register(OpSpec(
    "s_arcsin", OpKind.ARITHMETIC, (_S,), _S,
    _unary(lambda x: np.arcsin(np.clip(x, -1.0, 1.0))),
))
_register(OpSpec(
    "s_arccos", OpKind.ARITHMETIC, (_S,), _S,
    _unary(lambda x: np.arccos(np.clip(x, -1.0, 1.0))),
))
_register(OpSpec("s_arctan", OpKind.ARITHMETIC, (_S,), _S, _unary(np.arctan)))
_register(OpSpec(
    "s_exp", OpKind.ARITHMETIC, (_S,), _S, _unary(lambda x: np.exp(np.clip(x, -50.0, 50.0))),
))
_register(OpSpec(
    "s_log", OpKind.ARITHMETIC, (_S,), _S,
    _unary(lambda x: np.log(np.maximum(np.abs(x), _EPS))),
))
_register(OpSpec(
    "s_heaviside", OpKind.ARITHMETIC, (_S,), _S, _unary(lambda x: np.heaviside(x, 1.0)),
))
_register(OpSpec(
    "s_const", OpKind.INIT, (), _S,
    lambda ctx, inputs, params: np.full(ctx.num_tasks, params["constant"]),
    param_names=("constant",),
))

# ---------------------------------------------------------------------------
# Vector operators
# ---------------------------------------------------------------------------

_register(OpSpec("v_add", OpKind.ARITHMETIC, (_V, _V), _V, _binary(np.add), symbol="+",
                  commutative=True))
_register(OpSpec("v_sub", OpKind.ARITHMETIC, (_V, _V), _V, _binary(np.subtract), symbol="-"))
_register(OpSpec("v_mul", OpKind.ARITHMETIC, (_V, _V), _V, _binary(np.multiply), symbol="*",
                  commutative=True))
_register(OpSpec("v_div", OpKind.ARITHMETIC, (_V, _V), _V, _binary(_protected_divide), symbol="/"))
_register(OpSpec("v_min", OpKind.ARITHMETIC, (_V, _V), _V, _binary(np.minimum),
                  commutative=True))
_register(OpSpec("v_max", OpKind.ARITHMETIC, (_V, _V), _V, _binary(np.maximum),
                  commutative=True))
_register(OpSpec("v_abs", OpKind.ARITHMETIC, (_V,), _V, _unary(np.abs)))
_register(OpSpec(
    "v_heaviside", OpKind.ARITHMETIC, (_V,), _V, _unary(lambda x: np.heaviside(x, 1.0)),
))
_register(OpSpec(
    "v_scale", OpKind.ARITHMETIC, (_S, _V), _V,
    lambda ctx, inputs, params: inputs[0][:, None] * inputs[1],
))
_register(OpSpec(
    "v_dot", OpKind.ARITHMETIC, (_V, _V), _S,
    lambda ctx, inputs, params: np.einsum("kw,kw->k", inputs[0], inputs[1]),
    commutative=True,
))
_register(OpSpec(
    "v_outer", OpKind.ARITHMETIC, (_V, _V), _M,
    lambda ctx, inputs, params: np.einsum("kf,kw->kfw", inputs[0], inputs[1]),
))
_register(OpSpec(
    "v_norm", OpKind.ARITHMETIC, (_V,), _S,
    lambda ctx, inputs, params: np.linalg.norm(inputs[0], axis=-1),
))
_register(OpSpec(
    "v_mean", OpKind.ARITHMETIC, (_V,), _S,
    lambda ctx, inputs, params: inputs[0].mean(axis=-1),
))
_register(OpSpec(
    "v_std", OpKind.ARITHMETIC, (_V,), _S,
    lambda ctx, inputs, params: inputs[0].std(axis=-1),
))
_register(OpSpec(
    "v_sum", OpKind.ARITHMETIC, (_V,), _S,
    lambda ctx, inputs, params: inputs[0].sum(axis=-1),
))
_register(OpSpec(
    "ts_rank", OpKind.ARITHMETIC, (_V,), _S,
    lambda ctx, inputs, params: (
        (inputs[0] < inputs[0][:, -1:]).sum(axis=-1) / max(inputs[0].shape[-1] - 1, 1)
    ),
))
_register(OpSpec(
    "v_broadcast", OpKind.ARITHMETIC, (_S,), _V,
    lambda ctx, inputs, params: np.repeat(inputs[0][:, None], ctx.window, axis=1),
))
_register(OpSpec(
    "vector_uniform", OpKind.INIT, (), _V,
    lambda ctx, inputs, params: ctx.init_rng(params).uniform(
        min(params["low"], params["high"]),
        max(params["low"], params["high"]) + _EPS,
        size=(ctx.num_tasks, ctx.window),
    ),
    param_names=("low", "high"),
))

# ---------------------------------------------------------------------------
# Matrix operators
# ---------------------------------------------------------------------------

_register(OpSpec("m_add", OpKind.ARITHMETIC, (_M, _M), _M, _binary(np.add), symbol="+",
                  commutative=True))
_register(OpSpec("m_sub", OpKind.ARITHMETIC, (_M, _M), _M, _binary(np.subtract), symbol="-"))
_register(OpSpec("m_mul", OpKind.ARITHMETIC, (_M, _M), _M, _binary(np.multiply), symbol="*",
                  commutative=True))
_register(OpSpec("m_div", OpKind.ARITHMETIC, (_M, _M), _M, _binary(_protected_divide), symbol="/"))
_register(OpSpec("m_min", OpKind.ARITHMETIC, (_M, _M), _M, _binary(np.minimum),
                  commutative=True))
_register(OpSpec("m_max", OpKind.ARITHMETIC, (_M, _M), _M, _binary(np.maximum),
                  commutative=True))
_register(OpSpec("m_abs", OpKind.ARITHMETIC, (_M,), _M, _unary(np.abs)))
_register(OpSpec(
    "m_heaviside", OpKind.ARITHMETIC, (_M,), _M, _unary(lambda x: np.heaviside(x, 1.0)),
))
_register(OpSpec(
    "m_scale", OpKind.ARITHMETIC, (_S, _M), _M,
    lambda ctx, inputs, params: inputs[0][:, None, None] * inputs[1],
))
_register(OpSpec(
    "matmul", OpKind.ARITHMETIC, (_M, _M), _M,
    lambda ctx, inputs, params: np.matmul(inputs[0], inputs[1]),
))
_register(OpSpec(
    "matvec", OpKind.ARITHMETIC, (_M, _V), _V,
    lambda ctx, inputs, params: np.einsum("kfw,kw->kf", inputs[0], inputs[1]),
))
_register(OpSpec(
    "transpose", OpKind.ARITHMETIC, (_M,), _M,
    lambda ctx, inputs, params: np.swapaxes(inputs[0], -1, -2),
))
_register(OpSpec(
    "m_norm", OpKind.ARITHMETIC, (_M,), _S,
    lambda ctx, inputs, params: np.linalg.norm(inputs[0], axis=(-2, -1)),
))
_register(OpSpec(
    "m_norm_axis", OpKind.ARITHMETIC, (_M,), _V,
    lambda ctx, inputs, params: np.linalg.norm(inputs[0], axis=-2 + params["axis"] * 1),
    param_names=("axis",),
))
_register(OpSpec(
    "m_mean", OpKind.ARITHMETIC, (_M,), _S,
    lambda ctx, inputs, params: inputs[0].mean(axis=(-2, -1)),
))
_register(OpSpec(
    "m_std", OpKind.ARITHMETIC, (_M,), _S,
    lambda ctx, inputs, params: inputs[0].std(axis=(-2, -1)),
))
_register(OpSpec(
    "m_mean_axis", OpKind.ARITHMETIC, (_M,), _V,
    lambda ctx, inputs, params: inputs[0].mean(axis=-2 + params["axis"] * 1),
    param_names=("axis",),
))
_register(OpSpec(
    "m_std_axis", OpKind.ARITHMETIC, (_M,), _V,
    lambda ctx, inputs, params: inputs[0].std(axis=-2 + params["axis"] * 1),
    param_names=("axis",),
))
_register(OpSpec(
    "m_broadcast", OpKind.ARITHMETIC, (_V,), _M,
    lambda ctx, inputs, params: (
        np.repeat(inputs[0][:, None, :], ctx.num_features, axis=1)
        if params["axis"] == 0
        else np.repeat(inputs[0][:, :, None], ctx.window, axis=2)
    ),
    param_names=("axis",),
))
_register(OpSpec(
    "matrix_uniform", OpKind.INIT, (), _M,
    lambda ctx, inputs, params: ctx.init_rng(params).uniform(
        min(params["low"], params["high"]),
        max(params["low"], params["high"]) + _EPS,
        size=(ctx.num_tasks, ctx.num_features, ctx.window),
    ),
    param_names=("low", "high"),
))

# ---------------------------------------------------------------------------
# ExtractionOps (Section 4.1)
# ---------------------------------------------------------------------------

_register(OpSpec(
    "get_scalar", OpKind.EXTRACTION, (_M,), _S,
    lambda ctx, inputs, params: inputs[0][:, params["row"] % ctx.num_features,
                                          params["col"] % ctx.window],
    param_names=("row", "col"),
))
_register(OpSpec(
    "get_row", OpKind.EXTRACTION, (_M,), _V,
    lambda ctx, inputs, params: inputs[0][:, params["row"] % ctx.num_features, :],
    param_names=("row",),
))
_register(OpSpec(
    "get_column", OpKind.EXTRACTION, (_M,), _V,
    lambda ctx, inputs, params: inputs[0][:, :, params["col"] % ctx.window],
    param_names=("col",),
))

# ---------------------------------------------------------------------------
# RelationOps (Section 4.1)
# ---------------------------------------------------------------------------

_register(OpSpec(
    "rank", OpKind.RELATION, (_S,), _S,
    lambda ctx, inputs, params: _cross_sectional_rank(inputs[0]),
    components=frozenset({"predict", "update"}),
))
_register(OpSpec(
    "relation_rank", OpKind.RELATION, (_S,), _S,
    lambda ctx, inputs, params: _grouped_rank(inputs[0], ctx.group_index(params["level"])),
    param_names=("level",),
    components=frozenset({"predict", "update"}),
))
_register(OpSpec(
    "relation_demean", OpKind.RELATION, (_S,), _S,
    lambda ctx, inputs, params: _grouped_demean(
        inputs[0], ctx.group_index(params["level"])
    ),
    param_names=("level",),
    components=frozenset({"predict", "update"}),
))
_register(OpSpec(
    # The complement of RelationDemeanOp: the mean of the input operand over
    # the related tasks (same sector/industry).  RelationDemeanOp equals
    # "input - relation_mean(input)", so this operator adds no modelling power
    # beyond the paper's RelationOps, but it makes sector/industry-level
    # signals reachable in a single mutation.
    "relation_mean", OpKind.RELATION, (_S,), _S,
    lambda ctx, inputs, params: _grouped_mean(inputs[0], ctx.group_index(params["level"])),
    param_names=("level",),
    components=frozenset({"predict", "update"}),
))
