"""Alpha program representation: operations and the three-component program.

An alpha (Section 2) is a sequence of operations, each with an operator, input
operand(s) and an output operand, organised in three components:

* ``Setup()``   — initialises operands once per stage;
* ``Predict()`` — produces the prediction ``s1`` from the input matrix ``m0``;
* ``Update()``  — updates operands after seeing the label ``s0`` during
  training; operands it writes and ``Predict()`` later reads are the alpha's
  *parameters*.

:class:`AlphaProgram` stores the three operation lists, validates them
against the address space and the operator registry, and supports
(de)serialisation, pretty-printing and structural hashing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..config import (
    AddressSpace,
    DEFAULT_ADDRESS_SPACE,
    MAX_PREDICT_OPS,
    MAX_SETUP_OPS,
    MAX_UPDATE_OPS,
    MIN_OPS_PER_COMPONENT,
)
from ..errors import ProgramError
from .memory import Operand, OperandType
from .ops import OpSpec, get_op

__all__ = ["COMPONENTS", "ComponentLimits", "Operation", "AlphaProgram"]

#: The three components of an alpha, in canonical order.
COMPONENTS = ("setup", "predict", "update")


@dataclass(frozen=True)
class ComponentLimits:
    """Minimum / maximum number of operations per component (Section 5.2)."""

    min_ops: int = MIN_OPS_PER_COMPONENT
    max_setup_ops: int = MAX_SETUP_OPS
    max_predict_ops: int = MAX_PREDICT_OPS
    max_update_ops: int = MAX_UPDATE_OPS

    def max_for(self, component: str) -> int:
        """Maximum allowed operations for ``component``."""
        limits = {
            "setup": self.max_setup_ops,
            "predict": self.max_predict_ops,
            "update": self.max_update_ops,
        }
        try:
            return limits[component]
        except KeyError as exc:
            raise ProgramError(f"unknown component {component!r}") from exc


@dataclass(frozen=True)
class Operation:
    """A single operation ``output = op(inputs, params)``."""

    op: str
    inputs: tuple[Operand, ...]
    output: Operand
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        spec = self.spec  # raises OperatorError for unknown op names
        if len(self.inputs) != spec.arity:
            raise ProgramError(
                f"operator {self.op} expects {spec.arity} inputs, got {len(self.inputs)}"
            )
        for operand, expected in zip(self.inputs, spec.input_types):
            if operand.type is not expected:
                raise ProgramError(
                    f"operator {self.op} expects a {expected.value} input, got "
                    f"{operand.name}"
                )
        if self.output.type is not spec.output_type:
            raise ProgramError(
                f"operator {self.op} outputs a {spec.output_type.value}, cannot "
                f"write to {self.output.name}"
            )
        missing = set(spec.param_names) - {k for k, _ in self.params}
        if missing:
            raise ProgramError(f"operator {self.op} missing parameters {sorted(missing)}")

    # ------------------------------------------------------------------
    @property
    def spec(self) -> OpSpec:
        """The operator specification from the registry."""
        return get_op(self.op)

    @property
    def param_dict(self) -> dict:
        """Parameters as a plain dictionary."""
        return dict(self.params)

    @classmethod
    def make(cls, op: str, inputs: tuple[Operand, ...], output: Operand,
             params: dict | None = None) -> "Operation":
        """Convenience constructor taking a parameter dictionary."""
        items = tuple(sorted((params or {}).items()))
        return cls(op=op, inputs=inputs, output=output, params=items)

    def render(self) -> str:
        """Human-readable form, e.g. ``"s3 = s1 + s2"`` or ``"s2 = rank(s3)"``."""
        spec = self.spec
        params = self.param_dict
        if spec.symbol and spec.arity == 2:
            expr = f"{self.inputs[0].name} {spec.symbol} {self.inputs[1].name}"
        else:
            args = [operand.name for operand in self.inputs]
            args += [f"{key}={value}" for key, value in sorted(params.items())]
            expr = f"{self.op}({', '.join(args)})"
        return f"{self.output.name} = {expr}"

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "op": self.op,
            "inputs": [operand.name for operand in self.inputs],
            "output": self.output.name,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Operation":
        """Inverse of :meth:`to_dict`."""
        return cls.make(
            op=payload["op"],
            inputs=tuple(Operand.parse(name) for name in payload["inputs"]),
            output=Operand.parse(payload["output"]),
            params=payload.get("params") or {},
        )


def _canonical_operation(operation: Operation) -> Operation:
    """Return ``operation`` with commutative operands in sorted order.

    Only the rendering/identity changes: execution always uses the written
    operand order, so the numerical results are untouched.
    """
    if not operation.spec.commutative or len(operation.inputs) != 2:
        return operation
    if operation.inputs[0] <= operation.inputs[1]:
        return operation
    return Operation(
        op=operation.op,
        inputs=(operation.inputs[1], operation.inputs[0]),
        output=operation.output,
        params=operation.params,
    )


@dataclass
class AlphaProgram:
    """A full alpha: Setup / Predict / Update operation lists."""

    setup: list[Operation] = field(default_factory=list)
    predict: list[Operation] = field(default_factory=list)
    update: list[Operation] = field(default_factory=list)
    name: str = "alpha"

    # ------------------------------------------------------------------
    def component(self, name: str) -> list[Operation]:
        """Return the operation list of a component by name."""
        if name not in COMPONENTS:
            raise ProgramError(f"unknown component {name!r}")
        return getattr(self, name)

    def components(self) -> dict[str, list[Operation]]:
        """All components as an ordered mapping."""
        return {name: self.component(name) for name in COMPONENTS}

    @property
    def num_operations(self) -> int:
        """Total number of operations across all components."""
        return len(self.setup) + len(self.predict) + len(self.update)

    def copy(self, name: str | None = None) -> "AlphaProgram":
        """Return a deep(ish) copy; operations are immutable so lists suffice."""
        return AlphaProgram(
            setup=list(self.setup),
            predict=list(self.predict),
            update=list(self.update),
            name=name if name is not None else self.name,
        )

    # ------------------------------------------------------------------
    def validate(
        self,
        address_space: AddressSpace = DEFAULT_ADDRESS_SPACE,
        limits: ComponentLimits | None = None,
    ) -> None:
        """Raise :class:`ProgramError` if the program violates the constraints.

        Checks operand addresses against the address space, component
        operation-count limits, and that operators are allowed in the
        component they appear in.
        """
        limits = limits or ComponentLimits()
        bounds = {
            OperandType.SCALAR: address_space.num_scalars,
            OperandType.VECTOR: address_space.num_vectors,
            OperandType.MATRIX: address_space.num_matrices,
        }
        for component, operations in self.components().items():
            if len(operations) > limits.max_for(component):
                raise ProgramError(
                    f"component {component} has {len(operations)} operations, "
                    f"maximum is {limits.max_for(component)}"
                )
            for operation in operations:
                if component not in operation.spec.components:
                    raise ProgramError(
                        f"operator {operation.op} is not allowed in {component}()"
                    )
                for operand in (*operation.inputs, operation.output):
                    if operand.index >= bounds[operand.type]:
                        raise ProgramError(
                            f"operand {operand.name} exceeds the address space "
                            f"({bounds[operand.type]} {operand.type.value}s)"
                        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Pretty-print the alpha in the paper's ``def Setup(): ...`` style."""
        lines: list[str] = []
        titles = {"setup": "Setup", "predict": "Predict", "update": "Update"}
        for component, operations in self.components().items():
            lines.append(f"def {titles[component]}():")
            if not operations:
                lines.append("    pass")
            for operation in operations:
                lines.append(f"    {operation.render()}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation of the whole program."""
        return {
            "name": self.name,
            "setup": [op.to_dict() for op in self.setup],
            "predict": [op.to_dict() for op in self.predict],
            "update": [op.to_dict() for op in self.update],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AlphaProgram":
        """Inverse of :meth:`to_dict`."""
        return cls(
            setup=[Operation.from_dict(op) for op in payload.get("setup", [])],
            predict=[Operation.from_dict(op) for op in payload.get("predict", [])],
            update=[Operation.from_dict(op) for op in payload.get("update", [])],
            name=payload.get("name", "alpha"),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AlphaProgram":
        """Deserialise from a JSON string."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    def structural_key(self, canonical: bool = True) -> str:
        """Canonical string of all operations (used for exact-duplicate checks).

        With ``canonical=True`` (the default) the operands of commutative
        operators are sorted, so mirror-image programs (``add(s2, s3)`` vs
        ``add(s3, s2)``) share one key and stop consuming duplicate
        evaluations.  ``canonical=False`` preserves the written operand order
        (the historical behaviour, kept for fingerprint A/B comparisons).

        This is *not* the search fingerprint — the fingerprint in
        :mod:`repro.core.cache` is computed on the canonicalised IR of the
        *pruned* program so that alphas differing only in redundant
        operations (or in operand naming of intermediates) collide.
        """
        parts = []
        for component, operations in self.components().items():
            rendered = ";".join(
                (_canonical_operation(op) if canonical else op).render()
                for op in operations
            )
            parts.append(f"{component}:{rendered}")
        return "|".join(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AlphaProgram):
            return NotImplemented
        return self.structural_key() == other.structural_key()

    def __hash__(self) -> int:
        return hash(self.structural_key())
