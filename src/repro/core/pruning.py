"""Redundancy pruning of alpha programs (Section 4.2).

The pruning technique removes operations that do not contribute to the
calculation between the input feature matrix ``m0`` and the prediction
``s1``, and flags *redundant alphas* — programs whose prediction does not
depend on ``m0`` at all — so they can be discarded without evaluation.

The program is viewed as a dataflow graph with operands as nodes and
operators as edges (Figure 5).  Because memory persists across time steps,
operands written by ``Update()`` (and by earlier executions of ``Predict()``)
feed the next step's ``Predict()``; the backward liveness analysis therefore
runs to a fixpoint over the cross-time-step loop:

1. start from the last write to ``s1`` inside ``Predict()``;
2. walk backwards marking the operations whose outputs are still *live*;
3. operands live at the start of ``Predict()`` are carried across time steps
   — they become targets for ``Update()`` (previous step), whose own
   carried-in operands become targets for ``Predict()`` again, until nothing
   changes;
4. ``Setup()`` is analysed last with the final carried-operand set.

Operations never marked as needed are pruned.  The pruned program is what the
fingerprint in :mod:`repro.core.cache` is computed on, so alphas that differ
only in redundant operations share a cache entry and are never re-evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .memory import INPUT_MATRIX, LABEL, Operand, PREDICTION
from .program import AlphaProgram, Operation

__all__ = ["PruneResult", "backward_liveness", "liveness_fixpoint", "prune_program"]

#: Operands whose values arrive from outside the program (the feature matrix
#: and the label); they are never carried across time steps by the program.
EXTERNAL_OPERANDS = frozenset({INPUT_MATRIX, LABEL})


@dataclass(frozen=True)
class PruneResult:
    """Outcome of pruning one alpha program."""

    program: AlphaProgram
    is_redundant: bool
    removed_operations: int
    kept_operations: int

    @property
    def total_operations(self) -> int:
        """Number of operations in the original (unpruned) program."""
        return self.removed_operations + self.kept_operations


def backward_liveness(
    operations: list[Operation], targets: set[Operand]
) -> tuple[set[int], set[Operand]]:
    """Backward liveness pass over one component.

    Parameters
    ----------
    operations:
        The component's operations in program order.
    targets:
        Operands whose values are needed *after* the component has run.

    Returns
    -------
    (needed_indices, live_in):
        ``needed_indices`` — indices of operations that contribute to the
        targets (all others are redundant w.r.t. these targets);
        ``live_in`` — operands whose values must already be available before
        the component runs (carried in from a previous step, from another
        component, or provided externally like ``m0``/``s0``).
    """
    live = set(targets)
    needed: set[int] = set()
    for index in range(len(operations) - 1, -1, -1):
        operation = operations[index]
        if operation.output in live:
            needed.add(index)
            live.discard(operation.output)
            live.update(operation.inputs)
    return needed, live


def liveness_fixpoint(
    run_component: Callable[[str, set[Operand]], tuple[set[int], set[Operand]]],
) -> tuple[dict[str, set[int]], set[Operand]]:
    """Cross-time-step liveness fixpoint over Setup/Predict/Update.

    ``run_component(name, targets)`` performs a backward liveness pass over
    one component (for operation lists this is :func:`backward_liveness`; the
    dead-store-elimination pass of :mod:`repro.compile.passes` supplies an
    IR-level equivalent) and returns ``(needed, live_in)``.

    The fixpoint mirrors the module docstring: operands live at the start of
    ``Predict()`` are carried across time steps — they become targets for
    ``Update()`` (previous step), whose own carried-in operands become
    targets for ``Predict()`` again, until nothing changes; ``Setup()`` is
    analysed last with the final carried-operand set.  Each pass can only
    grow the needed sets, and both are bounded by the component sizes, so
    the loop terminates.

    Returns ``(needed, carried)`` where ``needed`` maps each component name
    to the indices it reported and ``carried`` is the final set of operands
    carried across time steps.
    """
    needed_predict: set[int] = set()
    needed_update: set[int] = set()
    carried: set[Operand] = set()
    while True:
        predict_targets = {PREDICTION} | carried
        new_needed_predict, live_in_predict = run_component("predict", predict_targets)

        update_targets = set(live_in_predict - EXTERNAL_OPERANDS) | carried
        new_needed_update, live_in_update = run_component("update", update_targets)

        new_carried = (live_in_predict | live_in_update) - EXTERNAL_OPERANDS
        if (
            new_needed_predict == needed_predict
            and new_needed_update == needed_update
            and new_carried == carried
        ):
            break
        needed_predict, needed_update, carried = (
            new_needed_predict,
            new_needed_update,
            new_carried,
        )

    needed_setup, _ = run_component("setup", set(carried))
    needed = {
        "setup": needed_setup,
        "predict": needed_predict,
        "update": needed_update,
    }
    return needed, carried


def prune_program(program: AlphaProgram) -> PruneResult:
    """Prune redundant operations and detect redundant alphas.

    Returns a :class:`PruneResult` whose ``program`` contains only the
    operations that contribute to the prediction.  ``is_redundant`` is True
    when the prediction is never written in ``Predict()`` or does not depend
    (directly or through parameters updated from training data) on the input
    feature matrix ``m0``.
    """
    predict_ops = program.predict
    writes_prediction = any(op.output == PREDICTION for op in predict_ops)
    if not writes_prediction:
        return PruneResult(
            program=AlphaProgram(setup=[], predict=[], update=[], name=program.name),
            is_redundant=True,
            removed_operations=program.num_operations,
            kept_operations=0,
        )

    components = program.components()
    needed, _ = liveness_fixpoint(
        lambda name, targets: backward_liveness(components[name], targets)
    )

    pruned = AlphaProgram(
        setup=[op for i, op in enumerate(program.setup) if i in needed["setup"]],
        predict=[op for i, op in enumerate(predict_ops) if i in needed["predict"]],
        update=[op for i, op in enumerate(program.update) if i in needed["update"]],
        name=program.name,
    )

    uses_input_matrix = any(
        INPUT_MATRIX in operation.inputs
        for operations in (pruned.setup, pruned.predict, pruned.update)
        for operation in operations
    )
    kept = pruned.num_operations
    removed = program.num_operations - kept
    if not uses_input_matrix:
        return PruneResult(
            program=pruned,
            is_redundant=True,
            removed_operations=removed,
            kept_operations=kept,
        )
    return PruneResult(
        program=pruned,
        is_redundant=False,
        removed_operations=removed,
        kept_operations=kept,
    )
