"""Market-data substrate: simulation, loading, features, tasks, relations.

The paper evaluates on 5-year NASDAQ data; this subpackage provides both a
synthetic NASDAQ-like market simulator (the default, offline-friendly data
source) and a CSV loader for real data, plus the universe filtering, feature
engineering and task-set construction shared by every experiment.
"""

from .dataset import Split, TaskSet, build_taskset
from .features import FEATURE_NAMES, FeaturePanel, compute_feature_panel
from .loader import load_csv_directory, load_sector_map, parse_ohlcv_csv
from .market_sim import MarketConfig, StockPanel, SyntheticMarket
from .relations import SectorTaxonomy, random_taxonomy
from .universe import FilterReport, UniverseFilter

__all__ = [
    "FEATURE_NAMES",
    "FeaturePanel",
    "FilterReport",
    "MarketConfig",
    "SectorTaxonomy",
    "Split",
    "StockPanel",
    "SyntheticMarket",
    "TaskSet",
    "UniverseFilter",
    "build_taskset",
    "compute_feature_panel",
    "load_csv_directory",
    "load_sector_map",
    "parse_ohlcv_csv",
    "random_taxonomy",
]
