"""Market-data substrate: backends, simulation, loading, features, relations.

The paper evaluates on 5-year NASDAQ data across several stock universes and
relational settings; this subpackage is the single place the rest of the
repository gets market data from, organised in three layers (full guide:
``docs/DATA.md``):

1. **Containers** — :class:`~repro.data.market_sim.StockPanel` (raw OHLCV
   plus taxonomy) and :class:`~repro.data.dataset.TaskSet` (dense per-day
   regression tasks built by :func:`~repro.data.dataset.build_taskset`
   through :mod:`repro.data.features` and :mod:`repro.data.universe`).
2. **Backends** — the pluggable :class:`~repro.data.backends.DataBackend`
   interface and registry (:mod:`repro.data.backends`): the synthetic
   NASDAQ-like simulator (:mod:`repro.data.market_sim`), per-stock OHLCV
   files (:mod:`repro.data.loader`), and calendar-aware weekly/monthly
   resampling (:mod:`repro.data.resample`) as a wrapper over either.
3. **Relations** — the two-level sector/industry taxonomy
   (:mod:`repro.data.relations`) that the RelationOps and the RSR baseline
   consume.

Every downstream component only sees the containers, so a new data source
is one :func:`~repro.data.backends.register_backend` call away from the
whole mine→compile→serve pipeline (the named workloads live in
:mod:`repro.scenarios`).
"""

from .backends import (
    DataBackend,
    DataSpec,
    FileBackend,
    ResampledBackend,
    SyntheticBackend,
    backend_from_spec,
    backend_kinds,
    register_backend,
)
from .dataset import Split, TaskSet, build_taskset
from .features import FEATURE_NAMES, FeaturePanel, compute_feature_panel
from .loader import (
    export_panel_csv,
    load_csv_directory,
    load_sector_map,
    parse_ohlcv_csv,
)
from .market_sim import (
    MarketConfig,
    StockPanel,
    SyntheticMarket,
    panels_bitwise_equal,
)
from .relations import SectorTaxonomy, random_taxonomy
from .repair import (
    CORRUPTION_KINDS,
    AuditReport,
    CorruptionSpec,
    RepairPolicy,
    Violation,
    audit_directory,
    inject_corruption,
    load_audit_report,
    register_repair_policy,
    repair_policy,
    repair_policy_names,
    save_audit_report,
)
from .resample import RESAMPLE_FREQUENCIES, resample_panel
from .universe import FilterReport, UniverseFilter

__all__ = [
    "CORRUPTION_KINDS",
    "FEATURE_NAMES",
    "RESAMPLE_FREQUENCIES",
    "AuditReport",
    "CorruptionSpec",
    "DataBackend",
    "DataSpec",
    "FeaturePanel",
    "FileBackend",
    "FilterReport",
    "MarketConfig",
    "RepairPolicy",
    "ResampledBackend",
    "SectorTaxonomy",
    "Split",
    "StockPanel",
    "SyntheticBackend",
    "SyntheticMarket",
    "TaskSet",
    "UniverseFilter",
    "Violation",
    "audit_directory",
    "backend_from_spec",
    "backend_kinds",
    "build_taskset",
    "compute_feature_panel",
    "export_panel_csv",
    "inject_corruption",
    "load_audit_report",
    "load_csv_directory",
    "load_sector_map",
    "panels_bitwise_equal",
    "parse_ohlcv_csv",
    "random_taxonomy",
    "register_backend",
    "register_repair_policy",
    "repair_policy",
    "repair_policy_names",
    "resample_panel",
    "save_audit_report",
]
