"""Pluggable data backends: one interface, many market-data sources.

Every subsystem in this repository — search, compile, engine, streaming —
consumes market data through exactly one container, the
:class:`~repro.data.market_sim.StockPanel`.  This module defines *where
panels come from*: a small :class:`DataBackend` interface plus a registry,
so the same mine→compile→serve pipeline runs against a synthetic market, a
directory of OHLCV files, or a resampled view of either, selected by
configuration instead of code changes (see ``docs/DATA.md``).

Built-in backends
-----------------
``synthetic``
    :class:`SyntheticBackend` — the factor-model simulator
    (:class:`~repro.data.market_sim.SyntheticMarket`).  The default; the
    panel it produces is bit-for-bit the pre-backend-layer data path.
``file``
    :class:`FileBackend` — one OHLCV CSV per stock (see
    :mod:`repro.data.loader` for the schema), with schema validation and
    an in-memory cache keyed on the files' content signature.  Parquet
    input is recognised but gated on ``pyarrow`` being installed.

Either can be wrapped in :class:`ResampledBackend` for weekly/monthly bars
(:mod:`repro.data.resample`); :func:`backend_from_spec` applies the wrapper
automatically when a :class:`DataSpec` asks for a non-daily frequency.

Adding a backend is registration, not surgery::

    @register_backend("myfeed")
    def _make_myfeed(spec, market_config, seed):
        return MyFeedBackend(spec.path)

after which ``DataSpec(kind="myfeed", path=...)`` works everywhere an
:class:`~repro.experiments.configs.ExperimentConfig` does.
"""

from __future__ import annotations

import abc
import importlib.util
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Hashable

import numpy as np

from ..config import WINDOW
from ..errors import DataError
from ..obs import TELEMETRY
from .dataset import Split, TaskSet, build_taskset
from .loader import load_csv_directory, load_sector_map
from .market_sim import MarketConfig, StockPanel, SyntheticMarket
from .repair import RepairPolicy, repair_policy
from .resample import RESAMPLE_FREQUENCIES, resample_panel
from .universe import UniverseFilter

__all__ = [
    "DataBackend",
    "DataSpec",
    "FileBackend",
    "ResampledBackend",
    "SyntheticBackend",
    "backend_from_spec",
    "backend_kinds",
    "register_backend",
]

#: Bar frequencies a :class:`DataSpec` may request.
_FREQUENCIES = ("daily",) + RESAMPLE_FREQUENCIES


@dataclass(frozen=True)
class DataSpec:
    """Declarative description of a data backend.

    This is the form a backend takes inside an
    :class:`~repro.experiments.configs.ExperimentConfig` or a
    :class:`~repro.scenarios.ScenarioSpec`: hashable, serialisable and
    inert until :func:`backend_from_spec` materialises it.

    Attributes
    ----------
    kind:
        Registry name of the backend (``"synthetic"``, ``"file"``, or any
        kind added through :func:`register_backend`).
    path:
        Data directory for file-based kinds; unused by ``synthetic``.
    pattern:
        Filename glob for file-based kinds (``*.csv`` by default; a
        ``*.parquet`` pattern selects the pyarrow-gated Parquet reader).
    sector_map:
        Optional ``TICKER,SECTOR,INDUSTRY`` file populating the taxonomy.
    frequency:
        Bar frequency: ``daily`` (native) or one of
        :data:`~repro.data.resample.RESAMPLE_FREQUENCIES`; non-daily specs
        are wrapped in a :class:`ResampledBackend`.
    repair:
        Named :class:`~repro.data.repair.RepairPolicy` applied by
        file-based kinds when the data is dirty (``strict`` by default —
        duplicate dates reject, gaps forward-fill, splits and spikes are
        left alone).  See ``docs/DATA.md`` for the registry.
    """

    kind: str = "synthetic"
    path: str | None = None
    pattern: str = "*.csv"
    sector_map: str | None = None
    frequency: str = "daily"
    repair: str = "strict"

    def __post_init__(self) -> None:
        if not self.kind:
            raise DataError("DataSpec.kind must be a non-empty backend name")
        if self.frequency not in _FREQUENCIES:
            raise DataError(
                f"unknown frequency {self.frequency!r}; use one of {_FREQUENCIES}"
            )
        repair_policy(self.repair)  # fail fast on unknown policy names

    def resampled(self, frequency: str) -> "DataSpec":
        """A copy of this spec at a different bar frequency."""
        return replace(self, frequency=frequency)

    def repaired(self, repair: str) -> "DataSpec":
        """A copy of this spec under a different repair policy."""
        return replace(self, repair=repair)


class DataBackend(abc.ABC):
    """A source of :class:`~repro.data.market_sim.StockPanel` data.

    The contract is intentionally small (see ``docs/DATA.md``):

    * :meth:`load_panel` returns the full OHLCV panel.  It may cache; the
      returned panel must be treated as read-only by callers.
    * :meth:`cache_key` returns a hashable identity under which derived
      artifacts (task sets, warm server state) may be memoised.  Two
      backends with equal keys must produce bitwise-identical panels.
    * :meth:`describe` returns a JSON-friendly summary for logs/results.

    :meth:`build_taskset` is a convenience composing :meth:`load_panel`
    with :func:`~repro.data.dataset.build_taskset`, so engines, servers
    and scenarios can go straight from a backend to runnable tasks.
    """

    #: Registry name of the backend class (informational).
    kind: str = "abstract"

    @abc.abstractmethod
    def load_panel(self) -> StockPanel:
        """Load (or generate) and return the OHLCV panel."""

    @abc.abstractmethod
    def cache_key(self) -> Hashable:
        """Hashable identity; equal keys imply bitwise-identical panels."""

    def describe(self) -> dict:
        """JSON-friendly summary used by scenario results and logs."""
        return {"kind": self.kind}

    def build_taskset(
        self,
        window: int = WINDOW,
        split: Split | None = None,
        universe_filter: UniverseFilter | None = UniverseFilter(),
    ) -> TaskSet:
        """Load the panel and build the task set every consumer runs on."""
        return build_taskset(
            self.load_panel(), window=window, split=split,
            universe_filter=universe_filter,
        )


class SyntheticBackend(DataBackend):
    """The factor-model market simulator behind the default scenario.

    Deterministic given ``(config, seed)``; generating twice produces
    bitwise-identical panels, which is what lets the scenario suite promise
    bit-for-bit parity with the pre-backend-layer data path.
    """

    kind = "synthetic"

    def __init__(self, config: MarketConfig | None = None, seed: int = 0) -> None:
        self.config = config or MarketConfig()
        self.seed = int(seed)

    def load_panel(self) -> StockPanel:
        return SyntheticMarket(self.config, seed=self.seed).generate()

    def cache_key(self) -> Hashable:
        return ("synthetic", self.config, self.seed)

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "num_stocks": self.config.num_stocks,
            "num_days": self.config.num_days,
            "num_sectors": self.config.num_sectors,
            "seed": self.seed,
        }


class FileBackend(DataBackend):
    """OHLCV files on disk (one file per stock) with validation and caching.

    CSV files go through :func:`~repro.data.loader.load_csv_directory`;
    a ``*.parquet`` pattern selects the Parquet reader, which requires the
    optional ``pyarrow`` dependency (a clear :class:`~repro.errors.DataError`
    is raised when it is missing — the library itself only needs numpy).

    Loaded panels are cached in-memory under a content signature of the
    matched files (path, size, mtime), so repeated ``load_panel`` calls —
    the warm-start path of the streaming server, repeated scenario runs —
    hit the parsed panel instead of the filesystem.  Editing or touching
    any matched file invalidates the entry.
    """

    kind = "file"

    #: source (directory, pattern, sector map) → (signature, parsed panel),
    #: shared across instances.  One entry per source: modifying the files
    #: replaces the entry instead of stranding the old panel in memory.
    _CACHE: dict[Hashable, tuple[Hashable, StockPanel]] = {}

    def __init__(
        self,
        directory: str | Path,
        sector_map: str | Path | None = None,
        pattern: str = "*.csv",
        repair: str | RepairPolicy | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.sector_map = Path(sector_map) if sector_map is not None else None
        self.pattern = pattern
        #: The repair policy applied at load time.  Part of the cache key:
        #: two policies over one dirty directory are two different panels.
        self.repair = repair_policy(repair)

    # ------------------------------------------------------------------
    def _signature(self) -> Hashable:
        if not self.directory.is_dir():
            raise DataError(f"file backend directory does not exist: {self.directory}")
        # Resolved paths: two spellings of the same directory must produce
        # one signature (and one cache/memo entry), not thrash the cache.
        files = sorted(self.directory.resolve().glob(self.pattern))
        if not files:
            raise DataError(
                f"no files matching {self.pattern!r} under {self.directory}"
            )
        if self.sector_map is not None:
            if not self.sector_map.exists():
                raise DataError(f"sector map does not exist: {self.sector_map}")
            files = files + [self.sector_map.resolve()]
        entries = []
        for path in files:
            stat = path.stat()
            entries.append((str(path), stat.st_size, stat.st_mtime_ns))
        return tuple(entries)

    def cache_key(self) -> Hashable:
        return ("file", self.repair.name, self._signature())

    # ------------------------------------------------------------------
    def _source_key(self) -> Hashable:
        return (str(self.directory.resolve()), self.pattern,
                str(self.sector_map.resolve()) if self.sector_map else None,
                self.repair.name)

    def load_panel(self) -> StockPanel:
        signature = self._signature()
        cached = self._CACHE.get(self._source_key())
        if cached is not None and cached[0] == signature:
            if TELEMETRY.enabled:
                TELEMETRY.counter("data.file_cache.hits").inc()
            return cached[1]
        if TELEMETRY.enabled:
            TELEMETRY.counter("data.file_cache.misses").inc()
        panel = self._load()
        self.validate_panel(panel)
        self._CACHE[self._source_key()] = (signature, panel)
        return panel

    def _load(self) -> StockPanel:
        if self.pattern.endswith(".parquet"):
            if importlib.util.find_spec("pyarrow") is None:
                raise DataError(
                    "Parquet input requires the optional 'pyarrow' dependency, "
                    "which is not installed; convert the data to per-stock CSV "
                    "files (see docs/DATA.md) or install pyarrow"
                )
            raise DataError(
                "Parquet input is not implemented yet even with pyarrow "
                "installed; convert the data to per-stock CSV files "
                "(see docs/DATA.md)"
            )
        mapping = (
            load_sector_map(self.sector_map) if self.sector_map is not None else None
        )
        # A sector map living inside the data directory must not be parsed
        # as an OHLCV file, whatever its extension.
        exclude = (self.sector_map.name,) if self.sector_map is not None else ()
        return load_csv_directory(
            self.directory, sector_map=mapping, pattern=self.pattern,
            exclude=exclude, repair=self.repair,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def validate_panel(panel: StockPanel) -> None:
        """Schema checks beyond the structural ones ``StockPanel`` enforces.

        The loader forward-fills gaps, so a well-formed directory produces
        finite prices; anything else (a column of text zeros, a corrupted
        file that parsed as NaN everywhere) should fail here with a clear
        message instead of surfacing as NaN fitness deep in a search.
        """
        if panel.num_days < 3:
            raise DataError(
                f"file backend produced only {panel.num_days} days; "
                "need at least 3"
            )
        dates = np.asarray(panel.dates, dtype=np.float64)
        if not (np.diff(dates) > 0).all():
            raise DataError("file backend dates must be strictly increasing")
        for name in ("open", "high", "low", "close"):
            values = getattr(panel, name)
            if not np.isfinite(values).all():
                raise DataError(f"file backend {name} prices contain non-finite values")
            if (values < 0).any():
                raise DataError(f"file backend {name} prices contain negative values")
        # An all-NaN price column forward-fills to zeros; catch it here
        # rather than as NaN fitness deep in a search.
        if (panel.close <= 0).any():
            raise DataError(
                "file backend close prices contain non-positive values "
                "(an all-blank price column forward-fills to zero)"
            )
        if not np.isfinite(panel.volume).all() or (panel.volume < 0).any():
            raise DataError("file backend volumes must be finite and non-negative")

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "directory": str(self.directory),
            "pattern": self.pattern,
            "sector_map": str(self.sector_map) if self.sector_map else None,
            "repair": self.repair.name,
        }


class ResampledBackend(DataBackend):
    """A frequency-changing wrapper around any other backend.

    Loads the inner backend's daily panel and aggregates it to weekly or
    monthly bars through :func:`~repro.data.resample.resample_panel`
    (calendar-aware for ``YYYYMMDD`` dates, fixed 5/21-day periods for
    synthetic day indices).
    """

    kind = "resampled"

    def __init__(self, inner: DataBackend, frequency: str) -> None:
        if frequency not in RESAMPLE_FREQUENCIES:
            raise DataError(
                f"unknown resample frequency {frequency!r}; "
                f"use one of {RESAMPLE_FREQUENCIES}"
            )
        self.inner = inner
        self.frequency = frequency

    def load_panel(self) -> StockPanel:
        return resample_panel(self.inner.load_panel(), self.frequency)

    def cache_key(self) -> Hashable:
        return ("resampled", self.frequency, self.inner.cache_key())

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "frequency": self.frequency,
            "inner": self.inner.describe(),
        }


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: kind → factory ``(spec, market_config, seed) -> DataBackend``.
BackendFactory = Callable[[DataSpec, MarketConfig | None, int | None], DataBackend]

_REGISTRY: dict[str, BackendFactory] = {}


def register_backend(kind: str, factory: BackendFactory | None = None,
                     overwrite: bool = False):
    """Register a backend factory under ``kind`` (usable as a decorator).

    The factory receives the :class:`DataSpec`, the experiment's
    :class:`~repro.data.market_sim.MarketConfig` (or ``None``) and the data
    seed, and returns a :class:`DataBackend`.  Registering an existing kind
    raises unless ``overwrite=True``.
    """
    def _register(func: BackendFactory) -> BackendFactory:
        if not overwrite and kind in _REGISTRY:
            raise DataError(
                f"data backend kind {kind!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        _REGISTRY[kind] = func
        return func

    if factory is not None:
        return _register(factory)
    return _register


def backend_kinds() -> list[str]:
    """Sorted names of every registered backend kind."""
    return sorted(_REGISTRY)


def backend_from_spec(
    spec: DataSpec,
    market_config: MarketConfig | None = None,
    seed: int | None = None,
) -> DataBackend:
    """Materialise a :class:`DataSpec` into a ready-to-load backend.

    Looks the kind up in the registry, builds the base backend, and wraps
    it in a :class:`ResampledBackend` when the spec asks for non-daily
    bars.  Unknown kinds raise a :class:`~repro.errors.DataError` naming
    the registered alternatives.
    """
    factory = _REGISTRY.get(spec.kind)
    if factory is None:
        raise DataError(
            f"unknown data backend kind {spec.kind!r}; "
            f"registered kinds: {backend_kinds()}"
        )
    backend = factory(spec, market_config, seed)
    if spec.frequency != "daily":
        backend = ResampledBackend(backend, spec.frequency)
    return backend


@register_backend("synthetic")
def _make_synthetic(spec: DataSpec, market_config: MarketConfig | None,
                    seed: int | None) -> DataBackend:
    return SyntheticBackend(market_config, seed=seed if seed is not None else 0)


@register_backend("file")
def _make_file(spec: DataSpec, market_config: MarketConfig | None,
               seed: int | None) -> DataBackend:
    if spec.path is None:
        raise DataError("DataSpec(kind='file') requires a path to the data directory")
    return FileBackend(spec.path, sector_map=spec.sector_map,
                       pattern=spec.pattern, repair=spec.repair)
