"""Task-set construction: samples, splits, and the container the alpha
interpreter and all baselines consume.

The paper formulates alpha evaluation over a set of tasks ``F_K`` — one
regression task per stock — where each sample pairs an input feature matrix
``X ∈ R^{f×w}`` with a scalar label ``y`` (the next-day return).  All samples
are split chronologically into training, validation and test sets
(Section 2, Section 5.1).

:class:`TaskSet` stores the samples of all tasks in dense arrays so that the
vectorised interpreter can evaluate an alpha for every stock at a time step
in a single numpy call:

* ``features``: shape ``(N, K, f, w)`` — feature matrix per day and stock
* ``labels``:   shape ``(N, K)``       — next-day returns
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import WINDOW
from ..errors import DataError
from .features import WARMUP_DAYS, FeaturePanel, compute_feature_panel
from .market_sim import StockPanel
from .relations import SectorTaxonomy
from .universe import UniverseFilter

__all__ = ["Split", "TaskSet", "build_taskset"]


@dataclass(frozen=True)
class Split:
    """Chronological train/validation/test day counts."""

    train: int
    valid: int
    test: int

    def __post_init__(self) -> None:
        if min(self.train, self.valid, self.test) <= 0:
            raise DataError("all splits must contain at least one day")

    @property
    def total(self) -> int:
        """Total number of sample days covered by the split."""
        return self.train + self.valid + self.test

    @classmethod
    def fractional(cls, total: int, train_frac: float = 0.81,
                   valid_frac: float = 0.095) -> "Split":
        """Build a split from fractions of ``total`` days.

        The default fractions mirror the paper's 988/116/116 split of 1220
        days.
        """
        if total < 3:
            raise DataError("need at least 3 sample days to split")
        train = max(1, int(round(total * train_frac)))
        valid = max(1, int(round(total * valid_frac)))
        test = total - train - valid
        if test <= 0:
            train = total - valid - 1
            test = 1
        if train <= 0:
            raise DataError(f"cannot split {total} days into train/valid/test")
        return cls(train=train, valid=valid, test=test)


@dataclass
class TaskSet:
    """Dense sample arrays for all stock-prediction tasks plus metadata."""

    features: np.ndarray
    labels: np.ndarray
    dates: np.ndarray
    taxonomy: SectorTaxonomy
    split: Split
    tickers: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.float64)
        if self.features.ndim != 4:
            raise DataError(
                f"features must be (N, K, f, w), got shape {self.features.shape}"
            )
        if self.labels.shape != self.features.shape[:2]:
            raise DataError(
                f"labels shape {self.labels.shape} does not match features "
                f"{self.features.shape[:2]}"
            )
        if self.split.total != self.num_samples:
            raise DataError(
                f"split covers {self.split.total} days but task set has "
                f"{self.num_samples} sample days"
            )
        if self.taxonomy.num_stocks != self.num_tasks:
            raise DataError(
                f"taxonomy covers {self.taxonomy.num_stocks} stocks, task set "
                f"has {self.num_tasks}"
            )

    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        """Number of sample days ``N`` (across all splits)."""
        return int(self.features.shape[0])

    @property
    def num_tasks(self) -> int:
        """Number of tasks (stocks) ``K``."""
        return int(self.features.shape[1])

    @property
    def num_features(self) -> int:
        """Number of feature types ``f``."""
        return int(self.features.shape[2])

    @property
    def window(self) -> int:
        """Input time window ``w`` in days."""
        return int(self.features.shape[3])

    # ------------------------------------------------------------------
    def _split_slice(self, name: str) -> slice:
        starts = {
            "train": 0,
            "valid": self.split.train,
            "test": self.split.train + self.split.valid,
        }
        lengths = {
            "train": self.split.train,
            "valid": self.split.valid,
            "test": self.split.test,
        }
        if name not in starts:
            raise DataError(f"unknown split {name!r}; use 'train', 'valid' or 'test'")
        start = starts[name]
        return slice(start, start + lengths[name])

    def split_features(self, name: str) -> np.ndarray:
        """Feature array of the given split, shape ``(n, K, f, w)``."""
        return self.features[self._split_slice(name)]

    def split_labels(self, name: str) -> np.ndarray:
        """Label array of the given split, shape ``(n, K)``."""
        return self.labels[self._split_slice(name)]

    def split_dates(self, name: str) -> np.ndarray:
        """Dates of the given split."""
        return self.dates[self._split_slice(name)]

    def subset_tasks(self, indices: np.ndarray) -> "TaskSet":
        """Return a TaskSet restricted to the tasks in ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            raise DataError("cannot subset to an empty task set")
        return TaskSet(
            features=self.features[:, indices],
            labels=self.labels[:, indices],
            dates=self.dates,
            taxonomy=self.taxonomy.subset(indices),
            split=self.split,
            tickers=tuple(self.tickers[i] for i in indices) if self.tickers else (),
        )

    def describe(self) -> dict[str, int]:
        """Summary dictionary used by logs and examples."""
        return {
            "num_tasks": self.num_tasks,
            "num_samples": self.num_samples,
            "num_features": self.num_features,
            "window": self.window,
            "train_days": self.split.train,
            "valid_days": self.split.valid,
            "test_days": self.split.test,
        }


def build_taskset(
    panel: StockPanel,
    window: int = WINDOW,
    split: Split | None = None,
    universe_filter: UniverseFilter | None = UniverseFilter(),
    normalize_on_train_only: bool = True,
    feature_panel: FeaturePanel | None = None,
) -> TaskSet:
    """Build a :class:`TaskSet` from an OHLCV panel.

    The pipeline follows Section 5.1/5.2 of the paper:

    1. filter the universe (insufficient samples / too-low prices);
    2. compute the 13 feature types per day;
    3. normalise each feature type by its per-stock maximum;
    4. slice ``window``-day feature matrices and pair them with next-day
       returns as labels;
    5. split chronologically into train/validation/test.

    Parameters
    ----------
    panel:
        Raw OHLCV panel (synthetic or loaded from CSV).
    window:
        Input time window ``w`` (13 in the paper).
    split:
        Explicit split; if ``None`` a fractional split mirroring the paper's
        988/116/116 proportions is derived from the number of usable days.
    universe_filter:
        Universe filter to apply first; pass ``None`` to skip filtering.
    normalize_on_train_only:
        If True (default) the per-stock normaliser uses only training days.
    feature_panel:
        Pre-computed feature panel (skips step 2), mainly for tests.
    """
    if window < 1:
        raise DataError("window must be at least one day")

    if universe_filter is not None:
        panel, _ = universe_filter.apply(panel)

    if feature_panel is None:
        feature_panel = compute_feature_panel(panel)
    raw_returns = panel.returns()

    # Sample days: a sample at day t uses features of days [t-window+1, t]
    # and predicts the return of day t+1.  The first usable day must leave a
    # full warm-up for the 30-day moving average plus the window.
    first_day = WARMUP_DAYS + window - 1
    last_day = panel.num_days - 2  # needs a next-day return
    num_sample_days = last_day - first_day + 1
    if num_sample_days < 3:
        raise DataError(
            f"panel too short: only {num_sample_days} usable sample days; "
            f"need at least 3 (panel has {panel.num_days} days, warm-up "
            f"{WARMUP_DAYS}, window {window})"
        )

    if split is None:
        split = Split.fractional(num_sample_days)
    if split.total > num_sample_days:
        raise DataError(
            f"split needs {split.total} sample days but only {num_sample_days} "
            "are available"
        )
    # Trim to exactly the split length, keeping the most recent days.
    num_used = split.total
    first_used = last_day - num_used + 1

    if normalize_on_train_only:
        fit_days = first_used - window + 1 + split.train
    else:
        fit_days = None
    normalized = feature_panel.normalized(fit_days=fit_days)

    K = panel.num_stocks
    F = normalized.num_features
    features = np.empty((num_used, K, F, window), dtype=np.float64)
    labels = np.empty((num_used, K), dtype=np.float64)
    dates = np.empty(num_used, dtype=panel.dates.dtype)

    for i, day in enumerate(range(first_used, last_day + 1)):
        window_values = normalized.values[day - window + 1: day + 1]  # (w, K, F)
        features[i] = np.transpose(window_values, (1, 2, 0))  # (K, F, w)
        labels[i] = raw_returns[day + 1]
        dates[i] = panel.dates[day]

    return TaskSet(
        features=features,
        labels=labels,
        dates=dates,
        taxonomy=panel.taxonomy,
        split=split,
        tickers=panel.tickers,
    )
