"""Construction of the paper's 13-type feature panel (Section 5.2).

For each stock and each day the input feature matrix ``X`` has shape
``(f, w) = (13, 13)``: 13 feature *types* over a 13-day window.  The feature
types, in order, are:

0-3   moving averages of the close price over 5, 10, 20 and 30 days
4-7   volatilities of the close price over 5, 10, 20 and 30 days
8     open price
9     high price
10    low price
11    close price
12    volume

Each feature type is normalised by its maximum absolute value across time for
each stock (Section 5.1).  To avoid look-ahead bias the normaliser can be
computed on the training days only (the default used by the experiment
configurations); computing it over all days — as the paper's wording implies —
is also supported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import MA_HORIZONS, NUM_FEATURES, VOL_HORIZONS
from ..errors import DataError
from .market_sim import StockPanel

__all__ = [
    "FEATURE_NAMES",
    "FeaturePanel",
    "rolling_mean",
    "rolling_std",
    "compute_feature_panel",
]

FEATURE_NAMES: tuple[str, ...] = (
    "ma5",
    "ma10",
    "ma20",
    "ma30",
    "vol5",
    "vol10",
    "vol20",
    "vol30",
    "open",
    "high",
    "low",
    "close",
    "volume",
)

#: Warm-up period: the longest horizon needed before every feature is defined.
WARMUP_DAYS = max(max(MA_HORIZONS), max(VOL_HORIZONS))


def rolling_mean(values: np.ndarray, horizon: int) -> np.ndarray:
    """Trailing moving average over ``horizon`` days along axis 0.

    Rows before the horizon is filled use the partial window, so the output
    has the same shape as ``values`` and contains no NaNs for finite input.
    """
    if horizon <= 0:
        raise DataError(f"horizon must be positive, got {horizon}")
    values = np.asarray(values, dtype=np.float64)
    cumsum = np.cumsum(values, axis=0)
    out = np.empty_like(values)
    for t in range(values.shape[0]):
        start = max(0, t - horizon + 1)
        total = cumsum[t] - (cumsum[start - 1] if start > 0 else 0.0)
        out[t] = total / (t - start + 1)
    return out


def rolling_std(values: np.ndarray, horizon: int) -> np.ndarray:
    """Trailing standard deviation over ``horizon`` days along axis 0.

    Uses the population standard deviation over the partial/full trailing
    window; windows of length one yield zero.
    """
    if horizon <= 0:
        raise DataError(f"horizon must be positive, got {horizon}")
    values = np.asarray(values, dtype=np.float64)
    T = values.shape[0]
    out = np.zeros_like(values)
    cumsum = np.cumsum(values, axis=0)
    cumsq = np.cumsum(values**2, axis=0)
    for t in range(T):
        start = max(0, t - horizon + 1)
        n = t - start + 1
        total = cumsum[t] - (cumsum[start - 1] if start > 0 else 0.0)
        total_sq = cumsq[t] - (cumsq[start - 1] if start > 0 else 0.0)
        mean = total / n
        variance = np.maximum(total_sq / n - mean**2, 0.0)
        out[t] = np.sqrt(variance)
    return out


@dataclass
class FeaturePanel:
    """Daily feature values for every stock.

    ``values`` has shape ``(T, K, F)`` with ``F = 13`` feature types in the
    order of :data:`FEATURE_NAMES`.
    """

    values: np.ndarray
    feature_names: tuple[str, ...]
    dates: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 3:
            raise DataError(f"feature values must be (T, K, F), got {self.values.shape}")
        if self.values.shape[2] != len(self.feature_names):
            raise DataError(
                f"{self.values.shape[2]} feature columns but "
                f"{len(self.feature_names)} names"
            )

    @property
    def num_days(self) -> int:
        """Number of days ``T``."""
        return int(self.values.shape[0])

    @property
    def num_stocks(self) -> int:
        """Number of stocks ``K``."""
        return int(self.values.shape[1])

    @property
    def num_features(self) -> int:
        """Number of feature types ``F``."""
        return int(self.values.shape[2])

    def normalized(self, fit_days: int | None = None) -> "FeaturePanel":
        """Return a copy normalised per stock and feature type.

        Each feature type is divided by its maximum absolute value across time
        for each stock (Section 5.1).  ``fit_days`` limits the computation of
        the normaliser to the first ``fit_days`` days (use the training length
        to avoid look-ahead); ``None`` uses all days as the paper describes.
        """
        values = self.values
        fit = values if fit_days is None else values[:fit_days]
        if fit.shape[0] == 0:
            raise DataError("fit_days must leave at least one day to fit on")
        denom = np.max(np.abs(fit), axis=0)  # (K, F)
        denom = np.where(denom > 0, denom, 1.0)
        return FeaturePanel(
            values=values / denom[None, :, :],
            feature_names=self.feature_names,
            dates=self.dates,
        )


def compute_feature_panel(panel: StockPanel) -> FeaturePanel:
    """Compute the paper's 13 feature types for every day and stock."""
    close = panel.close
    returns = panel.returns()

    columns = []
    for horizon in MA_HORIZONS:
        columns.append(rolling_mean(close, horizon))
    for horizon in VOL_HORIZONS:
        columns.append(rolling_std(returns, horizon))
    columns.extend([panel.open, panel.high, panel.low, panel.close, panel.volume])

    values = np.stack(columns, axis=2)
    if values.shape[2] != NUM_FEATURES:
        raise DataError(
            f"expected {NUM_FEATURES} feature types, built {values.shape[2]}"
        )
    return FeaturePanel(values=values, feature_names=FEATURE_NAMES, dates=panel.dates)
