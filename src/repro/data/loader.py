"""Reading and writing per-stock OHLCV CSV files.

The paper uses 5-year NASDAQ daily data.  When such data is available on
disk, this loader ingests one CSV per stock and produces the same
:class:`~repro.data.market_sim.StockPanel` container the synthetic simulator
produces, so every downstream component works unchanged; the
:class:`~repro.data.backends.FileBackend` is the supported front door and
adds schema validation plus content-signature caching on top.

Expected per-stock CSV columns (case-insensitive, extra columns ignored)::

    date, open, high, low, close, volume

Rows may arrive unsorted — they are ordered by date during parsing — and
stocks with missing days or blank (NaN) prices are aligned on the union
calendar and forward-filled.  Duplicate dates within one file are an error
under the default ``strict`` repair policy; the named policies in
:mod:`repro.data.repair` instead resolve them (and calendar gaps, split
discontinuities and spike outliers) deterministically — pass ``repair=``
to :func:`load_csv_directory` or select a policy on the
:class:`~repro.data.backends.DataSpec`.

A sector map file with lines ``TICKER,SECTOR,INDUSTRY`` can be supplied to
populate the taxonomy; otherwise every stock is placed in a single sector.

:func:`export_panel_csv` is the inverse: it writes any panel (synthetic
included) into exactly this layout with full float precision, so a panel
survives a CSV round-trip bit for bit — the contract the file-backed
scenario and ``tests/data/test_file_edge_cases.py`` rely on.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..errors import DataError, DataIntegrityError
from ..obs import TELEMETRY
from .market_sim import StockPanel
from .relations import SectorTaxonomy
from .repair import (
    RepairPolicy,
    dedupe_columns,
    find_duplicate_dates,
    interpolate_fill,
    repair_policy,
    repair_series,
)

__all__ = [
    "export_panel_csv",
    "load_csv_directory",
    "load_sector_map",
    "parse_ohlcv_csv",
]

_REQUIRED_COLUMNS = ("date", "open", "high", "low", "close", "volume")


def parse_ohlcv_csv(path: str | Path,
                    duplicates: str = "reject") -> dict[str, np.ndarray]:
    """Parse a single OHLCV CSV file into column arrays keyed by column name.

    ``duplicates`` picks the key-conflict resolution: ``reject`` (the
    historical behaviour — raise a structured
    :class:`~repro.errors.DataIntegrityError` carrying the offending
    ``(ticker, date)`` pairs), ``keep-first`` / ``keep-last`` (file order
    among equal dates decides), or ``keep-all`` (return the raw sorted rows,
    duplicates included — the auditor's view).
    """
    path = Path(path)
    if not path.exists():
        raise DataError(f"CSV file does not exist: {path}")
    rows: dict[str, list[float]] = {name: [] for name in _REQUIRED_COLUMNS}
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise DataError(f"CSV file {path} has no header row")
        field_map = {name.lower().strip(): name for name in reader.fieldnames}
        missing = [c for c in _REQUIRED_COLUMNS if c not in field_map]
        if missing:
            raise DataError(f"CSV file {path} is missing columns: {missing}")
        for line in reader:
            for column in _REQUIRED_COLUMNS:
                raw = line[field_map[column]]
                if column == "date":
                    value = float(str(raw).replace("-", "") or "nan")
                else:
                    value = float(raw) if raw not in ("", None) else float("nan")
                rows[column].append(value)
    if not rows["date"]:
        raise DataError(f"CSV file {path} contains no data rows")
    columns = {
        name: np.asarray(values, dtype=np.float64) for name, values in rows.items()
    }
    # Rows may arrive in any order; sort chronologically (stable, so file
    # order survives within a duplicate-date group), then resolve duplicate
    # dates per the requested policy choice.
    order = np.argsort(columns["date"], kind="stable")
    columns = {name: values[order] for name, values in columns.items()}
    if duplicates == "keep-all":
        return columns
    if np.unique(columns["date"]).size != columns["date"].size:
        ticker = path.stem.upper()
        if duplicates == "reject":
            violations = find_duplicate_dates(ticker, columns)
            pairs = [(ticker, v.dates[0]) for v in violations]
            raise DataIntegrityError(
                f"CSV file {path} contains duplicate dates: "
                f"{[date for _, date in pairs]} (a keep-first/keep-last "
                "repair policy resolves them deterministically)",
                pairs=pairs,
            )
        columns, _ = dedupe_columns(ticker, columns, duplicates)
    return columns


def load_sector_map(path: str | Path) -> dict[str, tuple[str, str]]:
    """Load a ``TICKER,SECTOR,INDUSTRY`` mapping file."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"sector map does not exist: {path}")
    mapping: dict[str, tuple[str, str]] = {}
    with path.open(newline="") as handle:
        for row in csv.reader(handle):
            if not row or row[0].startswith("#"):
                continue
            if len(row) < 3:
                raise DataError(f"sector map row needs TICKER,SECTOR,INDUSTRY: {row}")
            mapping[row[0].strip().upper()] = (row[1].strip(), row[2].strip())
    return mapping


def load_csv_directory(
    directory: str | Path,
    sector_map: dict[str, tuple[str, str]] | None = None,
    pattern: str = "*.csv",
    exclude: tuple[str, ...] = (),
    repair: str | RepairPolicy | None = None,
) -> StockPanel:
    """Load every per-stock CSV in ``directory`` into a :class:`StockPanel`.

    Stocks are aligned on the *union* of their dates (gaps forward-filled
    for prices, zero-filled for volume); stocks whose date coverage misses
    more than half of that common calendar are dropped.  ``exclude`` lists
    file names matched by ``pattern`` that are not OHLCV data (e.g. a
    sector map living in the same directory).

    ``repair`` names a :class:`~repro.data.repair.RepairPolicy` (or passes
    one directly; ``None`` means ``strict``) fixing how dirty data is
    resolved: duplicate dates (reject / keep-first / keep-last), calendar
    gaps (forward-fill / interpolate / drop the dates), split
    discontinuities (keep / back-adjust) and spike outliers (keep /
    interpolate).  Every policy is deterministic, and on a clean directory
    every policy loads the bitwise-identical panel.
    """
    policy = repair_policy(repair)
    directory = Path(directory)
    if not directory.is_dir():
        raise DataError(f"not a directory: {directory}")
    files = [
        path for path in sorted(directory.glob(pattern))
        if path.name not in exclude
    ]
    if not files:
        raise DataError(f"no CSV files matching {pattern!r} under {directory}")

    per_stock: dict[str, dict[str, np.ndarray]] = {}
    repaired_total = 0
    integrity_pairs: list[tuple[str, int]] = []
    for path in files:
        ticker = path.stem.upper()
        try:
            cols = parse_ohlcv_csv(path, duplicates=policy.duplicates)
        except DataIntegrityError as exc:
            # Keep scanning so the error names every dirty file at once,
            # not just the first.
            integrity_pairs.extend(exc.pairs)
            continue
        cols, applied = repair_series(ticker, cols, policy)
        repaired_total += len(applied)
        per_stock[ticker] = cols
    if integrity_pairs:
        raise DataIntegrityError(
            f"directory {directory} contains duplicate dates under the "
            f"'{policy.name}' repair policy: "
            f"{[f'{t}@{d}' for t, d in integrity_pairs]} "
            "(a keep-first/keep-last repair policy resolves them "
            "deterministically)",
            pairs=integrity_pairs,
        )
    if repaired_total and TELEMETRY.enabled:
        TELEMETRY.counter("data.repair.loads").inc()

    # Common calendar = sorted union of dates, then require coverage.
    all_dates = np.unique(np.concatenate([cols["date"] for cols in per_stock.values()]))
    min_coverage = len(all_dates) // 2
    kept = [
        ticker for ticker, cols in per_stock.items()
        if len(cols["date"]) >= min_coverage
    ]
    if policy.gaps == "drop":
        # Restrict the calendar to dates every kept stock actually traded;
        # blank cells inside surviving rows still forward-fill below.
        calendar = all_dates
        for ticker in kept:
            calendar = calendar[np.isin(calendar, per_stock[ticker]["date"])]
        if TELEMETRY.enabled and len(calendar) < len(all_dates):
            TELEMETRY.counter("data.repair.gap_dates_dropped").inc(
                len(all_dates) - len(calendar))
        all_dates = calendar
        if len(all_dates) < 3:
            raise DataError(
                "gap policy 'drop' left fewer than 3 common dates; "
                "use 'ffill' or 'interpolate' for this directory"
            )
    fill = interpolate_fill if policy.gaps == "interpolate" else _forward_fill
    tickers: list[str] = []
    arrays: dict[str, list[np.ndarray]] = {c: [] for c in _REQUIRED_COLUMNS if c != "date"}
    for ticker, cols in per_stock.items():
        if ticker not in kept:
            continue
        index = {d: i for i, d in enumerate(cols["date"])}
        tickers.append(ticker)
        for column in arrays:
            series = np.full(len(all_dates), np.nan)
            for j, date in enumerate(all_dates):
                i = index.get(date)
                if i is not None:
                    series[j] = cols[column][i]
            # Fill prices per the gap policy, zero-fill volume, so the
            # panel is dense.
            if column == "volume":
                series = np.where(np.isfinite(series), series, 0.0)
            else:
                series = fill(series)
            arrays[column].append(series)
    if len(tickers) < 2:
        raise DataError("fewer than two stocks have sufficient date coverage")

    taxonomy = _taxonomy_from_map(tickers, sector_map)
    return StockPanel(
        open=np.column_stack(arrays["open"]),
        high=np.column_stack(arrays["high"]),
        low=np.column_stack(arrays["low"]),
        close=np.column_stack(arrays["close"]),
        volume=np.column_stack(arrays["volume"]),
        tickers=tuple(tickers),
        dates=all_dates,
        taxonomy=taxonomy,
    )


def _forward_fill(series: np.ndarray) -> np.ndarray:
    """Forward-fill NaNs; leading NaNs are back-filled from the first value."""
    series = series.copy()
    mask = np.isfinite(series)
    if not mask.any():
        return np.zeros_like(series)
    first = np.flatnonzero(mask)[0]
    series[:first] = series[first]
    for i in range(first + 1, series.size):
        if not np.isfinite(series[i]):
            series[i] = series[i - 1]
    return series


def export_panel_csv(panel: StockPanel, directory: str | Path,
                     sector_map_name: str = "sectors.txt") -> Path:
    """Write ``panel`` as one OHLCV CSV per stock plus a sector map file.

    The inverse of :func:`load_csv_directory`: floats are written with
    ``repr`` (full precision), so loading the directory back produces a
    bitwise-identical panel.  Used by the file-backed scenario to turn the
    synthetic market into on-disk data, and by tests to assert the
    round-trip.  Returns the directory path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for k, ticker in enumerate(panel.tickers):
        with (directory / f"{ticker}.csv").open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(_REQUIRED_COLUMNS)
            for t in range(panel.num_days):
                writer.writerow([
                    _format_date(panel.dates[t]),
                    repr(float(panel.open[t, k])),
                    repr(float(panel.high[t, k])),
                    repr(float(panel.low[t, k])),
                    repr(float(panel.close[t, k])),
                    repr(float(panel.volume[t, k])),
                ])
    taxonomy = panel.taxonomy
    with (directory / sector_map_name).open("w", newline="") as handle:
        writer = csv.writer(handle)
        for k, ticker in enumerate(panel.tickers):
            sector = _group_name(taxonomy.sector_names, taxonomy.sector_of(k))
            industry = _group_name(taxonomy.industry_names, taxonomy.industry_of(k))
            writer.writerow([ticker, sector, industry])
    return directory


def _format_date(value) -> str:
    """Dates are integral (day indices or YYYYMMDD); write them as ints."""
    return str(int(value))


def _group_name(names: tuple[str, ...], group_id: int) -> str:
    if 0 <= group_id < len(names):
        return names[group_id]
    return f"GROUP_{group_id}"


def _taxonomy_from_map(
    tickers: list[str], sector_map: dict[str, tuple[str, str]] | None
) -> SectorTaxonomy:
    if not sector_map:
        return SectorTaxonomy(
            sector_ids=np.zeros(len(tickers), dtype=np.int64),
            industry_ids=np.zeros(len(tickers), dtype=np.int64),
            sector_names=("UNKNOWN",),
            industry_names=("UNKNOWN",),
        )
    sectors: list[str] = []
    industries: list[str] = []
    for ticker in tickers:
        sector, industry = sector_map.get(ticker, ("UNKNOWN", "UNKNOWN"))
        sectors.append(sector)
        industries.append(f"{sector}/{industry}")
    sector_names = tuple(sorted(set(sectors)))
    industry_names = tuple(sorted(set(industries)))
    sector_ids = np.asarray([sector_names.index(s) for s in sectors], dtype=np.int64)
    industry_ids = np.asarray(
        [industry_names.index(i) for i in industries], dtype=np.int64
    )
    return SectorTaxonomy(
        sector_ids=sector_ids,
        industry_ids=industry_ids,
        sector_names=sector_names,
        industry_names=industry_names,
    )
