"""Synthetic NASDAQ-like equity market simulator.

The paper evaluates on 5 years (2013-2017) of NASDAQ daily price data with
1026 stocks after filtering.  That data is proprietary-ish (it must be
downloaded from vendors) and unavailable offline, so this module provides a
faithful *substitute*: a factor-model market simulator whose output panel has
the statistical properties the AlphaEvolve pipeline depends on:

* a two-level sector/industry structure (needed by RelationOps and RSR);
* returns dominated by noise but containing *weak, learnable* signal
  components (momentum, short-term reversal, sector co-movement and a
  volume-pressure term), so that a good alpha can achieve a small positive
  information coefficient, as on real markets;
* realistic OHLCV columns derived from the simulated close path;
* occasional low-priced and sparsely-traded stocks so the universe filtering
  rules of Section 5.1 have something to filter.

The simulator is deterministic given a seed.  Any real OHLCV data can be used
instead through :mod:`repro.data.loader`; every downstream component only
sees the :class:`StockPanel` container defined here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import make_rng
from ..errors import DataError
from .relations import SectorTaxonomy, random_taxonomy

__all__ = ["StockPanel", "MarketConfig", "SyntheticMarket", "panels_bitwise_equal"]


def panels_bitwise_equal(left: "StockPanel", right: "StockPanel") -> bool:
    """Whether two panels carry byte-identical OHLCV data.

    The parity predicate of the data layer's round-trip and backend
    contracts (benchmark gate and tests alike): every price/volume array
    must match bit for bit.  Tickers and dates are compared for equality
    too (dates after integer coercion, since a CSV round trip may change
    the dtype but must not change the values).
    """
    return (
        all(
            getattr(left, name).tobytes() == getattr(right, name).tobytes()
            for name in ("open", "high", "low", "close", "volume")
        )
        and left.tickers == right.tickers
        and np.array_equal(
            np.asarray(left.dates).astype(np.int64),
            np.asarray(right.dates).astype(np.int64),
        )
    )


@dataclass
class StockPanel:
    """A rectangular panel of daily OHLCV data for ``K`` stocks over ``T`` days.

    All price arrays have shape ``(T, K)``.  ``tickers`` has length ``K`` and
    ``dates`` length ``T`` (integer day indices or YYYYMMDD-style ints).
    """

    open: np.ndarray
    high: np.ndarray
    low: np.ndarray
    close: np.ndarray
    volume: np.ndarray
    tickers: tuple[str, ...]
    dates: np.ndarray
    taxonomy: SectorTaxonomy

    def __post_init__(self) -> None:
        arrays = {
            "open": self.open,
            "high": self.high,
            "low": self.low,
            "close": self.close,
            "volume": self.volume,
        }
        shapes = {name: np.asarray(arr).shape for name, arr in arrays.items()}
        if len(set(shapes.values())) != 1:
            raise DataError(f"OHLCV arrays must share a shape, got {shapes}")
        for name, arr in arrays.items():
            arr = np.asarray(arr, dtype=np.float64)
            if arr.ndim != 2:
                raise DataError(f"{name} must be 2-D (T, K), got shape {arr.shape}")
            setattr(self, name, arr)
        if len(self.tickers) != self.num_stocks:
            raise DataError(
                f"{len(self.tickers)} tickers for {self.num_stocks} stocks"
            )
        self.dates = np.asarray(self.dates)
        if self.dates.shape != (self.num_days,):
            raise DataError(
                f"dates must have shape ({self.num_days},), got {self.dates.shape}"
            )
        if self.taxonomy.num_stocks != self.num_stocks:
            raise DataError(
                f"taxonomy covers {self.taxonomy.num_stocks} stocks, panel has "
                f"{self.num_stocks}"
            )

    # ------------------------------------------------------------------
    @property
    def num_days(self) -> int:
        """Number of trading days ``T`` in the panel."""
        return int(self.close.shape[0])

    @property
    def num_stocks(self) -> int:
        """Number of stocks ``K`` in the panel."""
        return int(self.close.shape[1])

    def returns(self) -> np.ndarray:
        """Daily simple returns, shape ``(T, K)``; the first row is zero.

        Matches the paper's definition: ``(close_t - close_{t-1}) / close_{t-1}``.
        """
        rets = np.zeros_like(self.close)
        prev = self.close[:-1]
        with np.errstate(divide="ignore", invalid="ignore"):
            rets[1:] = np.where(prev > 0, (self.close[1:] - prev) / prev, 0.0)
        return rets

    def select_stocks(self, indices: np.ndarray) -> "StockPanel":
        """Return a panel restricted to the stocks in ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            raise DataError("cannot select an empty stock set")
        return StockPanel(
            open=self.open[:, indices],
            high=self.high[:, indices],
            low=self.low[:, indices],
            close=self.close[:, indices],
            volume=self.volume[:, indices],
            tickers=tuple(self.tickers[i] for i in indices),
            dates=self.dates,
            taxonomy=self.taxonomy.subset(indices),
        )

    def select_days(self, start: int, stop: int) -> "StockPanel":
        """Return a panel restricted to days ``[start, stop)``."""
        if not (0 <= start < stop <= self.num_days):
            raise DataError(
                f"invalid day range [{start}, {stop}) for panel with "
                f"{self.num_days} days"
            )
        return StockPanel(
            open=self.open[start:stop],
            high=self.high[start:stop],
            low=self.low[start:stop],
            close=self.close[start:stop],
            volume=self.volume[start:stop],
            tickers=self.tickers,
            dates=self.dates[start:stop],
            taxonomy=self.taxonomy,
        )


@dataclass(frozen=True)
class MarketConfig:
    """Parameters of the synthetic market generator.

    The defaults are tuned so that a cross-section of stocks exhibits weak
    momentum/reversal predictability (daily cross-sectional IC of an oracle
    signal around 0.1), sector co-movement, and realistic noise levels.
    """

    num_stocks: int = 100
    num_days: int = 756
    num_sectors: int = 10
    industries_per_sector: int = 3

    #: Daily volatility of the market factor.
    market_vol: float = 0.008
    #: Daily volatility of each sector factor.
    sector_vol: float = 0.006
    #: Daily volatility of each industry factor.
    industry_vol: float = 0.004
    #: Idiosyncratic daily volatility range (per stock, sampled uniformly).
    idio_vol_range: tuple[float, float] = (0.01, 0.035)

    #: Strength of the 5-day momentum signal component.
    momentum_strength: float = 0.04
    #: Strength of the 1-day reversal signal component.
    reversal_strength: float = 0.04
    #: Strength of the volume-pressure signal component.
    volume_strength: float = 0.03
    #: Strength of the *relational* signal: industry momentum spills over to
    #: every member of the industry.  This component is only visible to
    #: alphas that model the sector/industry relations (RelationOps, RSR);
    #: formulaic alphas over a single stock's own features cannot express it.
    relation_spillover_strength: float = 0.08
    #: Daily standard deviation (across stocks) of a persistent per-stock
    #: return component.  It is not derivable from any feature of the input
    #: matrix; an alpha can only learn it by accumulating realised labels
    #: during training — i.e. through the parameter-updating function.  This
    #: is the signal behind the Table 4 ablation.
    persistent_alpha_vol: float = 0.0008

    #: Annual drift range sampled per stock.
    drift_range: tuple[float, float] = (-0.05, 0.15)
    #: Initial price range sampled log-uniformly per stock.
    initial_price_range: tuple[float, float] = (2.0, 300.0)

    #: Fraction of stocks forced to decay towards penny-stock prices so the
    #: Section 5.1 "too low price" filter has work to do.
    penny_stock_fraction: float = 0.03
    #: Fraction of stocks with sparse trading (many zero-volume days).
    illiquid_fraction: float = 0.03

    def __post_init__(self) -> None:
        if self.num_stocks <= 1:
            raise DataError("num_stocks must be at least 2")
        if self.num_days < 60:
            raise DataError("num_days must be at least 60 to compute features")
        if not (0 <= self.penny_stock_fraction < 1):
            raise DataError("penny_stock_fraction must be in [0, 1)")
        if not (0 <= self.illiquid_fraction < 1):
            raise DataError("illiquid_fraction must be in [0, 1)")
        lo, hi = self.idio_vol_range
        if lo <= 0 or hi < lo:
            raise DataError("idio_vol_range must be a positive increasing pair")


class SyntheticMarket:
    """Factor-model market simulator producing a :class:`StockPanel`.

    The simulated log-return of stock ``i`` on day ``t`` is::

        r[t, i] = drift_i
                  + beta_mkt_i  * f_mkt[t]
                  + beta_sec_i  * f_sector[t, sector(i)]
                  + beta_ind_i  * f_industry[t, industry(i)]
                  + momentum_strength * zscore(mom5)[t-1, i] * scale
                  - reversal_strength * zscore(r)[t-1, i]    * scale
                  + volume_strength   * zscore(dvol)[t-1, i] * scale
                  + idio_vol_i * eps[t, i]

    where the three z-scored terms are *lagged cross-sectional* signals; they
    are what gives momentum/reversal/volume alphas a weak real edge, playing
    the role of the exploitable structure in real NASDAQ data.
    """

    def __init__(self, config: MarketConfig | None = None,
                 seed: int | np.random.Generator | None = None) -> None:
        self.config = config or MarketConfig()
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------
    def generate(self) -> StockPanel:
        """Simulate and return a full OHLCV panel."""
        cfg = self.config
        rng = self._rng
        K, T = cfg.num_stocks, cfg.num_days

        taxonomy = random_taxonomy(
            K,
            num_sectors=cfg.num_sectors,
            industries_per_sector=cfg.industries_per_sector,
            seed=rng,
        )
        sector_idx = taxonomy.group_index("sector")
        industry_idx = taxonomy.group_index("industry")
        num_sectors = int(sector_idx.max()) + 1
        num_industries = int(industry_idx.max()) + 1

        # Per-stock static parameters.
        drift = rng.uniform(*cfg.drift_range, size=K) / 252.0
        drift = drift + rng.normal(0.0, cfg.persistent_alpha_vol, size=K)
        idio_vol = rng.uniform(*cfg.idio_vol_range, size=K)
        beta_mkt = rng.normal(1.0, 0.3, size=K)
        beta_sec = rng.normal(1.0, 0.3, size=K)
        beta_ind = rng.normal(1.0, 0.3, size=K)
        log_p0 = rng.uniform(
            np.log(cfg.initial_price_range[0]), np.log(cfg.initial_price_range[1]), size=K
        )

        # Factor paths.
        f_mkt = rng.normal(0.0, cfg.market_vol, size=T)
        f_sec = rng.normal(0.0, cfg.sector_vol, size=(T, num_sectors))
        f_ind = rng.normal(0.0, cfg.industry_vol, size=(T, num_industries))
        eps = rng.normal(0.0, 1.0, size=(T, K))

        # Volume: log-normal around a per-stock base level, with an
        # autocorrelated shock so "dollar volume pressure" is persistent.
        base_volume = rng.lognormal(mean=12.0, sigma=1.0, size=K)
        vol_shock = np.zeros((T, K))
        shock_noise = rng.normal(0.0, 0.35, size=(T, K))
        for t in range(1, T):
            vol_shock[t] = 0.7 * vol_shock[t - 1] + shock_noise[t]
        volume = base_volume[None, :] * np.exp(vol_shock)

        log_returns = np.zeros((T, K))
        signal_scale = idio_vol  # scale signals relative to each stock's noise

        for t in range(1, T):
            systematic = (
                drift
                + beta_mkt * f_mkt[t]
                + beta_sec * f_sec[t, sector_idx]
                + beta_ind * f_ind[t, industry_idx]
            )
            signal = np.zeros(K)
            if t >= 6:
                mom5 = log_returns[t - 6:t - 1].sum(axis=0)
                signal += cfg.momentum_strength * _cross_sectional_zscore(mom5)
                # Industry momentum spillover: the industry's average recent
                # momentum lifts (or drags) every member of the industry.
                # Only alphas aware of the sector/industry relations
                # (RelationOps, RSR) can model this component.
                industry_mom = np.bincount(
                    industry_idx, weights=mom5, minlength=num_industries
                ) / np.maximum(np.bincount(industry_idx, minlength=num_industries), 1)
                signal += cfg.relation_spillover_strength * _cross_sectional_zscore(
                    industry_mom[industry_idx]
                )
            signal -= cfg.reversal_strength * _cross_sectional_zscore(log_returns[t - 1])
            # The volume signal acts through the *transient* volume shock so
            # that it is a genuine dynamic signal rather than a static
            # per-stock characteristic an alpha could memorise.
            signal += cfg.volume_strength * _cross_sectional_zscore(vol_shock[t - 1])
            log_returns[t] = systematic + signal * signal_scale + idio_vol * eps[t]

        # Penny-stock decay and illiquidity flags.
        num_penny = int(round(cfg.penny_stock_fraction * K))
        num_illiquid = int(round(cfg.illiquid_fraction * K))
        special = rng.choice(K, size=num_penny + num_illiquid, replace=False)
        penny = special[:num_penny]
        illiquid = special[num_penny:]
        if penny.size:
            # Start these names near the low-price threshold and give them a
            # steady negative drift, so the Section 5.1 price filter removes
            # them instead of leaving an easily shortable drift in the data.
            log_p0[penny] = np.log(rng.uniform(1.0, 3.0, size=penny.size))
            log_returns[:, penny] -= 0.01
        if illiquid.size:
            zero_days = rng.random((T, illiquid.size)) < 0.6
            volume[:, illiquid] = np.where(zero_days, 0.0, volume[:, illiquid])

        log_close = log_p0[None, :] + np.cumsum(log_returns, axis=0)
        close = np.exp(log_close)

        open_, high, low = self._ohlc_from_close(close, idio_vol, rng)
        dates = np.arange(T, dtype=np.int64)
        tickers = tuple(f"SYN{i:04d}" for i in range(K))
        return StockPanel(
            open=open_,
            high=high,
            low=low,
            close=close,
            volume=volume,
            tickers=tickers,
            dates=dates,
            taxonomy=taxonomy,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _ohlc_from_close(close: np.ndarray, idio_vol: np.ndarray,
                         rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Derive plausible open/high/low paths from a close path."""
        T, K = close.shape
        prev_close = np.vstack([close[:1], close[:-1]])
        gap = rng.normal(0.0, 0.3, size=(T, K)) * idio_vol[None, :]
        open_ = prev_close * np.exp(gap)
        intraday_range = np.abs(rng.normal(0.0, 1.0, size=(T, K))) * idio_vol[None, :]
        upper = np.maximum(open_, close) * np.exp(intraday_range * 0.5)
        lower = np.minimum(open_, close) * np.exp(-intraday_range * 0.5)
        return open_, upper, lower


def _cross_sectional_zscore(values: np.ndarray) -> np.ndarray:
    """Z-score ``values`` across the stock axis, safe for zero variance."""
    mean = values.mean()
    std = values.std()
    if std <= 1e-12:
        return np.zeros_like(values)
    return (values - mean) / std
