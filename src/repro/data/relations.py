"""Sector / industry taxonomy used by the RelationOps and the RSR baseline.

The paper (Section 4.1) injects relational domain knowledge by grouping the
prediction tasks (stocks) into sectors and industries: every stock belongs to
exactly one sector, and every industry is nested inside a sector.  The
RelationRankOp and RelationDemeanOp operate within the *industry* group of a
stock, while the RSR baseline connects stocks that share a sector (industry).

This module provides a small, explicit representation of that two-level
taxonomy plus the grouping indices the vectorised interpreter needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import make_rng
from ..errors import DataError


@dataclass(frozen=True)
class SectorTaxonomy:
    """Two-level (sector -> industry) classification of a stock universe.

    Attributes
    ----------
    sector_ids:
        Integer sector id per stock, shape ``(K,)``.
    industry_ids:
        Integer industry id per stock, shape ``(K,)``.  Industry ids are
        globally unique (i.e. industries in different sectors never share an
        id) and each industry maps to exactly one sector.
    sector_names / industry_names:
        Optional human-readable names, indexed by id.
    """

    sector_ids: np.ndarray
    industry_ids: np.ndarray
    sector_names: tuple[str, ...] = field(default=())
    industry_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        sector_ids = np.asarray(self.sector_ids, dtype=np.int64)
        industry_ids = np.asarray(self.industry_ids, dtype=np.int64)
        object.__setattr__(self, "sector_ids", sector_ids)
        object.__setattr__(self, "industry_ids", industry_ids)
        if sector_ids.ndim != 1 or industry_ids.ndim != 1:
            raise DataError("sector_ids and industry_ids must be 1-D arrays")
        if sector_ids.shape != industry_ids.shape:
            raise DataError(
                "sector_ids and industry_ids must have the same length, got "
                f"{sector_ids.shape} and {industry_ids.shape}"
            )
        if sector_ids.size == 0:
            raise DataError("taxonomy must cover at least one stock")
        if (sector_ids < 0).any() or (industry_ids < 0).any():
            raise DataError("sector and industry ids must be non-negative")
        # Every industry must belong to exactly one sector.
        for industry in np.unique(industry_ids):
            sectors = np.unique(sector_ids[industry_ids == industry])
            if sectors.size != 1:
                raise DataError(
                    f"industry {industry} spans multiple sectors {sectors.tolist()}"
                )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_stocks(self) -> int:
        """Number of stocks covered by the taxonomy."""
        return int(self.sector_ids.size)

    @property
    def num_sectors(self) -> int:
        """Number of distinct sectors."""
        return int(np.unique(self.sector_ids).size)

    @property
    def num_industries(self) -> int:
        """Number of distinct industries."""
        return int(np.unique(self.industry_ids).size)

    def sector_of(self, stock: int) -> int:
        """Return the sector id of ``stock``."""
        return int(self.sector_ids[stock])

    def industry_of(self, stock: int) -> int:
        """Return the industry id of ``stock``."""
        return int(self.industry_ids[stock])

    def stocks_in_sector(self, sector: int) -> np.ndarray:
        """Return the indices of all stocks in ``sector``."""
        return np.flatnonzero(self.sector_ids == sector)

    def stocks_in_industry(self, industry: int) -> np.ndarray:
        """Return the indices of all stocks in ``industry``."""
        return np.flatnonzero(self.industry_ids == industry)

    def subset(self, stocks: np.ndarray) -> "SectorTaxonomy":
        """Return the taxonomy restricted to ``stocks`` (index array)."""
        stocks = np.asarray(stocks, dtype=np.int64)
        return SectorTaxonomy(
            sector_ids=self.sector_ids[stocks],
            industry_ids=self.industry_ids[stocks],
            sector_names=self.sector_names,
            industry_names=self.industry_names,
        )

    # ------------------------------------------------------------------
    # Grouping helpers for vectorised cross-sectional operators
    # ------------------------------------------------------------------
    def group_matrix(self, level: str = "industry") -> np.ndarray:
        """Return a boolean membership matrix of shape ``(num_groups, K)``.

        ``level`` is either ``"sector"`` or ``"industry"``.  Row ``g`` is the
        indicator vector of the stocks in group ``g`` (groups are the sorted
        unique ids).
        """
        ids = self._ids_for_level(level)
        groups = np.unique(ids)
        return ids[None, :] == groups[:, None]

    def group_index(self, level: str = "industry") -> np.ndarray:
        """Return a dense group index per stock in ``[0, num_groups)``.

        Dense indices are what the vectorised sector-demean / sector-rank
        operators use with ``np.add.at`` style scatter operations.
        """
        ids = self._ids_for_level(level)
        _, dense = np.unique(ids, return_inverse=True)
        return dense.astype(np.int64)

    def adjacency(self, level: str = "industry") -> np.ndarray:
        """Return a ``(K, K)`` 0/1 adjacency matrix connecting stocks that
        share the given group level.  The diagonal is 1 (a stock is related
        to itself), matching the relational encoding of the RSR baseline.
        """
        ids = self._ids_for_level(level)
        adjacency = (ids[:, None] == ids[None, :]).astype(np.float64)
        return adjacency

    def _ids_for_level(self, level: str) -> np.ndarray:
        if level == "sector":
            return self.sector_ids
        if level == "industry":
            return self.industry_ids
        raise DataError(f"unknown taxonomy level {level!r}; use 'sector' or 'industry'")


def random_taxonomy(
    num_stocks: int,
    num_sectors: int = 10,
    industries_per_sector: int = 3,
    seed: int | np.random.Generator | None = None,
) -> SectorTaxonomy:
    """Generate a random two-level sector/industry taxonomy.

    Stocks are assigned to sectors (roughly uniformly) and then to one of the
    sector's industries.  This mirrors the GICS-style classification used for
    NASDAQ stocks in the paper's dataset.
    """
    if num_stocks <= 0:
        raise DataError("num_stocks must be positive")
    if num_sectors <= 0 or industries_per_sector <= 0:
        raise DataError("num_sectors and industries_per_sector must be positive")
    num_sectors = min(num_sectors, num_stocks)
    rng = make_rng(seed)
    sector_ids = rng.integers(0, num_sectors, size=num_stocks)
    # Guarantee every sector id below num_sectors actually appears when possible
    # so that group-based operators always have non-trivial groups.
    present = np.unique(sector_ids)
    missing = np.setdiff1d(np.arange(num_sectors), present)
    if missing.size:
        replace_at = rng.choice(num_stocks, size=missing.size, replace=False)
        sector_ids[replace_at] = missing
    industry_offset = rng.integers(0, industries_per_sector, size=num_stocks)
    industry_ids = sector_ids * industries_per_sector + industry_offset
    sector_names = tuple(f"SECTOR_{i}" for i in range(num_sectors))
    industry_names = tuple(
        f"SECTOR_{s}_IND_{j}"
        for s in range(num_sectors)
        for j in range(industries_per_sector)
    )
    return SectorTaxonomy(
        sector_ids=sector_ids,
        industry_ids=industry_ids,
        sector_names=sector_names,
        industry_names=industry_names,
    )
