"""Dirty-market data: corruption taxonomy, panel auditor and repair policies.

Production market data is never clean.  This module treats dirtiness as a
first-class, *enumerable* phenomenon — the consistent-query-answering frame
of Lopatenko & Bertossi (cardinality-based repairs) and Koutris & Wijsen
(certain answers under key violations): a dirty panel is a set of possible
repairs, and downstream results are *certain* when they hold across every
admissible repair, *contingent* when they depend on which repair was chosen.

Three layers live here (full guide: ``docs/DATA.md``):

**Taxonomy + auditor.**  Five corruption classes cover what real OHLCV
feeds produce (:data:`CORRUPTION_KINDS`):

=============  ===========================================================
kind           what it looks like in a per-stock CSV directory
=============  ===========================================================
``duplicates`` two (possibly conflicting) rows for one stock/date key
``gaps``       dates present in the union calendar but missing from a file
``stale``      frozen quotes: a run of days with bit-identical prices
``splits``     an unadjusted corporate action: prices jump by ~1/n and
               stay at the new level
``spikes``     a one-day outlier print that reverts the next day
=============  ===========================================================

:func:`audit_directory` detects all of them (pure detection — nothing is
modified) and returns a versioned :class:`AuditReport`.

**Repair policies.**  A :class:`RepairPolicy` fixes one deterministic
resolution per class; the named registry (:data:`REPAIR_POLICIES`, e.g.
``strict``, ``keep-last``, ``gap-interpolate``, ``split-adjust``) is what a
:class:`~repro.data.backends.DataSpec` selects and the loader applies.
Every policy is bitwise-reproducible: the same dirty directory and policy
always produce the same repaired panel, and repairing clean data is the
identity — contracts gated by ``tests/data/test_corruption_fuzz.py`` and
``benchmarks/bench_data.py --smoke``.

**Corruption injection.**  :func:`inject_corruption` is the inverse of the
auditor: it takes a directory of *clean* per-stock CSVs and deterministically
injects a seeded set of violations, returning an :class:`AuditReport` of
exactly what it did — the ground truth the property-based test harness and
the ``dirty-*`` scenarios are built on.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import DataError, DataIntegrityError
from ..obs import TELEMETRY

__all__ = [
    "AUDIT_REPORT_VERSION",
    "CORRUPTION_KINDS",
    "AuditReport",
    "CorruptionSpec",
    "REPAIR_POLICIES",
    "RepairPolicy",
    "Violation",
    "audit_directory",
    "dedupe_columns",
    "find_duplicate_dates",
    "find_series_violations",
    "inject_corruption",
    "interpolate_fill",
    "register_repair_policy",
    "repair_policy",
    "repair_policy_names",
    "repair_series",
    "save_audit_report",
    "load_audit_report",
]

#: The corruption taxonomy, in audit order.
CORRUPTION_KINDS = ("duplicates", "gaps", "stale", "splits", "spikes")

#: Bumped whenever the :class:`AuditReport` JSON layout changes incompatibly.
AUDIT_REPORT_VERSION = 1

# ---------------------------------------------------------------------------
# Detection thresholds.  Synthetic daily returns are a few percent at most,
# so a 1.6x day-over-day move is many sigmas out — injected splits (2x) and
# spikes (3x) are always found, clean panels never false-positive.
# ---------------------------------------------------------------------------

#: A day-over-day close ratio at or beyond this (or its inverse) is a jump.
JUMP_RATIO = 1.6

#: A jump *reverts* (making it a spike, not a split) when the next close is
#: within this ratio of the pre-jump close.
REVERT_RATIO = 1.25

#: Minimum run of bit-identical closes flagged as a frozen quote.
STALE_MIN_RUN = 4

#: A split ratio within this relative tolerance of an integer (or inverse
#: integer) is snapped to it, so back-adjustment divides out the corporate
#: action exactly and preserves the underlying returns.
SPLIT_SNAP_TOLERANCE = 0.1

_PRICE_COLUMNS = ("open", "high", "low", "close")
_VALUE_COLUMNS = ("open", "high", "low", "close", "volume")


# ---------------------------------------------------------------------------
# Violations and the audit report
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    """One detected (or injected) integrity violation.

    ``dates`` spans the affected day(s): the duplicated key, the missing
    calendar dates of a gap run, the full frozen run of a stale quote, or
    the single discontinuity/outlier day.  ``detail`` carries kind-specific
    facts (conflict flag, split factor, observed ratio, …).
    """

    kind: str
    ticker: str
    dates: tuple[int, ...]
    detail: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in CORRUPTION_KINDS:
            raise DataError(
                f"unknown violation kind {self.kind!r}; "
                f"taxonomy: {CORRUPTION_KINDS}"
            )
        object.__setattr__(self, "dates", tuple(int(d) for d in self.dates))

    def key(self) -> tuple:
        """Identity used to match detected against injected violations."""
        return (self.kind, self.ticker, self.dates)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "ticker": self.ticker,
            "dates": list(self.dates),
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Violation":
        return cls(
            kind=payload["kind"],
            ticker=payload["ticker"],
            dates=tuple(payload["dates"]),
            detail=dict(payload.get("detail", {})),
        )


@dataclass
class AuditReport:
    """Everything one audit (or injection) found, with a versioned layout."""

    violations: tuple[Violation, ...]
    source: str = ""
    version: int = AUDIT_REPORT_VERSION

    def __post_init__(self) -> None:
        self.violations = tuple(self.violations)

    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """``kind -> number of violations`` for the kinds that occurred."""
        out: dict[str, int] = {}
        for violation in self.violations:
            out[violation.kind] = out.get(violation.kind, 0) + 1
        return {kind: out[kind] for kind in CORRUPTION_KINDS if kind in out}

    def for_kind(self, kind: str) -> tuple[Violation, ...]:
        """The violations of one taxonomy class."""
        return tuple(v for v in self.violations if v.kind == kind)

    def keys(self) -> list[tuple]:
        """Sorted violation identities — the fuzz harness's equality basis."""
        return sorted(violation.key() for violation in self.violations)

    def pairs(self) -> tuple[tuple[str, int], ...]:
        """Flat ``(ticker, date)`` pairs across all violations."""
        return tuple(
            (violation.ticker, date)
            for violation in self.violations
            for date in violation.dates
        )

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """JSON-serialisable representation (the on-disk layout)."""
        return {
            "version": self.version,
            "source": self.source,
            "counts": self.counts(),
            "violations": [violation.to_dict() for violation in self.violations],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "AuditReport":
        """Inverse of :meth:`to_json`; rejects layouts from other versions."""
        version = payload.get("version", AUDIT_REPORT_VERSION)
        if version != AUDIT_REPORT_VERSION:
            raise DataError(
                f"audit report has version {version}, this build reads "
                f"version {AUDIT_REPORT_VERSION}"
            )
        return cls(
            violations=tuple(
                Violation.from_dict(entry)
                for entry in payload.get("violations", ())
            ),
            source=payload.get("source", ""),
            version=version,
        )

    def render(self) -> str:
        """A compact printable summary."""
        if not self.violations:
            return "audit: clean (no violations)"
        lines = [f"audit: {len(self.violations)} violation(s)"]
        for kind, count in self.counts().items():
            tickers = sorted({v.ticker for v in self.for_kind(kind)})
            lines.append(f"  {kind:<11} {count:>3}  [{', '.join(tickers)}]")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Repair policies
# ---------------------------------------------------------------------------

_DUPLICATE_CHOICES = ("reject", "keep-first", "keep-last")
_GAP_CHOICES = ("ffill", "interpolate", "drop")
_SPLIT_CHOICES = ("keep", "back-adjust")
_SPIKE_CHOICES = ("keep", "interpolate")


@dataclass(frozen=True)
class RepairPolicy:
    """One deterministic resolution per corruption class.

    Attributes
    ----------
    duplicates:
        ``reject`` (raise :class:`~repro.errors.DataIntegrityError` with
        the offending pairs), ``keep-first`` or ``keep-last`` (file order
        among equal dates decides which row survives).
    gaps:
        ``ffill`` (forward-fill prices, zero volume — the historical loader
        behaviour), ``interpolate`` (linear between the surrounding real
        observations) or ``drop`` (restrict the calendar to dates every
        kept stock traded).
    splits:
        ``keep`` or ``back-adjust`` (divide pre-split prices and multiply
        pre-split volume by the snapped split factor, so the series is
        continuous on the post-split scale).
    spikes:
        ``keep`` or ``interpolate`` (rescale the outlier day's OHLC onto
        the midpoint of its neighbours' closes).

    Stale quotes are detect-only: no rewrite of a frozen run is better than
    the run itself, so the auditor reports them and policies leave them.
    """

    name: str
    duplicates: str = "reject"
    gaps: str = "ffill"
    splits: str = "keep"
    spikes: str = "keep"

    def __post_init__(self) -> None:
        for value, choices, label in (
            (self.duplicates, _DUPLICATE_CHOICES, "duplicates"),
            (self.gaps, _GAP_CHOICES, "gaps"),
            (self.splits, _SPLIT_CHOICES, "splits"),
            (self.spikes, _SPIKE_CHOICES, "spikes"),
        ):
            if value not in choices:
                raise DataError(
                    f"repair policy {self.name!r}: unknown {label} choice "
                    f"{value!r}; use one of {choices}"
                )

    def describe(self) -> dict:
        """JSON-friendly summary for logs and scenario results."""
        return {
            "name": self.name,
            "duplicates": self.duplicates,
            "gaps": self.gaps,
            "splits": self.splits,
            "spikes": self.spikes,
        }


#: The named policy registry ``DataSpec.repair`` selects from.
REPAIR_POLICIES: dict[str, RepairPolicy] = {}


def register_repair_policy(policy: RepairPolicy,
                           overwrite: bool = False) -> RepairPolicy:
    """Add ``policy`` to the registry (error on duplicates unless asked)."""
    if not overwrite and policy.name in REPAIR_POLICIES:
        raise DataError(
            f"repair policy {policy.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    REPAIR_POLICIES[policy.name] = policy
    return policy


def repair_policy(name) -> RepairPolicy:
    """Resolve a policy name (or pass a policy through; ``None`` = strict)."""
    if name is None:
        return REPAIR_POLICIES["strict"]
    if isinstance(name, RepairPolicy):
        return name
    policy = REPAIR_POLICIES.get(name)
    if policy is None:
        raise DataError(
            f"unknown repair policy {name!r}; "
            f"registered policies: {repair_policy_names()}"
        )
    return policy


def repair_policy_names() -> list[str]:
    """Sorted names of every registered repair policy."""
    return sorted(REPAIR_POLICIES)


register_repair_policy(RepairPolicy("strict"))
register_repair_policy(RepairPolicy("keep-first", duplicates="keep-first"))
register_repair_policy(RepairPolicy("keep-last", duplicates="keep-last"))
register_repair_policy(RepairPolicy(
    "gap-interpolate", duplicates="keep-last", gaps="interpolate"))
register_repair_policy(RepairPolicy(
    "gap-drop", duplicates="keep-last", gaps="drop"))
register_repair_policy(RepairPolicy(
    "split-adjust", duplicates="keep-last", splits="back-adjust"))
register_repair_policy(RepairPolicy(
    "despike", duplicates="keep-last", spikes="interpolate"))
register_repair_policy(RepairPolicy(
    "robust", duplicates="keep-last", gaps="interpolate",
    splits="back-adjust", spikes="interpolate"))


# ---------------------------------------------------------------------------
# Detection
# ---------------------------------------------------------------------------


def find_duplicate_dates(ticker: str, columns: dict) -> list[Violation]:
    """Duplicate-key violations in one stock's (sorted) parsed columns.

    ``detail["conflict"]`` says whether the duplicate rows actually
    disagree on any value (NaN counts as equal to NaN): conflicting rows
    are a genuine key violation, identical rows a harmless double-write.
    """
    dates = np.asarray(columns["date"])
    violations: list[Violation] = []
    start = 0
    while start < dates.size:
        stop = start
        while stop + 1 < dates.size and dates[stop + 1] == dates[start]:
            stop += 1
        if stop > start:
            rows = []
            for i in range(start, stop + 1):
                rows.append(tuple(
                    np.float64(columns[name][i]).tobytes()
                    for name in _VALUE_COLUMNS
                ))
            violations.append(Violation(
                kind="duplicates",
                ticker=ticker,
                dates=(int(dates[start]),),
                detail={
                    "count": stop - start + 1,
                    "conflict": len(set(rows)) > 1,
                },
            ))
        start = stop + 1
    return violations


def dedupe_columns(ticker: str, columns: dict, how: str) -> tuple[dict, list]:
    """Resolve duplicate dates per the ``how`` choice.

    Returns the (possibly reduced) columns plus the duplicate violations
    that were resolved.  ``reject`` raises a
    :class:`~repro.errors.DataIntegrityError` carrying the offending
    ``(ticker, date)`` pairs.
    """
    if how not in _DUPLICATE_CHOICES:
        raise DataError(
            f"unknown duplicates choice {how!r}; use one of "
            f"{_DUPLICATE_CHOICES}"
        )
    violations = find_duplicate_dates(ticker, columns)
    if not violations:
        return columns, []
    if how == "reject":
        pairs = [(ticker, v.dates[0]) for v in violations]
        raise DataIntegrityError(
            f"stock {ticker} contains duplicate dates: "
            f"{[date for _, date in pairs]} (repair policies: keep-first / "
            f"keep-last resolve them deterministically)",
            pairs=pairs,
        )
    dates = np.asarray(columns["date"])
    # Rows arrive stable-sorted by date, so file order survives within a
    # duplicate group: "first"/"last" mean first/last occurrence in the file.
    if how == "keep-first":
        _, keep = np.unique(dates, return_index=True)
    else:
        reversed_unique, reversed_index = np.unique(
            dates[::-1], return_index=True)
        keep = np.sort(dates.size - 1 - reversed_index)
    return {name: values[keep] for name, values in columns.items()}, violations


def find_series_violations(
    ticker: str,
    columns: dict,
    kinds: tuple[str, ...] = ("stale", "splits", "spikes"),
) -> list[Violation]:
    """Stale runs, split discontinuities and spike outliers in one series.

    Operates on a *deduplicated, date-sorted* per-stock series (detection
    runs before calendar alignment, so forward-filled gap days can never
    masquerade as frozen quotes).  A jump that reverts the next day is a
    spike; one that persists is a split (a jump on the final day, with no
    next day to revert on, counts as a split).
    """
    close = np.asarray(columns["close"], dtype=np.float64)
    dates = np.asarray(columns["date"])
    violations: list[Violation] = []

    if "stale" in kinds:
        start = 0
        while start < close.size:
            stop = start
            while (stop + 1 < close.size
                   and np.float64(close[stop + 1]).tobytes()
                   == np.float64(close[start]).tobytes()):
                stop += 1
            run = stop - start + 1
            if run >= STALE_MIN_RUN:
                violations.append(Violation(
                    kind="stale",
                    ticker=ticker,
                    dates=tuple(int(d) for d in dates[start:stop + 1]),
                    detail={"run": run},
                ))
            start = stop + 1

    if "splits" in kinds or "spikes" in kinds:
        t = 1
        while t < close.size:
            previous, current = close[t - 1], close[t]
            if previous <= 0 or current <= 0:
                t += 1
                continue
            ratio = current / previous
            if 1.0 / JUMP_RATIO < ratio < JUMP_RATIO:
                t += 1
                continue
            reverts = False
            if t + 1 < close.size and close[t + 1] > 0:
                reversion = close[t + 1] / previous
                reverts = 1.0 / REVERT_RATIO < reversion < REVERT_RATIO
            if reverts:
                if "spikes" in kinds:
                    violations.append(Violation(
                        kind="spikes",
                        ticker=ticker,
                        dates=(int(dates[t]),),
                        detail={"ratio": float(ratio)},
                    ))
                t += 2  # the reversion day is part of the spike, not a jump
            else:
                if "splits" in kinds:
                    violations.append(Violation(
                        kind="splits",
                        ticker=ticker,
                        dates=(int(dates[t]),),
                        detail={
                            "ratio": float(1.0 / ratio),
                            "factor": _snap_split_factor(1.0 / ratio),
                        },
                    ))
                t += 1
    return violations


def _snap_split_factor(ratio: float) -> float:
    """Snap an observed pre/post close ratio to the nearest n:1 (or 1:n).

    A 2:1 split shows up as ``ratio ~ 2 * (1 + that day's true return)``;
    snapping to the integer divides the corporate action out exactly and
    leaves the genuine return in place.  Ratios too far from any integer
    (within :data:`SPLIT_SNAP_TOLERANCE`) back-adjust by the raw ratio.
    """
    if ratio >= 1.0:
        snapped = max(2.0, round(ratio))
        if abs(ratio - snapped) <= SPLIT_SNAP_TOLERANCE * snapped:
            return float(snapped)
    else:
        inverse = max(2.0, round(1.0 / ratio))
        if abs(1.0 / ratio - inverse) <= SPLIT_SNAP_TOLERANCE * inverse:
            return float(1.0 / inverse)
    return float(ratio)


def _find_gap_runs(ticker: str, stock_dates: np.ndarray,
                   calendar: np.ndarray) -> list[Violation]:
    """Gap violations: maximal runs of calendar dates missing from a stock."""
    present = np.isin(calendar, stock_dates)
    violations: list[Violation] = []
    start = None
    for position, here in enumerate(present):
        if not here and start is None:
            start = position
        elif here and start is not None:
            violations.append(Violation(
                kind="gaps",
                ticker=ticker,
                dates=tuple(int(d) for d in calendar[start:position]),
            ))
            start = None
    if start is not None:
        violations.append(Violation(
            kind="gaps",
            ticker=ticker,
            dates=tuple(int(d) for d in calendar[start:]),
        ))
    return violations


def audit_directory(directory: str | Path, pattern: str = "*.csv",
                    exclude: tuple[str, ...] = ()) -> AuditReport:
    """Audit a per-stock CSV directory against the whole taxonomy.

    Pure detection: nothing on disk or in memory is repaired.  Duplicates
    are found on the raw parsed rows; gap runs against the union calendar
    of all files; stale/split/spike detection runs on each stock's own
    deduplicated series (``keep-last``, so conflicting duplicates cannot
    hide a discontinuity) *before* any alignment fill could fabricate
    frozen quotes.
    """
    # Imported lazily: loader imports this module for its repair pipeline.
    from .loader import parse_ohlcv_csv

    directory = Path(directory)
    if not directory.is_dir():
        raise DataError(f"not a directory: {directory}")
    files = [
        path for path in sorted(directory.glob(pattern))
        if path.name not in exclude
    ]
    if not files:
        raise DataError(f"no files matching {pattern!r} under {directory}")

    violations: list[Violation] = []
    deduped: dict[str, dict] = {}
    for path in files:
        ticker = path.stem.upper()
        columns = parse_ohlcv_csv(path, duplicates="keep-all")
        violations.extend(find_duplicate_dates(ticker, columns))
        deduped[ticker], _ = dedupe_columns(ticker, columns, "keep-last")

    calendar = np.unique(np.concatenate(
        [cols["date"] for cols in deduped.values()]
    ))
    for ticker, cols in deduped.items():
        violations.extend(_find_gap_runs(ticker, cols["date"], calendar))
        violations.extend(find_series_violations(ticker, cols))

    if TELEMETRY.enabled:
        TELEMETRY.counter("data.audit.runs").inc()
        TELEMETRY.counter("data.audit.violations").inc(len(violations))
    return AuditReport(violations=tuple(violations), source=str(directory))


# ---------------------------------------------------------------------------
# Repair application
# ---------------------------------------------------------------------------


def repair_series(ticker: str, columns: dict,
                  policy: RepairPolicy) -> tuple[dict, list[Violation]]:
    """Apply a policy's split/spike repairs to one deduplicated series.

    Returns the (possibly rewritten) columns plus the violations that were
    repaired.  With both classes on ``keep`` this is a no-op returning the
    input columns unchanged — the clean-panel-identity contract.
    """
    wants_splits = policy.splits == "back-adjust"
    wants_spikes = policy.spikes == "interpolate"
    if not (wants_splits or wants_spikes):
        return columns, []
    detected = find_series_violations(ticker, columns,
                                      kinds=("splits", "spikes"))
    applicable = [
        violation for violation in detected
        if (violation.kind == "splits" and wants_splits)
        or (violation.kind == "spikes" and wants_spikes)
    ]
    if not applicable:
        return columns, []

    columns = {name: np.array(values, copy=True)
               for name, values in columns.items()}
    dates = columns["date"]
    for violation in applicable:
        index = int(np.searchsorted(dates, violation.dates[0]))
        if violation.kind == "splits":
            # Bring pre-split history onto the post-split scale: prices
            # shrink by the factor, share counts grow by it.
            factor = violation.detail["factor"]
            for name in _PRICE_COLUMNS:
                columns[name][:index] /= factor
            columns["volume"][:index] *= factor
        else:
            # Rescale the outlier day's bar onto the midpoint of its
            # neighbours' closes (shape-preserving: OHLC scale together).
            close = columns["close"]
            target = 0.5 * (close[index - 1] + close[index + 1])
            scale = target / close[index]
            for name in _PRICE_COLUMNS:
                columns[name][index] *= scale
    if TELEMETRY.enabled:
        for violation in applicable:
            TELEMETRY.counter(f"data.repair.{violation.kind}").inc()
    return columns, applicable


def interpolate_fill(series: np.ndarray) -> np.ndarray:
    """Fill NaNs by linear interpolation between real observations.

    Leading NaNs take the first observed value, trailing NaNs the last —
    the same edge semantics as forward-fill, so only interior gaps differ.
    An all-NaN series fills to zeros (caught later by panel validation).
    """
    mask = np.isfinite(series)
    if not mask.any():
        return np.zeros_like(series)
    observed = np.flatnonzero(mask)
    return np.interp(np.arange(series.size), observed, series[observed])


# ---------------------------------------------------------------------------
# Corruption injection
# ---------------------------------------------------------------------------

#: Row margin kept clean at both ends of every file, so injected events
#: never collide with the calendar edges (where split/spike classification
#: would be ambiguous) or with each other's safety windows.
_EDGE_MARGIN = 3

#: Consecutive dates removed per injected gap event.
_GAP_RUN = 2

#: Total days (source + frozen copies) per injected stale event.
_STALE_RUN = STALE_MIN_RUN + 1

#: Price multiplier of an injected spike (reverts the next day).
_SPIKE_FACTOR = 3.0

#: Split factor of an injected (unadjusted) 2:1 corporate action.
_SPLIT_FACTOR = 2.0

#: Value multiplier distinguishing an injected conflicting duplicate row.
_CONFLICT_FACTOR = 1.5


@dataclass(frozen=True)
class CorruptionSpec:
    """A deterministic, seeded corruption workload.

    ``events`` violations of each kind in ``kinds`` are injected, each on
    its *own* stock (stocks are partitioned across events, so detected and
    injected violation sets can be compared exactly).  Hashable and
    ``repr``-stable, so scenario manifests can key on it.
    """

    kinds: tuple[str, ...] = CORRUPTION_KINDS
    events: int = 2
    seed: int = 13

    def __post_init__(self) -> None:
        object.__setattr__(self, "kinds", tuple(self.kinds))
        unknown = sorted(set(self.kinds) - set(CORRUPTION_KINDS))
        if unknown:
            raise DataError(
                f"unknown corruption kind(s) {unknown}; "
                f"taxonomy: {CORRUPTION_KINDS}"
            )
        if not self.kinds:
            raise DataError("CorruptionSpec needs at least one kind")
        if self.events < 1:
            raise DataError("CorruptionSpec.events must be at least 1")


def inject_corruption(directory: str | Path, spec: CorruptionSpec,
                      pattern: str = "*.csv",
                      exclude: tuple[str, ...] = ()) -> AuditReport:
    """Corrupt a directory of clean per-stock CSVs, deterministically.

    Each event rewrites one file in place; untouched cells keep their exact
    text, so everything outside the injected violations survives bit for
    bit.  Returns an :class:`AuditReport` describing exactly what was
    injected — by construction the ground truth that
    :func:`audit_directory` must recover.

    Determinism contract: the same clean directory + spec always produce
    byte-identical corrupted files (the RNG is seeded from the spec and
    stocks are assigned from the sorted file list).
    """
    directory = Path(directory)
    files = [
        path for path in sorted(directory.glob(pattern))
        if path.name not in exclude
    ]
    needed = len(spec.kinds) * spec.events
    if needed > len(files):
        raise DataError(
            f"corruption spec needs {needed} distinct stocks "
            f"({len(spec.kinds)} kinds x {spec.events} events) but only "
            f"{len(files)} files match {pattern!r} under {directory}"
        )
    rng = np.random.default_rng(spec.seed)
    order = rng.permutation(len(files))
    violations: list[Violation] = []
    slot = 0
    for kind in spec.kinds:
        for _ in range(spec.events):
            path = files[int(order[slot])]
            slot += 1
            violations.append(_inject_one(path, kind, rng))
    return AuditReport(violations=tuple(violations), source=str(directory))


def _inject_one(path: Path, kind: str, rng: np.random.Generator) -> Violation:
    """Inject one violation of ``kind`` into one CSV file, in place."""
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = [row for row in reader if row]
    lower = [name.lower().strip() for name in header]
    col = {name: lower.index(name) for name in ("date",) + _VALUE_COLUMNS}
    run = {"gaps": _GAP_RUN, "stale": _STALE_RUN}.get(kind, 1)
    last_start = len(rows) - _EDGE_MARGIN - run
    if last_start <= _EDGE_MARGIN:
        raise DataError(
            f"{path} has too few rows ({len(rows)}) to inject a "
            f"{kind} event"
        )
    t = int(rng.integers(_EDGE_MARGIN, last_start + 1))
    ticker = path.stem.upper()

    def scale_cell(row: list[str], name: str, factor: float) -> None:
        row[col[name]] = repr(float(row[col[name]]) * factor)

    if kind == "duplicates":
        twin = list(rows[t])
        for name in _PRICE_COLUMNS:
            scale_cell(twin, name, _CONFLICT_FACTOR)
        rows.insert(t + 1, twin)
        violation = Violation(
            kind="duplicates", ticker=ticker,
            dates=(int(float(rows[t][col["date"]])),),
            detail={"count": 2, "conflict": True},
        )
    elif kind == "gaps":
        removed = tuple(
            int(float(rows[i][col["date"]])) for i in range(t, t + run)
        )
        del rows[t:t + run]
        violation = Violation(kind="gaps", ticker=ticker, dates=removed)
    elif kind == "stale":
        frozen = tuple(
            int(float(rows[i][col["date"]])) for i in range(t, t + run)
        )
        for i in range(t + 1, t + run):
            for name in _PRICE_COLUMNS:
                rows[i][col[name]] = rows[t][col[name]]
        violation = Violation(
            kind="stale", ticker=ticker, dates=frozen,
            detail={"run": run},
        )
    elif kind == "splits":
        for row in rows[t:]:
            for name in _PRICE_COLUMNS:
                scale_cell(row, name, 1.0 / _SPLIT_FACTOR)
            scale_cell(row, "volume", _SPLIT_FACTOR)
        violation = Violation(
            kind="splits", ticker=ticker,
            dates=(int(float(rows[t][col["date"]])),),
            detail={"factor": _SPLIT_FACTOR},
        )
    elif kind == "spikes":
        for name in _PRICE_COLUMNS:
            scale_cell(rows[t], name, _SPIKE_FACTOR)
        violation = Violation(
            kind="spikes", ticker=ticker,
            dates=(int(float(rows[t][col["date"]])),),
            detail={"factor": _SPIKE_FACTOR},
        )
    else:  # pragma: no cover - guarded by CorruptionSpec validation
        raise DataError(f"unknown corruption kind {kind!r}")

    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return violation


def save_audit_report(report: AuditReport, path: str | Path) -> Path:
    """Write an audit/injection report as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report.to_json(), indent=2) + "\n")
    return path


def load_audit_report(path: str | Path) -> AuditReport:
    """Read a report written by :func:`save_audit_report`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"no such audit report: {path}")
    return AuditReport.from_json(json.loads(path.read_text()))
