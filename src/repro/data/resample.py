"""Calendar-aware resampling of daily OHLCV panels to lower frequencies.

The paper evaluates on daily bars, but the scenario suite
(:mod:`repro.scenarios`) also exercises the pipeline on weekly and monthly
bars — the "multiple relational settings" axis of the evaluation.  This
module turns a daily :class:`~repro.data.market_sim.StockPanel` into a
lower-frequency one with the standard OHLCV aggregation rules:

=========  =================================================
column     aggregation over the period
=========  =================================================
open       first day's open
high       maximum high
low        minimum low
close      last day's close
volume     sum of the daily volumes
date       last trading day of the period (the bar's stamp)
=========  =================================================

Periods are *calendar-aware*: when the panel's dates are ``YYYYMMDD``
integers (the format :mod:`repro.data.loader` produces), weekly bars group
by ISO calendar week and monthly bars by calendar month, so a holiday-
shortened week still forms exactly one bar.  Synthetic panels date their
days ``0, 1, 2, …`` (:class:`~repro.data.market_sim.SyntheticMarket`); for
those a synthetic calendar of :data:`SYNTHETIC_WEEK_DAYS`-day weeks and
:data:`SYNTHETIC_MONTH_DAYS`-day months applies.

Tickers and the sector/industry taxonomy pass through unchanged — the
relation graph is a property of the universe, not of the bar frequency.
"""

from __future__ import annotations

import datetime

import numpy as np

from ..errors import DataError
from .market_sim import StockPanel

__all__ = [
    "RESAMPLE_FREQUENCIES",
    "SYNTHETIC_MONTH_DAYS",
    "SYNTHETIC_WEEK_DAYS",
    "resample_panel",
]

#: Frequencies :func:`resample_panel` understands ("daily" is the identity).
RESAMPLE_FREQUENCIES: tuple[str, ...] = ("weekly", "monthly")

#: Trading days per week / month of the synthetic day-index calendar.
SYNTHETIC_WEEK_DAYS = 5
SYNTHETIC_MONTH_DAYS = 21

#: Smallest value treated as a ``YYYYMMDD`` date rather than a day index.
_YYYYMMDD_MIN = 1000_01_01


def _parse_yyyymmdd(value: int) -> datetime.date:
    year, rest = divmod(int(value), 10000)
    month, day = divmod(rest, 100)
    try:
        return datetime.date(year, month, day)
    except ValueError as exc:
        raise DataError(f"cannot parse date {value} as YYYYMMDD: {exc}") from exc


def period_keys(dates: np.ndarray, frequency: str) -> np.ndarray:
    """Map each date to an integer period key (equal key = same bar).

    ``dates`` may be ``YYYYMMDD`` integers (real calendars: ISO weeks /
    calendar months) or plain day indices (synthetic calendar: fixed
    5-day weeks / 21-day months).  Keys increase with time, so sorting by
    key preserves chronological order.
    """
    if frequency not in RESAMPLE_FREQUENCIES:
        raise DataError(
            f"unknown resample frequency {frequency!r}; "
            f"use one of {RESAMPLE_FREQUENCIES}"
        )
    values = np.asarray(dates)
    if values.ndim != 1 or values.size == 0:
        raise DataError("dates must be a non-empty 1-D array")
    as_int = values.astype(np.int64)
    if not np.array_equal(as_int.astype(values.dtype), values):
        raise DataError("dates must be integral (day indices or YYYYMMDD)")
    calendar_like = as_int >= _YYYYMMDD_MIN
    if calendar_like.all():
        keys = np.empty(as_int.size, dtype=np.int64)
        for i, raw in enumerate(as_int):
            day = _parse_yyyymmdd(raw)
            if frequency == "weekly":
                iso = day.isocalendar()
                keys[i] = iso[0] * 100 + iso[1]
            else:
                keys[i] = day.year * 100 + day.month
        return keys
    if calendar_like.any():
        # One stray sub-calendar value must not silently flip the whole
        # panel to day-index interpretation.
        raise DataError(
            "dates mix YYYYMMDD values and day indices; fix the out-of-range "
            f"dates (min {int(as_int.min())}, max {int(as_int.max())})"
        )
    if (as_int < 0).any():
        raise DataError("day-index dates must be non-negative")
    per = SYNTHETIC_WEEK_DAYS if frequency == "weekly" else SYNTHETIC_MONTH_DAYS
    return as_int // per


def resample_panel(panel: StockPanel, frequency: str) -> StockPanel:
    """Aggregate a daily panel into weekly or monthly bars.

    The input must be chronologically sorted (every loader in
    :mod:`repro.data` guarantees this).  Returns a new panel with one row
    per period; ``frequency`` is one of :data:`RESAMPLE_FREQUENCIES`.
    """
    # Strictly increasing dates (not just non-decreasing period keys):
    # disorder *within* a period would silently swap a bar's open/close.
    if not (np.diff(np.asarray(panel.dates).astype(np.int64)) > 0).all():
        raise DataError("panel dates must be strictly increasing before resampling")
    keys = period_keys(panel.dates, frequency)
    # Row index where each period starts (keys are sorted, so periods are
    # contiguous runs).
    starts = np.flatnonzero(np.r_[True, np.diff(keys) != 0])
    stops = np.r_[starts[1:], keys.size]

    num_periods = starts.size
    shape = (num_periods, panel.num_stocks)
    open_ = np.empty(shape)
    high = np.empty(shape)
    low = np.empty(shape)
    close = np.empty(shape)
    volume = np.empty(shape)
    dates = np.empty(num_periods, dtype=panel.dates.dtype)
    for p, (lo, hi) in enumerate(zip(starts, stops)):
        open_[p] = panel.open[lo]
        high[p] = panel.high[lo:hi].max(axis=0)
        low[p] = panel.low[lo:hi].min(axis=0)
        close[p] = panel.close[hi - 1]
        volume[p] = panel.volume[lo:hi].sum(axis=0)
        dates[p] = panel.dates[hi - 1]

    return StockPanel(
        open=open_,
        high=high,
        low=low,
        close=close,
        volume=volume,
        tickers=panel.tickers,
        dates=dates,
        taxonomy=panel.taxonomy,
    )
