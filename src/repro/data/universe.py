"""Stock-universe filtering rules from Section 5.1 of the paper.

Two types of stocks are removed before alpha mining:

1. stocks *without sufficient samples* — sparsely traded names whose prices
   only add noise to the model; we detect them through the fraction of
   zero-volume (non-traded) days and missing prices;
2. stocks *reaching too low prices* during the selected period — these are too
   risky for investors; we detect them through the minimum close price.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import UniverseError
from .market_sim import StockPanel

__all__ = ["UniverseFilter", "FilterReport"]


@dataclass(frozen=True)
class FilterReport:
    """Summary of a universe-filtering pass."""

    total_stocks: int
    kept_stocks: int
    removed_low_price: int
    removed_insufficient_samples: int
    kept_indices: np.ndarray

    @property
    def removed_stocks(self) -> int:
        """Total number of removed stocks."""
        return self.total_stocks - self.kept_stocks


@dataclass(frozen=True)
class UniverseFilter:
    """Filter a :class:`StockPanel` according to the paper's two rules.

    Parameters
    ----------
    min_price:
        Minimum close price a stock must maintain over the whole period.
        Stocks dipping below this level at any point are removed ("too risky").
    max_missing_fraction:
        Maximum tolerated fraction of non-traded days (zero volume or
        non-finite / non-positive prices).  Stocks above the threshold are
        considered to have insufficient samples.
    """

    min_price: float = 1.0
    max_missing_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.min_price < 0:
            raise UniverseError("min_price must be non-negative")
        if not (0 <= self.max_missing_fraction <= 1):
            raise UniverseError("max_missing_fraction must be within [0, 1]")

    # ------------------------------------------------------------------
    def report(self, panel: StockPanel) -> FilterReport:
        """Evaluate the filter on ``panel`` without applying it."""
        close = panel.close
        volume = panel.volume

        invalid_price = ~np.isfinite(close) | (close <= 0)
        missing = invalid_price | (volume <= 0)
        missing_fraction = missing.mean(axis=0)
        insufficient = missing_fraction > self.max_missing_fraction

        min_close = np.where(np.isfinite(close), close, np.inf).min(axis=0)
        too_low = min_close < self.min_price

        keep = ~(insufficient | too_low)
        kept_indices = np.flatnonzero(keep)
        return FilterReport(
            total_stocks=panel.num_stocks,
            kept_stocks=int(keep.sum()),
            removed_low_price=int((too_low & ~insufficient).sum()),
            removed_insufficient_samples=int(insufficient.sum()),
            kept_indices=kept_indices,
        )

    def apply(self, panel: StockPanel) -> tuple[StockPanel, FilterReport]:
        """Return a filtered panel and the accompanying report."""
        report = self.report(panel)
        if report.kept_stocks < 2:
            raise UniverseError(
                "universe filtering removed nearly all stocks "
                f"({report.kept_stocks}/{report.total_stocks} kept); relax "
                "min_price or max_missing_fraction"
            )
        return panel.select_stocks(report.kept_indices), report
