"""Unified execution-engine layer: one protocol, many backends, whole fleets.

The paper's workload is evaluating huge fleets of alpha programs under one
train/inference label-reveal protocol.  This package is where that protocol
lives — once — and where every execution path in the repository plugs in:

* :mod:`repro.engine.backends`   — the :class:`ExecutionEngine` per-day
  contract, the :class:`InterpreterBackend` reference implementation, the
  :class:`CompiledBackend` flat tape, and :func:`make_backend` (the
  ``--engine`` selector behind the CLI, :class:`EvolutionConfig` and
  :class:`~repro.core.interpreter.AlphaEvaluator`);
* :mod:`repro.engine.protocol`   — the single implementation of the
  Setup → train (Predict / label-reveal / Update) → inference day-loop,
  including the fused-inference and static-predict **time-batched** fast
  paths that collapse eligible stages into one ``(T, K, ...)`` kernel call;
* :mod:`repro.engine.incremental` — :class:`IncrementalExecutor`, one
  backend advanced one day per ``step`` with suspend/resume;
* :mod:`repro.engine.replay`     — bounded delta-replay of point
  corrections: :class:`SnapshotRing` per-day state retention plus the
  compile-time lookback bound, behind ``IncrementalExecutor.correct`` and
  the fleet's ``correct`` fan-out;
* :mod:`repro.engine.fleet`      — :class:`FleetEngine`, N programs over
  one shared :class:`~repro.core.ops.ExecutionContext` and data pass with
  canonical deduplication (behind both the search's batch scorer and the
  streaming :class:`~repro.stream.server.AlphaServer`).

Everything above this layer (evaluator, search, pool workers, streaming,
benchmarks) selects an engine by name and delegates; everything below it
(operators, IR, tapes) only ever executes one component once.  Bitwise
parity across all engines and fast paths is a hard, gated contract
(``benchmarks/bench_engine.py``).
"""

from .backends import (
    ENGINES,
    CompiledBackend,
    ExecutionEngine,
    InterpreterBackend,
    make_backend,
    resolve_engine,
)
from .fleet import (
    FleetEngine,
    FleetMember,
    evaluate_program_batch,
    stack_partition,
)
from .incremental import IncrementalExecutor
from .replay import (
    DEFAULT_UNBOUNDED_DEPTH,
    CorrectionResult,
    SnapshotRing,
    replay_correction,
    snapshot_depth_for,
)
from .protocol import (
    can_batch_training,
    inference_pass,
    run_protocol,
    stream_days,
    training_pass,
)

__all__ = [
    "DEFAULT_UNBOUNDED_DEPTH",
    "ENGINES",
    "CompiledBackend",
    "CorrectionResult",
    "ExecutionEngine",
    "FleetEngine",
    "FleetMember",
    "IncrementalExecutor",
    "InterpreterBackend",
    "SnapshotRing",
    "can_batch_training",
    "evaluate_program_batch",
    "inference_pass",
    "make_backend",
    "replay_correction",
    "resolve_engine",
    "run_protocol",
    "snapshot_depth_for",
    "stack_partition",
    "stream_days",
    "training_pass",
]
