"""Execution backends: the engine-layer contract and its implementations.

Every way this repository executes an alpha program — the reference
interpreter, the compiled flat tape, the incremental streaming executor,
whole fleets — speaks one small per-day vocabulary, the
:class:`ExecutionEngine` protocol:

``run_setup`` · ``set_input`` · ``run_predict`` · ``prediction`` ·
``set_label`` · ``run_update``

plus two capability flags (``supports_fused_inference`` /
``supports_static_predict``) and the batched kernel entry point
``run_inference_batch`` that the time-vectorised fast paths of
:mod:`repro.engine.protocol` dispatch on.  The *protocol* (which day-loop
runs, when labels are revealed) lives entirely in
:mod:`repro.engine.protocol`; backends only know how to execute one
component once.  That split is what keeps the train/inference label-reveal
protocol implemented exactly once, however many backends exist.

Two backends ship:

* :class:`InterpreterBackend` — the reference semantics: a vectorised
  :class:`~repro.core.memory.Memory` plus direct
  :class:`~repro.core.ops.OpSpec` dispatch, one operation at a time.
* :class:`CompiledBackend` — the compilation pipeline
  (:mod:`repro.compile`): flat tape, pre-resolved dispatch, preallocated
  buffers, static hoisting, fused/batched kernels and the suspend/resume
  tape protocol.  Bitwise identical to the interpreter (a hard, tested
  contract).

:func:`make_backend` is the single constructor every consumer goes through;
``--engine`` on the CLI, ``EvolutionConfig.engine`` and
``AlphaEvaluator(engine=...)`` all resolve to one of :data:`ENGINES`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..config import AddressSpace, DEFAULT_ADDRESS_SPACE
from ..core.memory import INPUT_MATRIX, LABEL, Memory, PREDICTION
from ..core.ops import ExecutionContext
from ..core.program import AlphaProgram
from ..errors import EngineError
from ..compile import CompiledAlpha, compile_program

__all__ = [
    "ENGINES",
    "ExecutionEngine",
    "InterpreterBackend",
    "CompiledBackend",
    "make_backend",
    "resolve_engine",
]

#: The selectable execution engines, in reference-first order.
ENGINES = ("interpreter", "compiled")


def resolve_engine(engine: str | None = None,
                   compiled: bool | None = None) -> str:
    """Resolve an engine name from the new-style and legacy selectors.

    ``engine`` (a name from :data:`ENGINES`) wins when given; otherwise the
    historical ``compiled`` flag maps ``True`` → ``"compiled"`` and
    ``False`` → ``"interpreter"``; with neither, the default is
    ``"compiled"``.
    """
    if engine is not None:
        if engine not in ENGINES:
            raise EngineError(
                f"unknown execution engine {engine!r}; choose from "
                + ", ".join(ENGINES)
            )
        return engine
    if compiled is None:
        return "compiled"
    return "compiled" if compiled else "interpreter"


@runtime_checkable
class ExecutionEngine(Protocol):
    """The per-day execution contract every backend implements.

    The protocol deliberately contains no loops: the day-loop (and the
    label-reveal ordering that defines the paper's training/inference
    protocol) is implemented once in :mod:`repro.engine.protocol` and
    drives any object that satisfies this interface — single programs,
    compiled tapes, or whole fleets.
    """

    def run_setup(self) -> None:
        """Run ``Setup()`` once (plus any backend-private prologue)."""

    def set_input(self, features: np.ndarray) -> None:
        """Load one day's ``(K, f, w)`` feature matrices into ``m0``."""

    def run_predict(self) -> None:
        """Run ``Predict()`` for the current day."""

    @property
    def prediction(self) -> np.ndarray:
        """The ``(K,)`` prediction left by the last ``run_predict``."""

    def set_label(self, labels: np.ndarray) -> None:
        """Reveal one day's realised ``(K,)`` labels into ``s0``."""

    def run_update(self) -> None:
        """Run ``Update()`` for the current day."""

    @property
    def supports_fused_inference(self) -> bool:
        """Whether the inference stage may run as one batched tape pass."""

    @property
    def supports_static_predict(self) -> bool:
        """Whether the whole ``Predict()`` tape is day-loop invariant.

        True when ``Predict()`` depends on no ``Update()``-carried state
        (nor the label, nor its own writes), so *training-stage*
        predictions may also be computed in one ``(T, K, ...)`` kernel
        call — see :func:`repro.engine.protocol.training_pass`.
        """

    def run_inference_batch(self, features: np.ndarray) -> np.ndarray:
        """Predict ``(D, K, f, w)`` days in one vectorised kernel call."""


class InterpreterBackend:
    """The reference backend: vectorised memory + per-operation dispatch.

    Executes exactly what the historical interpreter loop of
    :class:`~repro.core.interpreter.AlphaEvaluator` executed — every
    operation reads operand arrays from a :class:`~repro.core.memory.Memory`
    and writes its (sanitised) result back — and defines the semantics all
    other backends are asserted bitwise identical to.
    """

    #: The interpreter never batches: it is the reference day loop.
    supports_fused_inference = False
    supports_static_predict = False

    def __init__(
        self,
        program: AlphaProgram,
        ctx: ExecutionContext,
        address_space: AddressSpace = DEFAULT_ADDRESS_SPACE,
    ) -> None:
        program.validate(address_space)
        self.program = program
        self.ctx = ctx
        self._memory = Memory(
            num_tasks=ctx.num_tasks,
            num_features=ctx.num_features,
            window=ctx.window,
            address_space=address_space,
        )
        self._tapes = {
            name: [(op.spec, op.inputs, op.output, op.param_dict)
                   for op in operations]
            for name, operations in program.components().items()
        }

    # ------------------------------------------------------------------
    def _execute(self, tape) -> None:
        memory = self._memory
        ctx = self.ctx
        for spec, inputs, output, params in tape:
            arrays = tuple(memory.read(operand) for operand in inputs)
            memory.write(output, spec(ctx, arrays, params))

    def run_setup(self) -> None:
        """Run ``Setup()`` once."""
        self._execute(self._tapes["setup"])

    def run_predict(self) -> None:
        """Run ``Predict()`` for the current day."""
        self._execute(self._tapes["predict"])

    def run_update(self) -> None:
        """Run ``Update()`` for the current day."""
        self._execute(self._tapes["update"])

    def set_input(self, features: np.ndarray) -> None:
        """Load one day's feature matrices into ``m0``."""
        self._memory.write(INPUT_MATRIX, features)

    def set_label(self, labels: np.ndarray) -> None:
        """Reveal one day's labels into ``s0``."""
        self._memory.write(LABEL, labels)

    @property
    def prediction(self) -> np.ndarray:
        """The ``(K,)`` prediction left by the last ``run_predict``."""
        return self._memory.read(PREDICTION)

    def run_inference_batch(self, features: np.ndarray) -> np.ndarray:
        """The interpreter has no batched kernels — always loop over days."""
        raise EngineError(
            "the interpreter backend does not batch over days; "
            "drive it through the day loop"
        )


class CompiledBackend(CompiledAlpha):
    """The compiled flat-tape backend, constructed straight from a program.

    A thin constructor over :class:`~repro.compile.executor.CompiledAlpha`
    (which already satisfies :class:`ExecutionEngine`): it validates the
    program and runs the execution compilation pipeline, so callers that
    hold an :class:`~repro.core.program.AlphaProgram` need not touch
    :mod:`repro.compile` directly.  Adds nothing else — the tape executor
    *is* the backend.
    """

    def __init__(
        self,
        program: AlphaProgram,
        ctx: ExecutionContext,
        address_space: AddressSpace = DEFAULT_ADDRESS_SPACE,
    ) -> None:
        program.validate(address_space)
        super().__init__(compile_program(program), ctx)


#: Engine name → backend class.
_BACKENDS = {
    "interpreter": InterpreterBackend,
    "compiled": CompiledBackend,
}


def make_backend(
    program: AlphaProgram,
    ctx: ExecutionContext,
    engine: str = "compiled",
    address_space: AddressSpace = DEFAULT_ADDRESS_SPACE,
) -> ExecutionEngine:
    """Build the backend named ``engine`` for ``program`` bound to ``ctx``."""
    return _BACKENDS[resolve_engine(engine)](program, ctx, address_space)
