"""Fleet execution: N programs, one shared context, one data pass.

Two workloads in this repository evaluate *many* programs against the same
task set — the search scoring candidate batches, and the server fanning an
arriving bar across its registered alphas.  Both used to own their fan-out;
:class:`FleetEngine` is the one engine-layer implementation they now share:

* **canonical deduplication** — members are fingerprinted on their pruned
  canonical IR (the same prune → :func:`repro.core.cache.fingerprint` flow
  the search cache uses), so trivially equivalent programs — mirrored
  commutative operands, renamed registers, duplicated subexpressions —
  share one backend and are executed once, however many names point at
  them;
* **one shared** :class:`~repro.core.ops.ExecutionContext` — contexts are
  read-only during execution (initialiser operators derive their RNGs from
  their own parameters), so the whole fleet binds to a single context
  object instead of building one per program;
* **one shared data pass** — the split feature/label panels and the
  training-day subsample are resolved once per fleet call, not once per
  program, and every member runs under the single protocol implementation
  of :mod:`repro.engine.protocol` (including its static-predict
  time-batched fast path).

Offline, :meth:`run` / :meth:`evaluate` replace looping a fresh
:class:`~repro.core.interpreter.AlphaEvaluator` over the programs; online,
:meth:`warm_start` / :meth:`step_bar` / :meth:`reveal` back
:class:`repro.stream.server.AlphaServer`.  Results are bitwise identical
to the per-program paths in both modes (a tested contract).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cache import fingerprint
from ..core.program import AlphaProgram
from ..core.pruning import prune_program
from ..errors import StreamError
from .backends import make_backend, resolve_engine
from .incremental import IncrementalExecutor
from .protocol import run_protocol

__all__ = ["FleetMember", "FleetEngine"]


@dataclass(frozen=True)
class FleetMember:
    """One registered fleet name and where its predictions come from."""

    name: str
    #: Canonical-IR fingerprint of the (pruned) program — or a positional
    #: key when the fleet was built with ``dedup=False``.
    key: str
    #: Whether this name shares a previously added member's backend.
    deduplicated: bool
    #: Whether pruning proved the prediction independent of the input
    #: matrix (the member still executes, but a constant is all it can
    #: emit).
    redundant: bool


class FleetEngine:
    """Executes a fleet of programs over one shared context and data pass.

    Parameters
    ----------
    evaluator:
        The paired :class:`~repro.core.interpreter.AlphaEvaluator`: source
        of the task set, the execution contexts, the training-day subsample
        and the scoring — which is what keeps fleet results bitwise
        identical to per-program evaluation.
    engine:
        Backend selection for every member (defaults to the evaluator's).
    dedup:
        Whether members are canonically fingerprinted and deduplicated.
        The scorer disables this: its cache layer already decides which
        candidates share an evaluation, and the pruning-disabled ablation
        must not dedup behind its back.
    """

    def __init__(self, evaluator, engine: str | None = None,
                 dedup: bool = True) -> None:
        self.evaluator = evaluator
        self.engine_name = resolve_engine(
            engine if engine is not None else getattr(evaluator, "engine", None)
        )
        self.dedup = bool(dedup)
        self.members: list[FleetMember] = []
        self._by_name: dict[str, str] = {}
        #: name → the program registered under that name (deduplicated
        #: names *execute* through the representative's backend, but keep
        #: their own program for result attribution).
        self._program_by_name: dict[str, AlphaProgram] = {}
        #: key → representative program, in registration order.
        self._programs: dict[str, AlphaProgram] = {}
        #: key → serving executor (built lazily on warm_start/resume).
        self._executors: dict[str, IncrementalExecutor] = {}
        self._ctx = None
        self._warmed = False

    # ------------------------------------------------------------------
    @classmethod
    def from_backend(
        cls,
        backend,
        programs=(),
        split=None,
        seed: int | None = 0,
        max_train_steps: int | None = None,
        engine: str | None = None,
        dedup: bool = True,
    ) -> "FleetEngine":
        """Build a fleet straight from a :class:`~repro.data.DataBackend`.

        Loads the backend's panel, builds the task set (optionally under an
        explicit ``split``) and the paired evaluator, and registers
        ``programs`` — the shortest path from *any* data source (synthetic,
        file-backed, resampled) to a runnable fleet.  Execution contexts
        are therefore built from the backend's data, never hand-assembled.
        """
        # Imported lazily: repro.core.interpreter imports this package.
        from ..core.interpreter import AlphaEvaluator

        taskset = backend.build_taskset(split=split)
        evaluator = AlphaEvaluator(
            taskset, seed=seed, max_train_steps=max_train_steps, engine=engine
        )
        fleet = cls(evaluator, engine=engine, dedup=dedup)
        for program in programs:
            fleet.add(program)
        return fleet

    # ------------------------------------------------------------------
    @property
    def taskset(self):
        """The task set the fleet executes against."""
        return self.evaluator.taskset

    @property
    def num_members(self) -> int:
        """Number of registered member names."""
        return len(self.members)

    @property
    def num_unique(self) -> int:
        """Number of distinct backends behind those names."""
        return len(self._programs)

    @property
    def names(self) -> list[str]:
        """Member names, in registration order."""
        return [member.name for member in self.members]

    @property
    def is_warm(self) -> bool:
        """Whether the fleet has been warm-started (or resumed)."""
        return self._warmed

    @property
    def executors(self) -> dict[str, IncrementalExecutor]:
        """key → serving executor (one per unique program).

        Empty until :meth:`warm_start` or :meth:`resume_tapes` builds the
        backends — reading this never triggers compilation as a side
        effect.
        """
        return self._executors

    # ------------------------------------------------------------------
    def add(self, program: AlphaProgram, name: str | None = None) -> FleetMember:
        """Register ``program`` under ``name`` and return its membership.

        With deduplication on, a program whose canonical-IR fingerprint
        matches an already added one shares that backend
        (``deduplicated=True``): it executes once per day/evaluation and
        both names receive the same predictions.
        """
        if self._warmed:
            raise StreamError("cannot add members to a warm fleet; "
                              "register the whole fleet first")
        name = name or program.name
        if name in self._by_name:
            raise StreamError(f"fleet member {name!r} is already registered")
        # Fail at registration time, naming the offending alpha — not later,
        # mid-fleet, when warm_start builds the backends.  (Backends validate
        # again at construction; validation is a handful of integer checks,
        # negligible next to one day of execution.)
        program.validate(self.evaluator.address_space)
        if self.dedup:
            prune_result = prune_program(program)
            key = fingerprint(prune_result.program)
            redundant = prune_result.is_redundant
        else:
            key = f"member-{len(self.members)}"
            redundant = False
        deduplicated = key in self._programs
        if not deduplicated:
            self._programs[key] = program
        member = FleetMember(
            name=name, key=key,
            deduplicated=deduplicated, redundant=redundant,
        )
        self.members.append(member)
        self._by_name[name] = key
        self._program_by_name[name] = program
        return member

    def key_of(self, name: str) -> str:
        """The backend key serving ``name``."""
        return self._by_name[name]

    # ------------------------------------------------------------------
    # Offline: one-shot batch evaluation over a shared data pass
    # ------------------------------------------------------------------
    def run(
        self,
        splits: tuple[str, ...] = ("valid", "test"),
        use_update: bool | None = None,
        time_batched: bool | None = None,
    ) -> dict[str, dict[str, np.ndarray]]:
        """Run the full protocol for every member; name → split → ``(D, K)``.

        One fresh shared context and one training-day subsample serve the
        whole call; each *unique* program gets a fresh backend (repeatable,
        independent of any serving state) and deduplicated names reference
        the representative's prediction panels.  ``use_update`` and
        ``time_batched`` default to the paired evaluator's settings.
        """
        evaluator = self.evaluator
        use_update = evaluator.use_update if use_update is None else use_update
        if time_batched is None:
            time_batched = getattr(evaluator, "time_batched", True)
        ctx = evaluator.make_context()
        day_indices = evaluator.train_day_indices()
        by_key = {
            key: run_protocol(
                make_backend(program, ctx, engine=self.engine_name,
                             address_space=evaluator.address_space),
                self.taskset,
                splits=splits,
                day_indices=day_indices,
                use_update=use_update,
                time_batched=time_batched,
            )
            for key, program in self._programs.items()
        }
        return {member.name: by_key[member.key] for member in self.members}

    def evaluate(
        self,
        use_update: bool | None = None,
        time_batched: bool | None = None,
    ) -> dict[str, "EvaluationResult"]:  # noqa: F821 - documented type
        """Score every member; name → :class:`~repro.core.interpreter.EvaluationResult`.

        The splits and the scoring are the evaluator's own
        (:meth:`~repro.core.interpreter.AlphaEvaluator.score`), so a fleet
        evaluation of ``[p]`` equals ``evaluator.evaluate(p)`` bit for bit.
        """
        evaluator = self.evaluator
        splits: tuple[str, ...] = (
            ("valid", "test") if evaluator.evaluate_test else ("valid",)
        )
        runs = self.run(splits=splits, use_update=use_update,
                        time_batched=time_batched)
        # Each result is attributed to the program registered under that
        # name, not the deduplicated representative it executed through.
        return {
            name: evaluator.score(self._program_by_name[name], predictions)
            for name, predictions in runs.items()
        }

    # ------------------------------------------------------------------
    # Online: stateful day-major serving (behind AlphaServer)
    # ------------------------------------------------------------------
    def _ensure_executors(self) -> None:
        if len(self._executors) == len(self._programs):
            return
        if self._ctx is None:
            self._ctx = self.evaluator.make_context()
        for key, program in self._programs.items():
            if key not in self._executors:
                self._executors[key] = IncrementalExecutor(
                    program,
                    backend=make_backend(
                        program, self._ctx, engine=self.engine_name,
                        address_space=self.evaluator.address_space,
                    ),
                )

    def warm_start(self, use_update: bool | None = None) -> None:
        """Set up and train every unique backend over the training split.

        Replays exactly the evaluator's training stage — same feature
        tensors, same ``max_train_steps`` day subsample, same label-reveal
        ordering (via the shared
        :func:`repro.engine.protocol.training_pass`) — once per unique
        backend.
        """
        if self._warmed:
            raise StreamError("fleet is already warm")
        if not self._programs:
            raise StreamError("no members registered; nothing to warm-start")
        evaluator = self.evaluator
        use_update = evaluator.use_update if use_update is None else use_update
        self._ensure_executors()
        features = self.taskset.split_features("train")
        labels = self.taskset.split_labels("train")
        day_indices = evaluator.train_day_indices()
        for executor in self._executors.values():
            executor.warm_start(
                features, labels, day_indices=day_indices,
                use_update=use_update,
            )
        self._warmed = True

    def step_bar(self, features: np.ndarray) -> dict[str, np.ndarray]:
        """Advance every unique backend one day; key → ``(K,)`` prediction."""
        if not self._warmed:
            raise StreamError("fleet must be warm-started (or resumed) "
                              "before serving bars")
        return {
            key: executor.step(features)
            for key, executor in self._executors.items()
        }

    def reveal(self, labels: np.ndarray) -> None:
        """Reveal the last bar's realised labels to every unique backend."""
        for executor in self._executors.values():
            executor.reveal(labels)

    def suspend_tapes(self) -> dict[str, object]:
        """key → suspended tape state of every unique backend."""
        if not self._warmed:
            raise StreamError("cannot suspend a fleet that was never warmed")
        return {
            key: executor.suspend()
            for key, executor in self._executors.items()
        }

    def resume_tapes(self, tapes: dict[str, object],
                     days_served: int = 0) -> None:
        """Restore :meth:`suspend_tapes` output into this (fresh) fleet."""
        if self._warmed:
            raise StreamError("cannot resume into a fleet that already ran")
        self._ensure_executors()
        for key, executor in self._executors.items():
            executor.resume(tapes[key], days_served=days_served)
        self._warmed = True
