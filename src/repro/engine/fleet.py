"""Fleet execution: N programs, one shared context, one data pass.

Two workloads in this repository evaluate *many* programs against the same
task set — the search scoring candidate batches, and the server fanning an
arriving bar across its registered alphas.  Both used to own their fan-out;
:class:`FleetEngine` is the one engine-layer implementation they now share:

* **canonical deduplication** — members are fingerprinted on their pruned
  canonical IR (the same prune → :func:`repro.core.cache.fingerprint` flow
  the search cache uses), so trivially equivalent programs — mirrored
  commutative operands, renamed registers, duplicated subexpressions —
  share one backend and are executed once, however many names point at
  them;
* **one shared** :class:`~repro.core.ops.ExecutionContext` — contexts are
  read-only during execution (initialiser operators derive their RNGs from
  their own parameters), so the whole fleet binds to a single context
  object instead of building one per program;
* **one shared data pass** — the split feature/label panels and the
  training-day subsample are resolved once per fleet call, not once per
  program, and every member runs under the single protocol implementation
  of :mod:`repro.engine.protocol` (including its static-predict
  time-batched fast path);
* **cross-program mega-batching** — after dedup, the surviving unique
  programs are grouped by :func:`~repro.compile.stacked.stack_signature`
  (same opcode sequence and SSA wiring; parameter values free to differ)
  and every group of two or more executes as **one**
  :class:`~repro.compile.stacked.StackedAlpha` tape whose state carries a
  leading program axis — one batched ``(P, T, K, ...)`` kernel call per
  instruction offline, one ``(P, K, ...)`` call per bar online, instead of
  P separate tape walks.  Mining fleets are near-duplicate-heavy by
  construction, so most of a candidate generation lands in a few groups.

Offline, :meth:`run` / :meth:`evaluate` replace looping a fresh
:class:`~repro.core.interpreter.AlphaEvaluator` over the programs; online,
:meth:`warm_start` / :meth:`step_bar` / :meth:`reveal` back
:class:`repro.stream.server.AlphaServer`.  Results are bitwise identical
to the per-program paths in both modes and with stacking on or off (a
tested contract — stacked entries are restricted to the same
elementwise-exact kernel registry the fused day path trusts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compile import (
    CompiledAlpha, StackedAlpha, compile_program, stack_signature,
)
from ..core.cache import fingerprint
from ..core.program import AlphaProgram
from ..core.pruning import prune_program
from ..errors import StreamError
from ..obs import TELEMETRY
from .backends import make_backend, resolve_engine
from .incremental import IncrementalExecutor
from .protocol import run_protocol, training_pass
from .replay import (
    CorrectionResult, SnapshotRing, replay_correction, snapshot_depth_for,
)

__all__ = [
    "FleetMember",
    "FleetEngine",
    "evaluate_program_batch",
    "stack_partition",
]


# ----------------------------------------------------------------------
# Signature-grouped batch entry points (the worker-pool dispatch surface)
# ----------------------------------------------------------------------
def stack_partition(programs, engine: str | None = "compiled") -> list[list[int]]:
    """Partition ``programs`` into stack-signature groups of indices.

    The dispatch planner of the shared-memory worker pool: programs whose
    compiled tapes share a :func:`~repro.compile.stacked.stack_signature`
    land in one group (first-appearance order), so a batch cut from a
    single group executes worker-side as **one**
    :class:`~repro.compile.stacked.StackedAlpha` tape instead of a
    per-candidate loop.  Under the interpreter engine there is no tape to
    stack and every program lands in one group.
    """
    programs = list(programs)
    if resolve_engine(engine) != "compiled" or len(programs) < 2:
        return [list(range(len(programs)))] if programs else []
    groups: dict[str, list[int]] = {}
    for index, program in enumerate(programs):
        signature = stack_signature(compile_program(program))
        groups.setdefault(signature, []).append(index)
    return list(groups.values())


def evaluate_program_batch(evaluator, programs, stacked: bool | None = None):
    """Evaluate ``programs`` as one fleet over a shared context/data pass.

    Returns one :class:`~repro.core.interpreter.EvaluationResult` per
    program, in input order.  Deduplication stays off — callers (the
    scorer's cache, the pool's dispatch planner) already decided which
    programs to run — while stacking (on by default under the compiled
    engine) executes each signature group as a single stacked tape.  This
    is the one evaluation entry point shared by the serial scorer and the
    pool workers, which is what keeps pooled results bitwise identical to
    serial ones.
    """
    fleet = FleetEngine(evaluator, dedup=False, stacked=stacked)
    for index, program in enumerate(programs):
        fleet.add(program, name=f"batch-{index}")
    results = fleet.evaluate()
    return [results[f"batch-{index}"] for index in range(len(programs))]


@dataclass(frozen=True)
class FleetMember:
    """One registered fleet name and where its predictions come from."""

    name: str
    #: Canonical-IR fingerprint of the (pruned) program — or a positional
    #: key when the fleet was built with ``dedup=False``.
    key: str
    #: Whether this name shares a previously added member's backend.
    deduplicated: bool
    #: Whether pruning proved the prediction independent of the input
    #: matrix (the member still executes, but a constant is all it can
    #: emit).
    redundant: bool


class _SingleUnit:
    """Serving unit for a key whose signature matched no other member."""

    def __init__(self, key: str, executor: IncrementalExecutor) -> None:
        self.key = key
        self.executor = executor

    def warm_start(self, features, labels, day_indices=None,
                   use_update=True) -> None:
        self.executor.warm_start(
            features, labels, day_indices=day_indices, use_update=use_update
        )

    def step_bar(self, features) -> dict[str, np.ndarray]:
        return {self.key: self.executor.step(features)}

    def reveal(self, labels) -> None:
        self.executor.reveal(labels)

    def suspend(self) -> dict[str, object]:
        return {self.key: self.executor.suspend()}

    def resume(self, tapes: dict[str, object], days_served: int = 0) -> None:
        self.executor.resume(tapes[self.key], days_served=days_served)

    def correct(self, day, features, labels) -> dict[str, CorrectionResult]:
        return {self.key: self.executor.correct(day, features, labels)}

    def replay_states(self) -> dict[str, dict]:
        return {self.key: self.executor.replay_state()}

    def restore_replay_states(self, payloads: dict[str, dict]) -> None:
        payload = payloads.get(self.key)
        if payload is not None:
            self.executor.restore_replay_state(payload)

    def views(self) -> dict[str, object]:
        return {self.key: self.executor}


class _StackedUnit:
    """Serving unit for one signature group: P lanes, one stacked tape.

    Mirrors :class:`~repro.engine.incremental.IncrementalExecutor`'s
    step/reveal contract (including the pending-label guards) around a
    :class:`~repro.compile.stacked.StackedAlpha`, scattering the ``(P, K)``
    per-bar prediction back to the group's member keys.
    """

    def __init__(self, keys, backend: StackedAlpha) -> None:
        self.keys = list(keys)
        self.backend = backend
        self.days_served = 0
        self._warmed = False
        self._awaiting_label = False
        self._reported_kernel_calls = 0
        # Delta-replay state.  Signature groups share opcode sequence and
        # SSA wiring, so every lane has the template's lookback structure;
        # ring entries hold the whole group's per-lane tape states at once.
        self._lookback = backend.group[0].lookback
        self._ring: SnapshotRing | None = None
        self._anchor: tuple[int, dict[str, object]] | None = None

    @property
    def max_lookback(self) -> int | None:
        return None if self._lookback is None else self._lookback.max_lookback

    def _suspend_states(self) -> dict[str, object]:
        return {
            key: self.backend.suspend_member(lane)
            for lane, key in enumerate(self.keys)
        }

    def _restore_states(self, states: dict[str, object]) -> None:
        self.backend.resume([states[key] for key in self.keys])

    def _ensure_ring(self) -> SnapshotRing:
        if self._ring is None:
            self._ring = SnapshotRing(snapshot_depth_for(self.max_lookback))
        return self._ring

    @property
    def is_warm(self) -> bool:
        return self._warmed

    def warm_start(self, features, labels, day_indices=None,
                   use_update=True) -> None:
        if self._warmed:
            raise StreamError("stacked group is already warm")
        self.backend.run_setup()
        # Day loop, exactly as IncrementalExecutor: the suspended operand
        # state must evolve as a live process's would — the stacking win is
        # one (P, K, ...) call per instruction per day instead of P walks.
        training_pass(
            self.backend, features, labels,
            day_indices=day_indices, use_update=use_update,
        )
        self._warmed = True
        self._anchor = (0, self._suspend_states())

    def step_bar(self, features) -> dict[str, np.ndarray]:
        if self._awaiting_label:
            raise StreamError("previous day's label was never revealed; "
                              "call reveal() between steps")
        backend = self.backend
        backend.set_input(features)
        backend.run_predict()
        self.days_served += 1
        self._awaiting_label = True
        prediction = backend.prediction
        return {
            key: prediction[lane].copy()
            for lane, key in enumerate(self.keys)
        }

    def reveal(self, labels) -> None:
        if not self._awaiting_label:
            raise StreamError("no prediction is pending a label; "
                              "call step() first")
        self.backend.set_label(labels)
        self._awaiting_label = False
        self._ensure_ring().push(self.days_served, self._suspend_states())

    def correct(self, day, features, labels) -> dict[str, CorrectionResult]:
        """Delta-replay a correction once for the whole group.

        One bounded replay of the stacked tape serves every lane; the
        ``(R, P, K)`` corrected prediction block is scattered back to the
        member keys, exactly as :meth:`step_bar` scatters live bars.
        """
        if not self._warmed:
            raise StreamError("stacked group must be warm-started (or "
                              "resumed) before it can correct days")
        if self._awaiting_label:
            raise StreamError("previous day's label was never revealed; "
                              "reveal it before correcting history")
        result = replay_correction(
            self.backend, day, features, labels,
            days_served=self.days_served,
            max_lookback=self.max_lookback,
            ring=self._ensure_ring(),
            anchor=self._anchor,
            take_snapshot=self._suspend_states,
            restore_snapshot=self._restore_states,
            what=f"stacked group of {len(self.keys)}",
        )
        return {
            key: CorrectionResult(
                day=result.day,
                start_day=result.start_day,
                mode=result.mode,
                replayed_days=result.replayed_days,
                predictions=np.ascontiguousarray(
                    result.predictions[:, lane]
                ),
            )
            for lane, key in enumerate(self.keys)
        }

    def replay_states(self) -> dict[str, dict]:
        """Per-key delta-replay payloads (solo-compatible tape states)."""
        entries = self._ring.entries() if self._ring is not None else ()
        payloads: dict[str, dict] = {}
        for key in self.keys:
            anchor = None
            if self._anchor is not None:
                anchor = (self._anchor[0], self._anchor[1][key])
            payloads[key] = {
                "anchor": anchor,
                "entries": tuple(
                    (day, states[key]) for day, states in entries
                ),
            }
        return payloads

    def restore_replay_states(self, payloads: dict[str, dict]) -> None:
        """Regroup per-key payloads into group-wide ring entries.

        Only anchor/ring days retained for *every* lane are restored — a
        group snapshot needs all lanes at the same day.
        """
        mine = [payloads.get(key) for key in self.keys]
        if any(payload is None for payload in mine):
            return
        anchors = [payload.get("anchor") for payload in mine]
        if all(anchor is not None for anchor in anchors):
            days = {int(anchor[0]) for anchor in anchors}
            if len(days) == 1:
                self._anchor = (
                    days.pop(),
                    {key: anchor[1]
                     for key, anchor in zip(self.keys, anchors)},
                )
        by_day: dict[int, dict[str, object]] = {}
        for key, payload in zip(self.keys, mine):
            for day, state in payload.get("entries") or ():
                by_day.setdefault(int(day), {})[key] = state
        complete = [
            (day, states) for day, states in sorted(by_day.items())
            if len(states) == len(self.keys)
        ]
        if complete:
            self._ring = SnapshotRing(
                snapshot_depth_for(self.max_lookback), complete
            )

    def suspend(self) -> dict[str, object]:
        if self._awaiting_label:
            raise StreamError("cannot suspend between step() and reveal(); "
                              "reveal the pending label first")
        return {
            key: self.backend.suspend_member(lane)
            for lane, key in enumerate(self.keys)
        }

    def resume(self, tapes: dict[str, object], days_served: int = 0) -> None:
        if self._warmed:
            raise StreamError("cannot resume into a stacked group that "
                              "already ran")
        self.backend.resume([tapes[key] for key in self.keys])
        self.days_served = int(days_served)
        self._warmed = True
        # The resumed per-lane states form a clean group snapshot entering
        # this day (restore_replay_states may still supply the day-0 one).
        self._anchor = (
            self.days_served, {key: tapes[key] for key in self.keys}
        )

    def drain_kernel_calls(self) -> int:
        """Batched kernel calls issued since the last drain (telemetry)."""
        total = self.backend.kernel_calls
        delta = total - self._reported_kernel_calls
        self._reported_kernel_calls = total
        return delta

    def views(self) -> dict[str, object]:
        return {
            key: _StackedLane(self, lane)
            for lane, key in enumerate(self.keys)
        }


class _StackedLane:
    """Per-key executor view of one lane of a :class:`_StackedUnit`.

    Presents the :class:`~repro.engine.incremental.IncrementalExecutor`
    read surface (``is_warm`` / ``days_served`` / ``suspend``) for one
    member of a stacked group, so fleet consumers that inspect
    :attr:`FleetEngine.executors` see the same shape whether or not the
    key's program was stacked.
    """

    def __init__(self, unit: _StackedUnit, lane: int) -> None:
        self._unit = unit
        self._lane = lane

    @property
    def program(self) -> AlphaProgram:
        return self._unit.backend.group[self._lane].program

    @property
    def is_warm(self) -> bool:
        return self._unit.is_warm

    @property
    def days_served(self) -> int:
        return self._unit.days_served

    def suspend(self):
        """This lane's :class:`~repro.compile.executor.TapeState`."""
        if self._unit._awaiting_label:
            raise StreamError("cannot suspend between step() and reveal(); "
                              "reveal the pending label first")
        return self._unit.backend.suspend_member(self._lane)


class FleetEngine:
    """Executes a fleet of programs over one shared context and data pass.

    Parameters
    ----------
    evaluator:
        The paired :class:`~repro.core.interpreter.AlphaEvaluator`: source
        of the task set, the execution contexts, the training-day subsample
        and the scoring — which is what keeps fleet results bitwise
        identical to per-program evaluation.
    engine:
        Backend selection for every member (defaults to the evaluator's).
    dedup:
        Whether members are canonically fingerprinted and deduplicated.
        The scorer disables this: its cache layer already decides which
        candidates share an evaluation, and the pruning-disabled ablation
        must not dedup behind its back.
    stacked:
        Whether unique programs sharing a tape signature execute as one
        stacked ``(P, ...)`` tape.  Defaults on for the compiled engine
        (the interpreter has no tape to stack).  Stacking never changes a
        bit of any result — it only changes how many NumPy calls produce
        them — and unlike ``dedup`` it is safe under the scorer, since
        every member keeps its own lane, parameters and score.
    program_chunk:
        Program-axis chunking for matrix-heavy stacked kernels, passed
        through to :class:`~repro.compile.stacked.StackedAlpha`: ``None``
        derives a cache-resident chunk automatically, ``0`` disables
        chunking, a positive int forces that chunk size.  Bitwise-neutral
        either way.
    """

    def __init__(self, evaluator, engine: str | None = None,
                 dedup: bool = True, stacked: bool | None = None,
                 program_chunk: int | None = None) -> None:
        self.evaluator = evaluator
        self.program_chunk = program_chunk
        self.engine_name = resolve_engine(
            engine if engine is not None else getattr(evaluator, "engine", None)
        )
        self.dedup = bool(dedup)
        if stacked is None:
            stacked = self.engine_name == "compiled"
        self.stacked = bool(stacked) and self.engine_name == "compiled"
        self.members: list[FleetMember] = []
        self._by_name: dict[str, str] = {}
        #: name → the program registered under that name (deduplicated
        #: names *execute* through the representative's backend, but keep
        #: their own program for result attribution).
        self._program_by_name: dict[str, AlphaProgram] = {}
        #: key → representative program, in registration order.
        self._programs: dict[str, AlphaProgram] = {}
        #: key → serving executor view (built lazily on warm_start/resume).
        self._executors: dict[str, object] = {}
        #: Serving units: one per stacked signature group or unmatched key.
        self._units: list[object] = []
        self._ctx = None
        self._warmed = False
        self._stack_group_count: int | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_backend(
        cls,
        backend,
        programs=(),
        split=None,
        seed: int | None = 0,
        max_train_steps: int | None = None,
        engine: str | None = None,
        dedup: bool = True,
        stacked: bool | None = None,
    ) -> "FleetEngine":
        """Build a fleet straight from a :class:`~repro.data.DataBackend`.

        Loads the backend's panel, builds the task set (optionally under an
        explicit ``split``) and the paired evaluator, and registers
        ``programs`` — the shortest path from *any* data source (synthetic,
        file-backed, resampled) to a runnable fleet.  Execution contexts
        are therefore built from the backend's data, never hand-assembled.
        """
        # Imported lazily: repro.core.interpreter imports this package.
        from ..core.interpreter import AlphaEvaluator

        taskset = backend.build_taskset(split=split)
        evaluator = AlphaEvaluator(
            taskset, seed=seed, max_train_steps=max_train_steps, engine=engine
        )
        fleet = cls(evaluator, engine=engine, dedup=dedup, stacked=stacked)
        for program in programs:
            fleet.add(program)
        return fleet

    # ------------------------------------------------------------------
    @property
    def taskset(self):
        """The task set the fleet executes against."""
        return self.evaluator.taskset

    @property
    def num_members(self) -> int:
        """Number of registered member names."""
        return len(self.members)

    @property
    def num_unique(self) -> int:
        """Number of distinct backends behind those names."""
        return len(self._programs)

    @property
    def names(self) -> list[str]:
        """Member names, in registration order."""
        return [member.name for member in self.members]

    @property
    def is_warm(self) -> bool:
        """Whether the fleet has been warm-started (or resumed)."""
        return self._warmed

    @property
    def executors(self) -> dict[str, object]:
        """key → serving executor view (one per unique program).

        Unstacked keys map to their
        :class:`~repro.engine.incremental.IncrementalExecutor`; keys served
        through a stacked group map to a per-lane view with the same read
        surface (``is_warm`` / ``days_served`` / ``suspend``).  Empty until
        :meth:`warm_start` or :meth:`resume_tapes` builds the backends —
        reading this never triggers compilation as a side effect.
        """
        return self._executors

    @property
    def stack_groups(self) -> int:
        """Number of ≥2-member signature groups behind the unique programs.

        Zero when stacking is off (or the fleet is empty); computed from
        the registered programs, so it is valid before and after
        warm-start.
        """
        if not self.stacked or not self._programs:
            return 0
        if self._stack_group_count is None:
            groups = self._signature_groups()[1]
            self._stack_group_count = sum(
                1 for group in groups if len(group) >= 2
            )
        return self._stack_group_count

    # ------------------------------------------------------------------
    def add(self, program: AlphaProgram, name: str | None = None) -> FleetMember:
        """Register ``program`` under ``name`` and return its membership.

        With deduplication on, a program whose canonical-IR fingerprint
        matches an already added one shares that backend
        (``deduplicated=True``): it executes once per day/evaluation and
        both names receive the same predictions.
        """
        if self._warmed:
            raise StreamError("cannot add members to a warm fleet; "
                              "register the whole fleet first")
        name = name or program.name
        if name in self._by_name:
            raise StreamError(f"fleet member {name!r} is already registered")
        # Fail at registration time, naming the offending alpha — not later,
        # mid-fleet, when warm_start builds the backends.  (Backends validate
        # again at construction; validation is a handful of integer checks,
        # negligible next to one day of execution.)
        program.validate(self.evaluator.address_space)
        if self.dedup:
            prune_result = prune_program(program)
            key = fingerprint(prune_result.program)
            redundant = prune_result.is_redundant
        else:
            key = f"member-{len(self.members)}"
            redundant = False
        deduplicated = key in self._programs
        if not deduplicated:
            self._programs[key] = program
            self._stack_group_count = None
        member = FleetMember(
            name=name, key=key,
            deduplicated=deduplicated, redundant=redundant,
        )
        self.members.append(member)
        self._by_name[name] = key
        self._program_by_name[name] = program
        return member

    def key_of(self, name: str) -> str:
        """The backend key serving ``name``."""
        return self._by_name[name]

    # ------------------------------------------------------------------
    # Stacked grouping
    # ------------------------------------------------------------------
    def _signature_groups(self):
        """Compile every unique program and group keys by tape signature.

        Returns ``(compiled, groups)``: key → CompiledProgram, plus the key
        groups in registration order (group order follows first
        appearance).  Only meaningful under the compiled engine.
        """
        compiled = {
            key: compile_program(program)
            for key, program in self._programs.items()
        }
        groups: dict[str, list[str]] = {}
        for key, artefact in compiled.items():
            groups.setdefault(stack_signature(artefact), []).append(key)
        return compiled, list(groups.values())

    def _record_stack_telemetry(self, groups) -> None:
        stacked_groups = [group for group in groups if len(group) >= 2]
        self._stack_group_count = len(stacked_groups)
        if TELEMETRY.enabled and stacked_groups:
            TELEMETRY.counter("engine.fleet.stack_groups").inc(
                len(stacked_groups)
            )
            TELEMETRY.counter("engine.fleet.stacked_programs").inc(
                sum(len(group) for group in stacked_groups)
            )

    # ------------------------------------------------------------------
    # Offline: one-shot batch evaluation over a shared data pass
    # ------------------------------------------------------------------
    def run(
        self,
        splits: tuple[str, ...] = ("valid", "test"),
        use_update: bool | None = None,
        time_batched: bool | None = None,
    ) -> dict[str, dict[str, np.ndarray]]:
        """Run the full protocol for every member; name → split → ``(D, K)``.

        One fresh shared context and one training-day subsample serve the
        whole call; each *unique* program gets a fresh backend (repeatable,
        independent of any serving state) and deduplicated names reference
        the representative's prediction panels.  With stacking on, every
        signature group of two or more unique programs executes as one
        stacked tape and its ``(D, P, K)`` panels are scattered back to the
        member keys — bitwise identical to the per-program path.
        ``use_update`` and ``time_batched`` default to the paired
        evaluator's settings.
        """
        evaluator = self.evaluator
        use_update = evaluator.use_update if use_update is None else use_update
        if time_batched is None:
            time_batched = getattr(evaluator, "time_batched", True)
        ctx = evaluator.make_context()
        day_indices = evaluator.train_day_indices()
        by_key: dict[str, dict[str, np.ndarray]] = {}
        singles = list(self._programs)
        single_backend = lambda key: make_backend(  # noqa: E731
            self._programs[key], ctx, engine=self.engine_name,
            address_space=evaluator.address_space,
        )
        if self.stacked and len(self._programs) >= 2:
            compiled, groups = self._signature_groups()
            self._record_stack_telemetry(groups)
            singles = [key for group in groups if len(group) == 1
                       for key in group]
            # Singleton groups reuse the compile the signature pass already
            # paid for instead of recompiling through make_backend.
            single_backend = lambda key: CompiledAlpha(  # noqa: E731
                compiled[key], ctx
            )
            for group in groups:
                if len(group) < 2:
                    continue
                backend = StackedAlpha(
                    [compiled[key] for key in group], ctx,
                    program_chunk=self.program_chunk,
                )
                panels = run_protocol(
                    backend,
                    self.taskset,
                    splits=splits,
                    day_indices=day_indices,
                    use_update=use_update,
                    time_batched=time_batched,
                )
                if TELEMETRY.enabled:
                    TELEMETRY.counter(
                        "engine.fleet.stacked_kernel_calls"
                    ).inc(backend.kernel_calls)
                for lane, key in enumerate(group):
                    by_key[key] = {
                        split: np.ascontiguousarray(panel[:, lane])
                        for split, panel in panels.items()
                    }
        for key in singles:
            by_key[key] = run_protocol(
                single_backend(key),
                self.taskset,
                splits=splits,
                day_indices=day_indices,
                use_update=use_update,
                time_batched=time_batched,
            )
        return {member.name: by_key[member.key] for member in self.members}

    def evaluate(
        self,
        use_update: bool | None = None,
        time_batched: bool | None = None,
    ) -> dict[str, "EvaluationResult"]:  # noqa: F821 - documented type
        """Score every member; name → :class:`~repro.core.interpreter.EvaluationResult`.

        The splits and the scoring are the evaluator's own
        (:meth:`~repro.core.interpreter.AlphaEvaluator.score`), so a fleet
        evaluation of ``[p]`` equals ``evaluator.evaluate(p)`` bit for bit.
        """
        evaluator = self.evaluator
        splits: tuple[str, ...] = (
            ("valid", "test") if evaluator.evaluate_test else ("valid",)
        )
        runs = self.run(splits=splits, use_update=use_update,
                        time_batched=time_batched)
        # Each result is attributed to the program registered under that
        # name, not the deduplicated representative it executed through.
        return {
            name: evaluator.score(self._program_by_name[name], predictions)
            for name, predictions in runs.items()
        }

    # ------------------------------------------------------------------
    # Online: stateful day-major serving (behind AlphaServer)
    # ------------------------------------------------------------------
    def _ensure_executors(self) -> None:
        if len(self._executors) == len(self._programs):
            return
        if self._ctx is None:
            self._ctx = self.evaluator.make_context()
        singles = list(self._programs)
        single_backend = lambda key: make_backend(  # noqa: E731
            self._programs[key], self._ctx, engine=self.engine_name,
            address_space=self.evaluator.address_space,
        )
        if self.stacked and len(self._programs) >= 2:
            compiled, groups = self._signature_groups()
            self._record_stack_telemetry(groups)
            singles = [key for group in groups if len(group) == 1
                       for key in group]
            # Reuse the signature pass's compiles for singleton serving
            # units instead of recompiling through make_backend.
            single_backend = lambda key: CompiledAlpha(  # noqa: E731
                compiled[key], self._ctx
            )
            for group in groups:
                if len(group) < 2:
                    continue
                unit = _StackedUnit(
                    group,
                    StackedAlpha([compiled[key] for key in group], self._ctx,
                                 program_chunk=self.program_chunk),
                )
                self._units.append(unit)
                self._executors.update(unit.views())
        for key in singles:
            unit = _SingleUnit(key, IncrementalExecutor(
                self._programs[key],
                backend=single_backend(key),
            ))
            self._units.append(unit)
            self._executors.update(unit.views())

    def _drain_stacked_kernel_calls(self) -> None:
        if not TELEMETRY.enabled:
            return
        for unit in self._units:
            if isinstance(unit, _StackedUnit):
                delta = unit.drain_kernel_calls()
                if delta:
                    TELEMETRY.counter(
                        "engine.fleet.stacked_kernel_calls"
                    ).inc(delta)

    def warm_start(self, use_update: bool | None = None) -> None:
        """Set up and train every unique backend over the training split.

        Replays exactly the evaluator's training stage — same feature
        tensors, same ``max_train_steps`` day subsample, same label-reveal
        ordering (via the shared
        :func:`repro.engine.protocol.training_pass`) — once per unique
        backend; stacked groups replay it once per *group*, every lane
        advancing in lock-step through the same day loop.
        """
        if self._warmed:
            raise StreamError("fleet is already warm")
        if not self._programs:
            raise StreamError("no members registered; nothing to warm-start")
        evaluator = self.evaluator
        use_update = evaluator.use_update if use_update is None else use_update
        self._ensure_executors()
        features = self.taskset.split_features("train")
        labels = self.taskset.split_labels("train")
        day_indices = evaluator.train_day_indices()
        for unit in self._units:
            unit.warm_start(
                features, labels, day_indices=day_indices,
                use_update=use_update,
            )
        self._drain_stacked_kernel_calls()
        self._warmed = True

    def step_bar(self, features: np.ndarray) -> dict[str, np.ndarray]:
        """Advance every unique backend one day; key → ``(K,)`` prediction.

        Stacked groups advance as one ``(P, K, ...)`` kernel call per
        instruction; the returned mapping is key-per-key identical to the
        unstacked fleet's.
        """
        if not self._warmed:
            raise StreamError("fleet must be warm-started (or resumed) "
                              "before serving bars")
        predictions: dict[str, np.ndarray] = {}
        for unit in self._units:
            predictions.update(unit.step_bar(features))
        self._drain_stacked_kernel_calls()
        return predictions

    def reveal(self, labels: np.ndarray) -> None:
        """Reveal the last bar's realised labels to every unique backend."""
        for unit in self._units:
            unit.reveal(labels)

    def correct(
        self,
        day: int,
        features: np.ndarray,
        labels: np.ndarray,
    ) -> dict[str, CorrectionResult]:
        """Delta-replay a correction across the fleet; key → result.

        ``features``/``labels`` are the *corrected* full served history
        (``(days_served, K, f, w)`` / ``(days_served, K)``).  Every unique
        backend replays only its invalidated suffix — stacked groups once
        per group — and is left bitwise-identical to a full warm-start
        replay of the corrected history.
        """
        if not self._warmed:
            raise StreamError("fleet must be warm-started (or resumed) "
                              "before correcting served days")
        results: dict[str, CorrectionResult] = {}
        for unit in self._units:
            results.update(unit.correct(day, features, labels))
        self._drain_stacked_kernel_calls()
        return results

    def suspend_replay_states(self) -> dict[str, dict]:
        """key → persistable delta-replay payload (anchor + ring entries).

        Lane states are solo-compatible
        :class:`~repro.compile.executor.TapeState` objects, so payloads
        restore into stacked and unstacked fleets alike (group rings keep
        only days retained for every lane).
        """
        payloads: dict[str, dict] = {}
        for unit in self._units:
            payloads.update(unit.replay_states())
        return payloads

    def resume_replay_states(self, payloads: dict[str, dict]) -> None:
        """Restore :meth:`suspend_replay_states` output (after resume)."""
        for unit in self._units:
            unit.restore_replay_states(payloads)

    def suspend_tapes(self) -> dict[str, object]:
        """key → suspended tape state of every unique backend.

        Stacked lanes emit the same :class:`~repro.compile.executor.TapeState`
        a per-program executor would, so the snapshot resumes into stacked
        and unstacked fleets alike.
        """
        if not self._warmed:
            raise StreamError("cannot suspend a fleet that was never warmed")
        tapes: dict[str, object] = {}
        for unit in self._units:
            tapes.update(unit.suspend())
        return tapes

    def resume_tapes(self, tapes: dict[str, object],
                     days_served: int = 0) -> None:
        """Restore :meth:`suspend_tapes` output into this (fresh) fleet."""
        if self._warmed:
            raise StreamError("cannot resume into a fleet that already ran")
        self._ensure_executors()
        for unit in self._units:
            unit.resume(tapes, days_served=days_served)
        self._warmed = True
