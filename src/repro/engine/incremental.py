"""Incremental (day-at-a-time) execution of one backend.

The offline protocol (:mod:`repro.engine.protocol`) recomputes an alpha's
whole history per call; for serving — one new market bar per day — the only
state an alpha carries between days is its operand memory, so advancing by
one day costs exactly one ``Predict()`` pass plus a label reveal,
independent of how much history precedes it.

:class:`IncrementalExecutor` packages that contract around any suspendable
:class:`~repro.engine.backends.ExecutionEngine` (today: the compiled
backend, whose tape protocol provides ``suspend``/``resume``):

* :meth:`warm_start` replays the training stage once by delegating to
  :func:`repro.engine.protocol.training_pass` — the same code, day for
  day, as the offline evaluator, including the ``max_train_steps``
  subsample whose indices the caller passes through;
* :meth:`step` advances one inference day and returns the prediction;
* :meth:`reveal` writes the realised label *after* the prediction was
  taken, exactly as :func:`~repro.engine.protocol.stream_days` orders it;
* :meth:`suspend` / :meth:`resume` round-trip the rolling operand state
  through the backend's tape protocol, so serving can be checkpointed
  mid-stream and continue bitwise identically;
* :meth:`correct` delta-replays a point correction to an already-served
  bar: a bounded ring of per-day snapshots (depth from the compile-time
  lookback analysis) plus the permanent warm-start anchor let a correction
  at day ``t`` replay only the invalidated suffix instead of the whole
  history — bitwise-identical to a full warm-start replay
  (:mod:`repro.engine.replay`).

The public streaming alias is :class:`repro.stream.incremental.IncrementalAlpha`.
"""

from __future__ import annotations

import numpy as np

from ..config import AddressSpace, DEFAULT_ADDRESS_SPACE
from ..core.ops import ExecutionContext
from ..core.program import AlphaProgram
from ..errors import StreamError
from .backends import ExecutionEngine, make_backend
from .protocol import training_pass
from .replay import (
    CorrectionResult, SnapshotRing, replay_correction, snapshot_depth_for,
)

__all__ = ["IncrementalExecutor"]


class IncrementalExecutor:
    """One execution backend advanced one day at a time.

    Parameters
    ----------
    program:
        The alpha to serve.
    ctx:
        The evaluation context to bind the backend to.  For parity with an
        offline :class:`~repro.core.interpreter.AlphaEvaluator`, build it
        with :meth:`~repro.core.interpreter.AlphaEvaluator.make_context` of
        an evaluator constructed with the same seed.
    address_space:
        Operand address-space sizes used for program validation.
    engine:
        Backend selection (see :data:`repro.engine.ENGINES`).  Suspend and
        resume require a backend with a tape protocol (the compiled one).
    backend:
        A pre-built backend to wrap instead of constructing one — how
        :class:`~repro.engine.fleet.FleetEngine` shares a single
        :class:`~repro.core.ops.ExecutionContext` across its members.
    """

    def __init__(
        self,
        program: AlphaProgram,
        ctx: ExecutionContext | None = None,
        address_space: AddressSpace = DEFAULT_ADDRESS_SPACE,
        engine: str = "compiled",
        backend: ExecutionEngine | None = None,
    ) -> None:
        if backend is None:
            if ctx is None:
                raise StreamError(
                    "an execution context is required to build the backend"
                )
            backend = make_backend(
                program, ctx, engine=engine, address_space=address_space
            )
        self.program = program
        self.executor = backend
        #: Inference days served since the warm start.
        self.days_served = 0
        self._warmed = False
        self._awaiting_label = False
        #: Delta-replay state: a bounded ring of per-day tape snapshots plus
        #: the permanent warm/resume anchor.  Only backends with a tape
        #: protocol can snapshot; the interpreter serves corrections through
        #: the bounded-lookback spin-up path alone.
        self._can_snapshot = (
            getattr(self.executor, "suspend", None) is not None
        )
        self._ring: SnapshotRing | None = None
        self._anchor: tuple[int, object] | None = None
        self._lookback_cache = None

    # ------------------------------------------------------------------
    @property
    def lookback(self):
        """The program's :class:`~repro.compile.lookback.LookbackInfo`."""
        if self._lookback_cache is None:
            compiled = getattr(self.executor, "compiled", None)
            if compiled is not None and compiled.lookback is not None:
                self._lookback_cache = compiled.lookback
            else:
                # Interpreter backend: the dataflow (and therefore the
                # horizon structure) is engine-independent, so compile for
                # analysis only.
                from ..compile import compile_program

                self._lookback_cache = compile_program(self.program).lookback
        return self._lookback_cache

    @property
    def max_lookback(self) -> int | None:
        """Replay spin-up bound (``None`` = unbounded recurrence)."""
        return self.lookback.max_lookback

    def _ensure_ring(self) -> SnapshotRing | None:
        if not self._can_snapshot:
            return None
        if self._ring is None:
            self._ring = SnapshotRing(snapshot_depth_for(self.max_lookback))
        return self._ring

    def _record_snapshot(self, day: int) -> None:
        ring = self._ensure_ring()
        if ring is not None:
            ring.push(day, self.executor.suspend())

    def replay_state(self) -> dict:
        """The persistable delta-replay state (anchor + ring entries)."""
        return {
            "anchor": self._anchor,
            "entries": self._ring.entries() if self._ring is not None else (),
        }

    def restore_replay_state(self, payload: dict) -> None:
        """Restore :meth:`replay_state` output (after :meth:`resume`)."""
        anchor = payload.get("anchor")
        if anchor is not None:
            self._anchor = (int(anchor[0]), anchor[1])
        entries = payload.get("entries") or ()
        if entries:
            self._ring = SnapshotRing(
                snapshot_depth_for(self.max_lookback), entries
            )

    # ------------------------------------------------------------------
    @property
    def is_warm(self) -> bool:
        """Whether the alpha went through setup + training and can serve."""
        return self._warmed

    # ------------------------------------------------------------------
    def warm_start(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        day_indices: np.ndarray | None = None,
        use_update: bool = True,
    ) -> None:
        """Run ``Setup()`` plus the single-epoch training pass.

        ``features`` has shape ``(D, K, f, w)`` and ``labels`` ``(D, K)``;
        ``day_indices`` selects the visited subsample (defaults to every day
        in order) and must match the offline evaluator's
        :meth:`~repro.core.interpreter.AlphaEvaluator.train_day_indices` for
        the two paths to stay bitwise identical.  The loop itself is the
        shared :func:`repro.engine.protocol.training_pass`, kept day-by-day
        so the suspended operand state evolves exactly as a live process's
        would.
        """
        if self._warmed:
            raise StreamError("alpha is already warm; construct a fresh one "
                              "or resume a suspended state instead")
        self.executor.run_setup()
        training_pass(
            self.executor, features, labels,
            day_indices=day_indices, use_update=use_update,
        )
        self._warmed = True
        if self._can_snapshot:
            self._anchor = (0, self.executor.suspend())

    # ------------------------------------------------------------------
    def step(self, features: np.ndarray) -> np.ndarray:
        """Advance one inference day and return the ``(K,)`` prediction.

        Mirrors one iteration of the offline inference loop: the day's
        feature matrices go into ``m0``, ``Predict()`` runs once, and the
        prediction is returned *before* the day's label exists.  Call
        :meth:`reveal` once the label realises.
        """
        if not self._warmed:
            raise StreamError("alpha must be warm-started (or resumed) "
                              "before it can serve days")
        if self._awaiting_label:
            raise StreamError("previous day's label was never revealed; "
                              "call reveal() between steps")
        executor = self.executor
        executor.set_input(features)
        executor.run_predict()
        self.days_served += 1
        self._awaiting_label = True
        return executor.prediction.copy()

    def reveal(self, labels: np.ndarray) -> None:
        """Write the realised ``(K,)`` labels of the last stepped day.

        The offline inference stage never runs ``Update()`` — the trained
        parameters are frozen — and neither does this; the label is only
        made visible so the next day's ``Predict()`` reads what the batch
        path would read.
        """
        if not self._awaiting_label:
            raise StreamError("no prediction is pending a label; "
                              "call step() first")
        self.executor.set_label(labels)
        self._awaiting_label = False
        self._record_snapshot(self.days_served)

    # ------------------------------------------------------------------
    def correct(
        self,
        day: int,
        features: np.ndarray,
        labels: np.ndarray,
    ) -> CorrectionResult:
        """Delta-replay a correction to already-served day ``day``.

        ``features``/``labels`` are the *corrected* full served history
        (``(days_served, K, f, w)`` / ``(days_served, K)``).  Restores the
        newest clean snapshot at or before ``day`` — or, when the
        compile-time lookback bound is finite and cheaper, spins up from
        the current live state — and replays only the invalidated suffix.
        Predictions and the final operand state are bitwise-identical to a
        full warm-start replay of the corrected history; ``days_served``
        is unchanged.
        """
        if not self._warmed:
            raise StreamError("alpha must be warm-started (or resumed) "
                              "before it can correct days")
        if self._awaiting_label:
            raise StreamError("previous day's label was never revealed; "
                              "reveal it before correcting history")
        return replay_correction(
            self.executor, day, features, labels,
            days_served=self.days_served,
            max_lookback=self.max_lookback,
            ring=self._ensure_ring(),
            anchor=self._anchor,
            take_snapshot=(self.executor.suspend if self._can_snapshot
                           else None),
            restore_snapshot=(self.executor.resume if self._can_snapshot
                              else None),
            what=self.program.name,
        )

    # ------------------------------------------------------------------
    def _tape_protocol(self, method: str):
        handler = getattr(self.executor, method, None)
        if handler is None:
            raise StreamError(
                f"the {type(self.executor).__name__} backend has no "
                f"suspend/resume tape protocol; serve it through the "
                f"compiled engine to checkpoint mid-stream"
            )
        return handler

    def suspend(self):
        """Snapshot the rolling operand state (the backend's tape state)."""
        if self._awaiting_label:
            raise StreamError("cannot suspend between step() and reveal(); "
                              "reveal the pending label first")
        return self._tape_protocol("suspend")()

    def resume(self, state, days_served: int = 0) -> None:
        """Restore a snapshot into this (fresh, un-warmed) executor."""
        if self._warmed:
            raise StreamError("cannot resume into an alpha that already ran; "
                              "construct a fresh one")
        self._tape_protocol("resume")(state)
        self.days_served = int(days_served)
        self._warmed = True
        # The resumed state is a clean snapshot entering this day; retain it
        # so corrections at or after the resume point need no warm anchor.
        # (restore_replay_state can still supply the original day-0 anchor.)
        self._anchor = (self.days_served, state)
