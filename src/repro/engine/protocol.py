"""The single implementation of the train/inference label-reveal protocol.

Section 2 of the paper fixes how every alpha is executed:

* ``Setup()`` runs once;
* **training stage** — for each training day, in order: the day's feature
  matrices go into ``m0``, ``Predict()`` runs, the prediction is recorded,
  the realised label is revealed into ``s0``, and ``Update()`` runs (memory
  persists, so ``Update()``-written operands are the alpha's parameters);
* **inference stage** — the trained memory is frozen; for each day
  ``Predict()`` runs and the label is revealed *after* the prediction is
  recorded (it is known the next day), so alphas may read recent returns
  without look-ahead.

This module is the only place in ``src/`` that protocol is implemented.
The offline evaluator (:class:`~repro.core.interpreter.AlphaEvaluator`),
the incremental streaming executor, the fleet server and the online
backtest driver all delegate here, driving any
:class:`~repro.engine.backends.ExecutionEngine` — which is what makes
"research and serving can never diverge" a structural property instead of
a test-enforced one.

Two time-vectorised fast paths live here (and only here), both gated on
backend capability flags and both bitwise identical to the day loop:

* **fused inference** (``supports_fused_inference``) — ``Predict()``
  reads neither the label nor its own writes, so the inference day loop
  (and its label reveals) is unobservable and a whole split collapses
  into one batched ``(D, K, ...)`` tape pass;
* **static-predict time batching** (``supports_static_predict``) — the
  entire ``Predict()`` tape is day-loop invariant (it also reads no
  ``Update()``-carried state), so even the *training-stage* predictions
  collapse into one vectorised kernel call: no per-day Python loop, no
  label reveals, no ``Update()`` execution — none of which the recorded
  predictions can observe.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data.dataset import TaskSet
from ..obs import TELEMETRY
from .backends import ExecutionEngine

__all__ = [
    "stream_days",
    "can_batch_training",
    "training_pass",
    "inference_pass",
    "run_protocol",
]

#: The inference splits, in the chronological order the protocol visits
#: them (label state carries from the last validation day into the first
#: test day, exactly as in live serving).
INFERENCE_SPLITS = ("valid", "test")


def stream_days(
    features: np.ndarray,
    labels: np.ndarray,
    step: Callable[[int, np.ndarray], None],
    reveal: Callable[[np.ndarray], None],
) -> None:
    """THE inference day-loop: predict first, reveal the label after.

    ``step(day, bar)`` receives each arriving ``(K, f, w)`` bar in
    chronological order; ``reveal(labels_of_day)`` is called strictly
    afterwards, so a ``step`` can never observe the label of the day it is
    predicting.  Every consumer that replays days — the offline inference
    stage, the online backtest driver, the serve CLI — funnels through
    this one loop.
    """
    for day in range(features.shape[0]):
        step(day, features[day])
        reveal(labels[day])


def can_batch_training(backend: ExecutionEngine, use_update: bool = True) -> bool:
    """Whether the training stage may run as one batched kernel call.

    Requires a batched kernel (``supports_fused_inference``) plus the
    guarantee that ``Predict()`` sees identical operand state on every
    training day.  That holds when the predict tape is fully static
    (``supports_static_predict``: no dependence on ``Update()``-carried
    state) or when ``Update()`` is disabled outright (the ``*_P`` ablation
    of Table 4) — in either case the per-day label reveals and updates are
    unobservable to the recorded predictions.
    """
    if not backend.supports_fused_inference:
        return False
    if not use_update:
        return True
    return bool(backend.supports_static_predict)


def training_pass(
    backend: ExecutionEngine,
    features: np.ndarray,
    labels: np.ndarray,
    day_indices: np.ndarray | None = None,
    use_update: bool = True,
    predictions_out: np.ndarray | None = None,
    time_batched: bool = False,
) -> np.ndarray | None:
    """The single-epoch training stage over ``day_indices``.

    ``features``/``labels`` are the training split's ``(D, K, f, w)`` /
    ``(D, K)`` arrays; ``day_indices`` selects the visited subsample
    (defaults to every day in order) and must match the evaluator's
    :meth:`~repro.core.interpreter.AlphaEvaluator.train_day_indices` for
    offline/online parity.  When ``predictions_out`` is given, the visited
    days' predictions are written into it (unvisited rows are left
    untouched).

    With ``time_batched`` and an eligible backend (see
    :func:`can_batch_training`) the whole stage collapses into at most one
    vectorised kernel call; the recorded predictions are bitwise identical
    to the day loop.  Streaming consumers keep the day loop (their
    suspendable operand state must evolve exactly as a live process's
    would); the offline evaluator enables the fast path.
    """
    if day_indices is None:
        day_indices = np.arange(features.shape[0])
    if time_batched and can_batch_training(backend, use_update):
        # Telemetry is recorded per *stage call*, never per day: the
        # disabled cost of this instrumentation is one boolean test.
        if TELEMETRY.enabled:
            if predictions_out is not None:
                TELEMETRY.counter("engine.kernel.batched_calls").inc()
                TELEMETRY.counter("engine.kernel.batched_days").inc(
                    int(day_indices.size)
                )
            else:
                # The recorded predictions are unobservable: the whole
                # training stage is elided, not batched.
                TELEMETRY.counter("engine.kernel.elided_training_stages").inc()
        if predictions_out is not None:
            visited = (
                features if day_indices.size == features.shape[0]
                else features[day_indices]
            )
            predictions_out[day_indices] = backend.run_inference_batch(visited)
        return predictions_out
    if TELEMETRY.enabled:
        TELEMETRY.counter("engine.kernel.loop_calls").inc()
        TELEMETRY.counter("engine.kernel.loop_days").inc(int(day_indices.size))
    for day in day_indices:
        backend.set_input(features[day])
        backend.run_predict()
        if predictions_out is not None:
            predictions_out[day] = backend.prediction
        backend.set_label(labels[day])
        if use_update:
            backend.run_update()
    return predictions_out


def inference_pass(
    backend: ExecutionEngine,
    features: np.ndarray,
    labels: np.ndarray,
    time_batched: bool = True,
) -> np.ndarray:
    """The inference stage over one split: frozen memory, day-by-day reveal.

    Returns the ``(D, K)`` prediction panel.  With ``time_batched`` and a
    fused-eligible backend the split runs as one batched tape pass (the
    label reveals are unobservable — ``Predict()`` never reads the label);
    otherwise the split replays through :func:`stream_days`.
    """
    if time_batched and backend.supports_fused_inference:
        if TELEMETRY.enabled:
            TELEMETRY.counter("engine.kernel.batched_calls").inc()
            TELEMETRY.counter("engine.kernel.batched_days").inc(
                int(features.shape[0])
            )
        return backend.run_inference_batch(features)
    if TELEMETRY.enabled:
        TELEMETRY.counter("engine.kernel.loop_calls").inc()
        TELEMETRY.counter("engine.kernel.loop_days").inc(int(features.shape[0]))
    # The panel follows the backend's prediction shape: (D, K) for a single
    # program, (D, P, K) for a stacked program group.
    out = np.zeros((features.shape[0],) + np.shape(backend.prediction))

    def step(day: int, bar: np.ndarray) -> None:
        backend.set_input(bar)
        backend.run_predict()
        out[day] = backend.prediction

    stream_days(features, labels, step, backend.set_label)
    return out


def run_protocol(
    backend: ExecutionEngine,
    taskset: TaskSet,
    splits: tuple[str, ...] = ("valid", "test"),
    day_indices: np.ndarray | None = None,
    use_update: bool = True,
    time_batched: bool = True,
) -> dict[str, np.ndarray]:
    """Run the full Setup → train → inference protocol on one backend.

    The one-stop entry point behind
    :meth:`~repro.core.interpreter.AlphaEvaluator.run` and
    :meth:`~repro.engine.fleet.FleetEngine.run`: returns split name →
    ``(num_days_in_split, K)`` predictions — ``(D, P, K)`` when the backend
    is a stacked program group — for every requested split
    (``"train"`` rows of unvisited subsampled days are zero, as they
    always were).
    """
    backend.run_setup()
    train_features = taskset.split_features("train")
    train_labels = taskset.split_labels("train")
    want_train = "train" in splits
    train_predictions = (
        np.zeros((train_features.shape[0],) + np.shape(backend.prediction))
        if want_train else None
    )
    training_pass(
        backend,
        train_features,
        train_labels,
        day_indices=day_indices,
        use_update=use_update,
        predictions_out=train_predictions,
        time_batched=time_batched,
    )

    predictions: dict[str, np.ndarray] = {}
    if want_train:
        predictions["train"] = train_predictions
    for split in INFERENCE_SPLITS:
        if split not in splits:
            continue
        predictions[split] = inference_pass(
            backend,
            taskset.split_features(split),
            taskset.split_labels(split),
            time_batched=time_batched,
        )
    return predictions
