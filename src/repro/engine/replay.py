"""Bounded delta-replay: point corrections without a full warm-start.

A correction rewrites one already-served bar.  The naive fix is a full
warm-start replay — setup, the whole training stage, then every served day
again — which throws away exactly the incremental win the serving layer
exists for.  The static lookback analysis
(:mod:`repro.compile.lookback`) bounds how much of that work a correction
can actually invalidate, and this module turns the bound into a replay
plan:

* :class:`SnapshotRing` — a bounded ring of per-day loop-carried snapshots
  (the backend's suspend/resume tape states), pushed after every reveal.
  A snapshot taken at day ``d`` is *clean* for a correction at day
  ``t >= d``: the correction only perturbs state from day ``t`` on.
* :func:`replay_correction` — pick the cheapest exact restart point and
  replay only the suffix.  Two plans compete:

  - **snapshot**: restore the newest retained snapshot at or before ``t``
    (the ring, or the permanent warm-start anchor) and replay forward;
  - **spin-up**: when the program's ``max_lookback`` ``L`` is finite, seed
    from the *current* live state at day ``t - L`` — frozen memory is
    correction-invariant, ``m0``/``s0`` are re-fed per replayed day, and
    every mutable operand is exact after at most ``L`` replayed days — so
    the replay is bitwise-identical to a full one without restoring
    anything.

  The replay re-pushes ring snapshots along the corrected timeline (spin-up
  only from the first provably-exact day), preserving the invariant that
  every retained snapshot equals what a clean full replay would have
  suspended at that day.

The helper is engine-agnostic: it drives any
:class:`~repro.engine.backends.ExecutionEngine` surface
(``set_input``/``run_predict``/``prediction``/``set_label``), so the solo
:class:`~repro.engine.incremental.IncrementalExecutor` and the fleet's
stacked groups share one implementation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import StreamError

__all__ = [
    "DEFAULT_UNBOUNDED_DEPTH",
    "CorrectionResult",
    "SnapshotRing",
    "replay_correction",
    "snapshot_depth_for",
]

#: Ring depth when the program's lookback is unbounded (self-recurrent
#: inference state): corrections within this many days of the present still
#: replay from a ring snapshot; older ones fall back to the warm anchor.
DEFAULT_UNBOUNDED_DEPTH = 8


def snapshot_depth_for(max_lookback: int | None) -> int:
    """Ring depth for a program with the given ``max_lookback``.

    Finite lookback needs at most ``max_lookback`` retained days (a deeper
    correction spins up from live state instead); zero-lookback programs
    keep one snapshot so the snapshot plan can serve day-0 corrections.
    """
    if max_lookback is None:
        return DEFAULT_UNBOUNDED_DEPTH
    return max(int(max_lookback), 1)


@dataclass(frozen=True)
class CorrectionResult:
    """What one backend replayed for one correction."""

    #: First corrected served-day index.
    day: int
    #: Served day the replay restarted from.
    start_day: int
    #: ``"snapshot"`` (restored a retained tape state) or ``"spinup"``
    #: (bounded-lookback replay from the live state).
    mode: str
    #: Days re-executed (``days_served - start_day``).
    replayed_days: int
    #: Corrected predictions for days ``day .. days_served - 1``; shape
    #: ``(days_served - day, K)`` (stacked groups: ``(…, P, K)``).
    predictions: np.ndarray


class SnapshotRing:
    """Bounded, day-indexed ring of suspended tape states.

    Entries are ``(day, state)`` with strictly increasing days, ``day``
    being the serving-day index the state *enters* (i.e. the state after
    revealing day ``day - 1``).  Only the newest ``depth`` entries are
    retained.
    """

    def __init__(self, depth: int, entries=()) -> None:
        self.depth = max(int(depth), 1)
        self._entries: deque[tuple[int, object]] = deque(maxlen=self.depth)
        for day, state in entries:
            self.push(int(day), state)

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, day: int, state: object) -> None:
        """Retain ``state`` as the snapshot entering serving day ``day``."""
        if self._entries and self._entries[-1][0] == day:
            self._entries[-1] = (day, state)
            return
        if self._entries and self._entries[-1][0] > day:
            raise StreamError(
                f"snapshot ring days must be non-decreasing: got day {day} "
                f"after day {self._entries[-1][0]}"
            )
        self._entries.append((day, state))

    def latest_at_or_before(self, day: int) -> tuple[int, object] | None:
        """The newest retained ``(day, state)`` clean for a correction at ``day``."""
        for entry_day, state in reversed(self._entries):
            if entry_day <= day:
                return entry_day, state
        return None

    def truncate_after(self, day: int) -> None:
        """Drop entries newer than ``day`` (stale under a rewritten timeline)."""
        while self._entries and self._entries[-1][0] > day:
            self._entries.pop()

    def entries(self) -> tuple[tuple[int, object], ...]:
        """The retained ``(day, state)`` pairs, oldest first (persistable)."""
        return tuple(self._entries)


def replay_correction(
    backend,
    day: int,
    features: np.ndarray,
    labels: np.ndarray,
    *,
    days_served: int,
    max_lookback: int | None,
    ring: SnapshotRing | None = None,
    anchor: tuple[int, object] | None = None,
    take_snapshot=None,
    restore_snapshot=None,
    what: str = "alpha",
) -> CorrectionResult:
    """Replay the suffix a correction at served day ``day`` invalidates.

    ``features``/``labels`` are the full *corrected* served history
    (``(days_served, K, f, w)`` / ``(days_served, K)``) — every revealed
    day's bar, with the corrected rows already patched in.  ``anchor`` is a
    permanently retained clean ``(day, state)`` snapshot (the warm-start
    state at day 0, or the resume point); it is used when the ring holds
    nothing old enough.  Returns the corrected predictions for days ``day
    .. days_served - 1`` and leaves the backend in the exact state a clean
    full replay of the corrected history would have produced.
    """
    cur = int(days_served)
    if not 0 <= day < cur:
        raise StreamError(
            f"cannot correct day {day} of {what}: {cur} days served"
        )
    if len(features) != cur or len(labels) != cur:
        raise StreamError(
            f"corrected history must cover all {cur} served days of {what}: "
            f"got {len(features)} feature days, {len(labels)} label days"
        )

    # Plan: the cheapest exact restart wins.  Snapshot restarts need a
    # retained state at or before the corrected day; spin-up restarts need a
    # finite lookback and a previous served label to seed s0 (start >= 1 —
    # a day-0 restart is only exact from the warm anchor).
    clean = ring.latest_at_or_before(day) if ring is not None else None
    if clean is None and anchor is not None and anchor[0] <= day:
        clean = anchor
    options: list[tuple[int, str, object]] = []
    if clean is not None and restore_snapshot is not None:
        options.append((clean[0], "snapshot", clean[1]))
    if max_lookback is not None and day - max_lookback >= 1:
        options.append((day - max_lookback, "spinup", None))
    if not options:
        raise StreamError(
            f"cannot delta-replay a correction at day {day} of {what}: no "
            f"retained snapshot covers it and the program's lookback is "
            + ("unbounded" if max_lookback is None
               else f"{max_lookback} days (restart would precede serving)")
            + "; a full warm-start replay is required"
        )
    start, mode, state = max(options, key=lambda option: option[0])

    if mode == "snapshot":
        restore_snapshot(state)
        if ring is not None:
            ring.truncate_after(start)
        # Every replayed day restarts from an exact state.
        push_from = start + 1
    else:
        # Live state already holds exact frozen memory; seed s0 with the
        # label revealed before the restart day and let the bounded replay
        # converge every mutable operand.  States entering days before
        # ``day`` are not yet exact, so only push from ``day`` on.
        backend.set_label(labels[start - 1])
        if ring is not None:
            ring.truncate_after(day)
        push_from = day

    predictions: np.ndarray | None = None
    for replay_day in range(start, cur):
        backend.set_input(features[replay_day])
        backend.run_predict()
        if replay_day >= day:
            if predictions is None:
                predictions = np.empty(
                    (cur - day,) + backend.prediction.shape
                )
            predictions[replay_day - day] = backend.prediction
        backend.set_label(labels[replay_day])
        if (ring is not None and take_snapshot is not None
                and replay_day + 1 >= push_from):
            ring.push(replay_day + 1, take_snapshot())
    assert predictions is not None  # range(start, cur) includes day
    return CorrectionResult(
        day=day,
        start_day=start,
        mode=mode,
        replayed_days=cur - start,
        predictions=predictions,
    )
