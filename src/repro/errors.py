"""Exception hierarchy for the AlphaEvolve reproduction.

All exceptions raised by this package derive from :class:`ReproError` so that
callers can catch library-specific failures without masking programming
errors such as ``TypeError`` or ``KeyError`` coming from user code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class DataError(ReproError):
    """Raised when market data or feature construction is invalid."""


class DataIntegrityError(DataError):
    """Market data violates an integrity constraint (duplicate keys, …).

    Carries the offending ``(ticker, date)`` pairs so repair policies and
    tests can dispatch on *which* rows are dirty instead of re-parsing a
    message.  Raised by the loader under the ``reject`` repair policy; the
    other policies in :mod:`repro.data.repair` resolve the violations
    deterministically instead of raising.
    """

    def __init__(self, message: str, pairs: tuple = ()) -> None:
        super().__init__(message)
        #: Offending ``(ticker, date)`` pairs, in detection order.
        self.pairs: tuple = tuple((ticker, int(date)) for ticker, date in pairs)


class UniverseError(DataError):
    """Raised when universe filtering produces an unusable stock universe."""


class ProgramError(ReproError):
    """Raised for structurally invalid alpha programs."""


class OperandError(ProgramError):
    """An operand address is outside the configured address space."""


class OperatorError(ProgramError):
    """An operator was used with the wrong operand types or arity."""


class ExecutionError(ReproError):
    """Raised when an alpha program cannot be executed on a task set."""


class EvolutionError(ReproError):
    """Raised for invalid evolutionary-search configurations or states."""


class ParallelError(ReproError):
    """Raised when the parallel evaluation subsystem is misused."""


class SharedPanelMismatchError(ParallelError):
    """A worker tried to attach to a shared panel store whose content
    signature disagrees with the handle it was given — computing on that
    store would silently use wrong data, so the attach fails loudly."""


class CheckpointError(ReproError):
    """Raised when a search checkpoint cannot be saved, loaded or resumed."""


class BacktestError(ReproError):
    """Raised when a backtest cannot be carried out (e.g. empty universe)."""


class EngineError(ReproError):
    """Raised by the unified execution-engine layer (:mod:`repro.engine`)."""


class StreamError(ReproError):
    """Raised by the streaming serving subsystem (:mod:`repro.stream`)."""


class BaselineError(ReproError):
    """Raised by baseline models (genetic programming / neural networks)."""


class ObservabilityError(ReproError):
    """Raised by the telemetry subsystem (:mod:`repro.obs`)."""
