"""Experiment runners for every table and figure of the paper's evaluation."""

from .configs import ExperimentConfig, LAPTOP, PAPER, SCALES, SMOKE, make_taskset
from .recorder import ExperimentResult, PAPER_REFERENCE, load_result, save_result
from .runner import (
    GeneticStudy,
    MiningStudy,
    RoundRecord,
    run_all,
    run_figure6,
    run_study,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)
from .tables import format_mean_std, format_value, render_table

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "GeneticStudy",
    "LAPTOP",
    "MiningStudy",
    "PAPER",
    "PAPER_REFERENCE",
    "RoundRecord",
    "SCALES",
    "SMOKE",
    "format_mean_std",
    "format_value",
    "load_result",
    "make_taskset",
    "render_table",
    "run_all",
    "run_figure6",
    "run_study",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "save_result",
]
