"""Experiment configurations.

Two scales are provided:

* ``LAPTOP`` — the default used by the benchmark harness: a reduced universe,
  shorter history and small search budgets so that every table regenerates in
  seconds to minutes on a laptop, while preserving the *shape* of the paper's
  results (who wins, what degrades with accumulating cutoffs, what the
  pruning technique buys).
* ``PAPER`` — the paper-scale parameters (1026 stocks, 1220 days, population
  100, 60-hour budgets) for reference; running it requires real NASDAQ data
  and a large compute budget and is not exercised by the test-suite.

Every configuration is an immutable dataclass, and :func:`make_taskset`
deterministically builds the corresponding task set through the
configuration's data backend (:mod:`repro.data.backends`) — the synthetic
market simulator by default, or any registered backend via the ``data``
spec.  Named workload presets live in :mod:`repro.scenarios`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from ..config import (
    CORRELATION_CUTOFF,
    PAPER_NUM_STOCKS,
    PAPER_TRAIN_DAYS,
    PAPER_VALID_DAYS,
    PAPER_TEST_DAYS,
)
from ..core.evolution import EvolutionConfig
from ..data import DataSpec, MarketConfig, Split, TaskSet, backend_from_spec
from ..data.backends import DataBackend
from ..errors import ConfigurationError, DataError
from ..obs import TELEMETRY

__all__ = ["ExperimentConfig", "LAPTOP", "SCALES", "SMOKE", "PAPER", "make_taskset"]

#: :class:`~repro.data.market_sim.MarketConfig` fields that mirror explicit
#: ``ExperimentConfig`` fields; overriding them through ``market_overrides``
#: would desynchronise the two, so it is rejected.
_STRUCTURAL_MARKET_FIELDS = frozenset(
    {"num_stocks", "num_days", "num_sectors", "industries_per_sector"}
)


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs needed to regenerate the paper's tables and figure."""

    name: str = "laptop"

    # ----- market / data ------------------------------------------------
    num_stocks: int = 80
    num_days: int = 420
    num_sectors: int = 8
    industries_per_sector: int = 3
    data_seed: int = 2021
    split: Split | None = Split(train=255, valid=60, test=60)
    #: Declarative data-backend selection (:mod:`repro.data.backends`).  The
    #: default synthetic spec reproduces the pre-backend-layer data path bit
    #: for bit; scenarios swap in file-backed or resampled specs.
    data: DataSpec = DataSpec()
    #: Extra :class:`~repro.data.market_sim.MarketConfig` fields as
    #: ``(name, value)`` pairs — the regime axis of the scenario suite
    #: (volatilities, signal strengths, spillover).  Structural fields
    #: (``num_stocks`` …) must be set on the config itself.
    market_overrides: tuple[tuple[str, object], ...] = ()

    # ----- portfolio ------------------------------------------------------
    long_positions: int = 10
    short_positions: int = 10
    correlation_cutoff: float = CORRELATION_CUTOFF

    # ----- AlphaEvolve search --------------------------------------------
    population_size: int = 30
    tournament_size: int = 10
    max_candidates: int = 600
    max_seconds: float | None = None
    max_train_steps: int | None = 60
    num_rounds: int = 5
    search_seed: int = 7
    #: Parallel-search subsystem (:mod:`repro.parallel`): number of
    #: evaluation worker processes and of evolution islands per search, and
    #: an optional directory for search checkpoints (one file per search
    #: name; an existing checkpoint is resumed automatically).  The defaults
    #: select the serial controller, which every table was calibrated on.
    num_workers: int = 1
    num_islands: int = 1
    #: Island-controller scheduling strategy (``"barrier"`` / ``"overlap"``;
    #: see :class:`repro.core.evolution.EvolutionConfig`).  The CLI exposes
    #: it as ``--scheduler``.
    scheduler: str = "barrier"
    checkpoint_dir: str | None = None
    #: Execute candidates through the compilation pipeline
    #: (:mod:`repro.compile`); bitwise identical to the interpreter, so the
    #: default is on.  ``--no-compile`` on the CLI flips it off.
    use_compile: bool = True
    #: Execution-engine name (see :data:`repro.engine.ENGINES`) forwarded to
    #: the search; overrides ``use_compile`` when set.  The CLI exposes it
    #: as ``--engine``.
    engine: str | None = None
    #: Wall-clock budget per mining round used when AlphaEvolve and the GP
    #: baseline are compared under the same time budget (Tables 1 and 2); the
    #: paper uses 60 hours per round.
    round_time_budget_seconds: float = 6.0

    # ----- streaming serving (repro serve) ---------------------------------
    #: Number of weakly correlated alphas ``repro serve`` mines and registers
    #: on the :class:`repro.stream.server.AlphaServer` (one mining round per
    #: alpha, cycling the D / NN / R initialisations).
    serve_top_k: int = 3

    # ----- genetic-programming baseline -----------------------------------
    gp_population_size: int = 30
    gp_max_candidates: int = 600

    # ----- neural baselines ------------------------------------------------
    nn_epochs: int = 2
    nn_hidden_sizes: tuple[int, ...] = (16, 32)
    nn_sequence_lengths: tuple[int, ...] = (4, 8)
    nn_loss_alphas: tuple[float, ...] = (0.1, 1.0)
    nn_batch_days: int | None = 60
    nn_num_seeds: int = 3

    # ----- Table 6 (pruning ablation) --------------------------------------
    pruning_time_budget_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.num_rounds < 1:
            raise ConfigurationError("num_rounds must be at least 1")
        if self.num_stocks < 10:
            raise ConfigurationError("need at least 10 stocks for a long-short book")
        if self.num_workers < 1:
            raise ConfigurationError("num_workers must be at least 1")
        if self.num_islands < 1:
            raise ConfigurationError("num_islands must be at least 1")
        # Imported lazily: repro.experiments builds on repro.core.
        from ..core.evolution import SCHEDULERS

        if self.scheduler not in SCHEDULERS:
            raise ConfigurationError(
                f"unknown scheduler {self.scheduler!r}; choose from "
                + ", ".join(SCHEDULERS)
            )
        if self.serve_top_k < 1:
            raise ConfigurationError("serve_top_k must be at least 1")
        if self.engine is not None:
            # Imported lazily: repro.engine builds on repro.core submodules.
            from ..engine import resolve_engine
            from ..errors import EngineError

            try:
                resolve_engine(self.engine)
            except EngineError as exc:
                raise ConfigurationError(str(exc)) from exc

    # ------------------------------------------------------------------
    def market_config(self) -> MarketConfig:
        """The synthetic-market parameters, with regime overrides applied.

        Unknown or structural ``market_overrides`` keys raise a
        :class:`~repro.errors.ConfigurationError` that names this
        configuration, so a broken scenario spec is attributable from the
        message alone.
        """
        overrides = dict(self.market_overrides)
        known = {field.name for field in fields(MarketConfig)}
        structural = sorted(set(overrides) & _STRUCTURAL_MARKET_FIELDS)
        if structural:
            raise ConfigurationError(
                f"config {self.name!r}: market_overrides may not set "
                f"{structural}; set the matching ExperimentConfig field instead"
            )
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ConfigurationError(
                f"config {self.name!r}: unknown MarketConfig field(s) "
                f"{unknown}; valid regime fields: "
                f"{sorted(known - _STRUCTURAL_MARKET_FIELDS)}"
            )
        return MarketConfig(
            num_stocks=self.num_stocks,
            num_days=self.num_days,
            num_sectors=self.num_sectors,
            industries_per_sector=self.industries_per_sector,
            **overrides,
        )

    def data_backend(self) -> DataBackend:
        """Materialise this configuration's :class:`~repro.data.DataSpec`.

        Backend construction errors (unknown kind, missing path) are
        re-raised as :class:`~repro.errors.ConfigurationError` carrying the
        configuration name.
        """
        try:
            return backend_from_spec(
                self.data, market_config=self.market_config(), seed=self.data_seed
            )
        except DataError as exc:
            raise ConfigurationError(f"config {self.name!r}: {exc}") from exc

    def evolution_config(self, max_candidates: int | None = None,
                         max_seconds: float | None = None,
                         use_pruning: bool = True) -> EvolutionConfig:
        """The evolutionary-search configuration (optionally overridden)."""
        return EvolutionConfig(
            population_size=self.population_size,
            tournament_size=self.tournament_size,
            max_candidates=self.max_candidates if max_candidates is None else max_candidates,
            max_seconds=self.max_seconds if max_seconds is None else max_seconds,
            use_pruning=use_pruning,
            use_compile=self.use_compile,
            engine=self.engine,
            num_workers=self.num_workers,
            num_islands=self.num_islands,
            scheduler=self.scheduler,
        )

    def scaled(self, **overrides) -> "ExperimentConfig":
        """A copy of this configuration with some fields replaced.

        Unknown field names raise a
        :class:`~repro.errors.ConfigurationError` that includes this
        configuration's name — every rebuild path (CLI overrides, scenario
        materialisation, benchmark trims) funnels through here, so the
        error always says which config produced it.
        """
        known = {field.name for field in fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ConfigurationError(
                f"config {self.name!r}: unknown ExperimentConfig field(s) "
                f"{unknown}; valid fields: {sorted(known)}"
            )
        return replace(self, **overrides)


#: Default laptop-scale configuration used by the benchmark harness.
LAPTOP = ExperimentConfig()

#: Tiny configuration for CI smoke tests (seconds, not minutes).
SMOKE = ExperimentConfig(
    name="smoke",
    num_stocks=40,
    num_days=260,
    split=Split(train=136, valid=40, test=40),
    population_size=15,
    tournament_size=5,
    max_candidates=150,
    max_train_steps=40,
    num_rounds=3,
    round_time_budget_seconds=1.5,
    gp_population_size=15,
    gp_max_candidates=150,
    nn_epochs=1,
    nn_hidden_sizes=(16,),
    nn_sequence_lengths=(4,),
    nn_loss_alphas=(0.1,),
    nn_batch_days=30,
    nn_num_seeds=2,
    pruning_time_budget_seconds=2.0,
)

#: Paper-scale configuration (documented; not run by the harness).
PAPER = ExperimentConfig(
    name="paper",
    num_stocks=PAPER_NUM_STOCKS,
    num_days=1220 + 60,
    split=Split(train=PAPER_TRAIN_DAYS, valid=PAPER_VALID_DAYS, test=PAPER_TEST_DAYS),
    long_positions=50,
    short_positions=50,
    population_size=100,
    tournament_size=10,
    max_candidates=1_000_000,
    max_seconds=60 * 3600.0,
    max_train_steps=None,
    round_time_budget_seconds=60 * 3600.0,
    gp_population_size=100,
    gp_max_candidates=1_000_000,
    nn_epochs=50,
    nn_hidden_sizes=(32, 64, 128, 256),
    nn_sequence_lengths=(4, 8, 16, 32),
    nn_loss_alphas=(0.01, 0.1, 1.0, 10.0),
    nn_batch_days=None,
    nn_num_seeds=5,
    pruning_time_budget_seconds=60 * 3600.0,
)

#: The named experiment scales the CLI's ``--scale`` and the scenario
#: suite materialise against — the single registry both consult.
SCALES: dict[str, ExperimentConfig] = {"laptop": LAPTOP, "smoke": SMOKE}

_TASKSET_CACHE: dict[tuple, TaskSet] = {}

#: Bound on the task-set memo: file-backend keys embed content signatures
#: (mtimes), so an unbounded dict would strand one dead TaskSet per
#: re-export in a long-lived process.
_TASKSET_CACHE_MAX = 8


def make_taskset(config: ExperimentConfig, use_cache: bool = True) -> TaskSet:
    """Build (and memoise) the task set for an experiment configuration.

    The panel comes from the configuration's data backend
    (:meth:`ExperimentConfig.data_backend`); the memo key is the backend's
    :meth:`~repro.data.backends.DataBackend.cache_key`, so a synthetic
    config, a file directory (keyed by content signature) and a resampled
    view each cache independently (oldest entries are evicted beyond
    :data:`_TASKSET_CACHE_MAX`).  The default synthetic spec produces a
    task set bitwise identical to the pre-backend-layer data path.
    """
    backend = config.data_backend()
    key = (backend.cache_key(), config.split)
    if use_cache and key in _TASKSET_CACHE:
        if TELEMETRY.enabled:
            TELEMETRY.counter("data.taskset_memo.hits").inc()
        return _TASKSET_CACHE[key]
    if TELEMETRY.enabled:
        TELEMETRY.counter("data.taskset_memo.misses").inc()
    with TELEMETRY.span("data.build_taskset", split=str(config.split)):
        taskset = backend.build_taskset(split=config.split)
    if use_cache:
        while len(_TASKSET_CACHE) >= _TASKSET_CACHE_MAX:
            _TASKSET_CACHE.pop(next(iter(_TASKSET_CACHE)))
        _TASKSET_CACHE[key] = taskset
    return taskset
