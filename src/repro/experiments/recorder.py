"""Persistence of experiment results and the paper's reference numbers.

Each ``run_table*`` function returns an :class:`ExperimentResult`; the
recorder can save it as JSON next to the repository's EXPERIMENTS.md so that
paper-vs-measured tables can be regenerated at any time.

``PAPER_REFERENCE`` stores the headline numbers from the paper's tables so
the renderers can print them side by side with the measured values.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..obs import RunRecord, save_run_record

__all__ = ["ExperimentResult", "save_result", "load_result", "PAPER_REFERENCE"]


@dataclass
class ExperimentResult:
    """A table (or figure) worth of reproduced results."""

    experiment: str
    rows: list[dict]
    rendered: str
    metadata: dict = field(default_factory=dict)
    #: Provenance + telemetry of the run that produced this result, when
    #: the producing pipeline collected one (serve / scenario runs do).
    run_record: RunRecord | None = None

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        state = {
            "experiment": self.experiment,
            "rows": _jsonable(self.rows),
            "rendered": self.rendered,
            "metadata": _jsonable(self.metadata),
        }
        if self.run_record is not None:
            state["run_record"] = self.run_record.to_dict()
        return state


def _jsonable(value):
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, float) and np.isnan(value):
        return None
    return value


def save_result(result: ExperimentResult, directory: str | Path) -> Path:
    """Write the result to ``<directory>/<experiment>.json`` and return the path.

    When the result carries a :class:`~repro.obs.RunRecord`, a standalone
    copy is written alongside as ``<experiment>.runrecord.json`` — either
    file feeds ``repro stats``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.experiment}.json"
    with path.open("w") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
    if result.run_record is not None:
        save_run_record(
            result.run_record, directory / f"{result.experiment}.runrecord.json"
        )
    return path


def load_result(path: str | Path) -> ExperimentResult:
    """Load a previously saved result."""
    with Path(path).open() as handle:
        payload = json.load(handle)
    embedded = payload.get("run_record")
    return ExperimentResult(
        experiment=payload["experiment"],
        rows=payload["rows"],
        rendered=payload["rendered"],
        metadata=payload.get("metadata", {}),
        run_record=RunRecord.from_dict(embedded) if embedded else None,
    )


#: Headline values from the paper, used for side-by-side reporting.
PAPER_REFERENCE: dict[str, list[dict]] = {
    "table1": [
        {"alpha": "alpha_D_0", "sharpe": 4.111784, "ic": 0.013159, "correlation": None},
        {"alpha": "alpha_AE_D_0", "sharpe": 21.323797, "ic": 0.067358, "correlation": 0.030301},
        {"alpha": "alpha_G_0", "sharpe": 13.034052, "ic": 0.048853, "correlation": -0.103120},
    ],
    "table2": [
        {"alpha": "alpha_AE_D_0", "sharpe": 21.323797, "ic": 0.067358},
        {"alpha": "alpha_G_0", "sharpe": 13.034052, "ic": 0.048853},
        {"alpha": "alpha_AE_D_1", "sharpe": 13.580572, "ic": 0.056703},
        {"alpha": "alpha_G_1", "sharpe": 4.407823, "ic": 0.037521},
        {"alpha": "alpha_AE_D_2", "sharpe": 15.067808, "ic": 0.052464},
        {"alpha": "alpha_G_2", "sharpe": -1.936161, "ic": 0.000779},
        {"alpha": "alpha_AE_D_3", "sharpe": 4.901069, "ic": 0.028437},
        {"alpha": "alpha_G_3", "sharpe": -1.971355, "ic": 0.000000},
        {"alpha": "alpha_AE_B0_4", "sharpe": 9.502871, "ic": 0.032155},
        {"alpha": "alpha_G_4", "sharpe": None, "ic": None},
    ],
    "table4": [
        {"alpha": "alpha_AE_D_0", "sharpe": 21.323797, "ic": 0.067358},
        {"alpha": "alpha_AE_D_0_P", "sharpe": 21.516798, "ic": 0.057707},
        {"alpha": "alpha_AE_R_2", "sharpe": 18.629571, "ic": 0.066962},
        {"alpha": "alpha_AE_R_2_P", "sharpe": -0.344734, "ic": 0.003149},
        {"alpha": "alpha_AE_D_3", "sharpe": 4.901069, "ic": 0.028437},
        {"alpha": "alpha_AE_D_3_P", "sharpe": 5.697408, "ic": 0.026347},
        {"alpha": "alpha_AE_B0_4", "sharpe": 9.502871, "ic": 0.032155},
        {"alpha": "alpha_AE_B0_4_P", "sharpe": -0.004294, "ic": -0.001908},
    ],
    "table5": [
        {"alpha": "alpha_AE_D_0", "sharpe": 21.323797, "ic": 0.067358},
        {"alpha": "alpha_AE_NN_1", "sharpe": 14.175835, "ic": 0.065209},
        {"alpha": "Rank_LSTM", "sharpe": 5.385036, "ic": 0.027490},
        {"alpha": "RSR", "sharpe": 5.647131, "ic": 0.018623},
    ],
    "table6": [
        {"alpha": "alpha_AE_D_0", "searched": 309700},
        {"alpha": "alpha_AE_D_0_N", "searched": 19500},
        {"alpha": "alpha_AE_NN_1", "searched": 1032700},
        {"alpha": "alpha_AE_NN_1_N", "searched": 5700},
        {"alpha": "alpha_AE_R_2", "searched": 429800},
        {"alpha": "alpha_AE_R_2_N", "searched": 13200},
        {"alpha": "alpha_AE_D_3", "searched": 910100},
        {"alpha": "alpha_AE_D_3_N", "searched": 37900},
        {"alpha": "alpha_AE_B0_4", "searched": 220100},
        {"alpha": "alpha_AE_B0_4_N", "searched": 17300},
    ],
}
