"""Experiment runners regenerating every table and figure of the paper.

Each ``run_table*`` / ``run_figure6`` function builds (or reuses) the
synthetic task set for the requested :class:`ExperimentConfig`, runs the
corresponding protocol and returns an :class:`ExperimentResult` whose rows
mirror the paper's table layout.  The benchmark harness under ``benchmarks/``
calls these functions one-to-one.

The heavy lifting is shared by two protocol classes:

* :class:`MiningStudy`   — the multi-round, multi-initialisation AlphaEvolve
  protocol of Section 5.4.1 (used by Tables 2, 3, 4, 6 and Figure 6);
* :class:`GeneticStudy`  — the same protocol applied to the genetic-programming
  baseline (used by Tables 1 and 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backtest.engine import BacktestEngine
from ..core.correlation import CorrelationFilter
from ..core.evolution import EvolutionConfig
from ..core.initializations import get_initialization
from ..core.mining import MinedAlpha, MiningSession
from ..core.ops import Dimensions
from ..data.dataset import TaskSet
from ..baselines.genetic import GeneticAlphaMiner, GeneticConfig
from ..baselines.neural import TrainingConfig, train_rank_lstm, train_rsr
from ..baselines.neural.rank_lstm import grid_search_rank_lstm
from ..errors import ConfigurationError
from .configs import ExperimentConfig, LAPTOP, make_taskset
from .recorder import ExperimentResult
from .tables import format_mean_std, render_table

__all__ = [
    "MiningStudy",
    "GeneticStudy",
    "RoundRecord",
    "run_study",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_figure6",
    "run_all",
]

_TABLE_COLUMNS = [
    ("alpha", "Alpha"),
    ("sharpe", "Sharpe ratio"),
    ("ic", "IC"),
    ("correlation", "Correlation with the best alphas"),
]


# ---------------------------------------------------------------------------
# AlphaEvolve multi-round protocol
# ---------------------------------------------------------------------------

@dataclass
class RoundRecord:
    """Results of one mining round: every initialisation plus the accepted best."""

    round_index: int
    results: dict[str, MinedAlpha]
    best_code: str

    @property
    def best(self) -> MinedAlpha:
        """The alpha accepted into the mined set ``A`` for this round."""
        return self.results[self.best_code]


class MiningStudy:
    """Runs the Section 5.4.1 protocol for AlphaEvolve.

    Per round, one evolutionary search is launched per initialisation (with
    the accumulated correlation cutoffs); the alpha with the highest Sharpe
    ratio is accepted into ``A``.  In the last round the accepted alphas are
    used as initialisations (the ``B0..B3`` rows of Tables 2/3).
    """

    def __init__(
        self,
        config: ExperimentConfig = LAPTOP,
        taskset: TaskSet | None = None,
        initializations: tuple[str, ...] = ("D", "NOOP", "R", "NN"),
        use_pruning: bool = True,
        use_time_budget: bool = False,
    ) -> None:
        if not initializations:
            raise ConfigurationError("at least one initialisation is required")
        self.config = config
        self.taskset = taskset if taskset is not None else make_taskset(config)
        self.initializations = initializations
        self.use_pruning = use_pruning
        if use_time_budget:
            evolution_config = config.evolution_config(
                max_candidates=10**9,
                max_seconds=config.round_time_budget_seconds,
                use_pruning=use_pruning,
            )
        else:
            evolution_config = config.evolution_config(use_pruning=use_pruning)
        self.session = MiningSession(
            self.taskset,
            evolution_config=evolution_config,
            correlation_cutoff=config.correlation_cutoff,
            long_k=config.long_positions,
            short_k=config.short_positions,
            max_train_steps=config.max_train_steps,
            seed=config.search_seed,
            checkpoint_dir=config.checkpoint_dir,
        )
        self.dims = Dimensions(self.taskset.num_features, self.taskset.window)
        self.rounds: list[RoundRecord] = []

    # ------------------------------------------------------------------
    def _round_initializations(self, round_index: int, num_rounds: int) -> dict[str, object]:
        last_round = round_index == num_rounds - 1 and num_rounds > 1
        if last_round and self.session.accepted:
            return {
                f"B{i}": alpha.program
                for i, alpha in enumerate(self.session.accepted)
            }
        return {
            code: get_initialization(code, self.dims, seed=self.config.search_seed + round_index)
            for code in self.initializations
        }

    def run(self, num_rounds: int | None = None) -> list[RoundRecord]:
        """Execute the full multi-round protocol and return one record per round."""
        num_rounds = num_rounds or self.config.num_rounds
        self.rounds = []
        for round_index in range(num_rounds):
            results: dict[str, MinedAlpha] = {}
            for code, program in self._round_initializations(round_index, num_rounds).items():
                name = f"alpha_AE_{code}_{round_index}"
                results[code] = self.session.search(
                    program,
                    name=name,
                    enforce_cutoff=bool(self.session.accepted),
                )
            best_code = max(results, key=lambda code: results[code].sharpe)
            record = RoundRecord(round_index=round_index, results=results, best_code=best_code)
            self.session.accept(record.best)
            self.rounds.append(record)
        return self.rounds

    # ------------------------------------------------------------------
    def rows(self, codes: tuple[str, ...] | None = None) -> list[dict]:
        """Table rows (Tables 2/3 layout) for the requested initialisation codes."""
        rows: list[dict] = []
        for record in self.rounds:
            for code, mined in record.results.items():
                if codes is not None and code not in codes and not code.startswith("B"):
                    continue
                rows.append(
                    {
                        "alpha": mined.name,
                        "sharpe": mined.sharpe,
                        "ic": mined.ic,
                        "correlation": mined.correlation_with_accepted,
                        "round": record.round_index,
                        "initialization": code,
                        "best": code == record.best_code,
                        "searched": mined.extras.get("searched_alphas"),
                        "evaluated": mined.extras.get("evaluated_alphas"),
                    }
                )
        return rows

    def best_per_round(self) -> list[MinedAlpha]:
        """The accepted (best) alpha of every round — the mined set ``A``."""
        return [record.best for record in self.rounds]


# ---------------------------------------------------------------------------
# Genetic-programming multi-round protocol
# ---------------------------------------------------------------------------

@dataclass
class GeneticRound:
    """One mining round of the GP baseline."""

    round_index: int
    name: str
    sharpe: float
    ic: float
    correlation: float
    valid_returns: np.ndarray
    skipped: bool = False


class GeneticStudy:
    """The same weakly-correlated mining protocol applied to the GP baseline.

    As in the paper, the search for a later round is abandoned (reported NA)
    after two consecutive rounds with very poor performance.
    """

    def __init__(
        self,
        config: ExperimentConfig = LAPTOP,
        taskset: TaskSet | None = None,
        stop_after_bad_rounds: int = 2,
        bad_sharpe_threshold: float = 0.0,
        use_time_budget: bool = False,
    ) -> None:
        self.config = config
        self.taskset = taskset if taskset is not None else make_taskset(config)
        self.engine = BacktestEngine(
            self.taskset, long_k=config.long_positions, short_k=config.short_positions
        )
        self.stop_after_bad_rounds = stop_after_bad_rounds
        self.bad_sharpe_threshold = bad_sharpe_threshold
        self.use_time_budget = use_time_budget
        self.rounds: list[GeneticRound] = []

    def _genetic_config(self) -> GeneticConfig:
        if self.use_time_budget:
            return GeneticConfig(
                population_size=self.config.gp_population_size,
                tournament_size=self.config.tournament_size,
                max_candidates=None,
                max_seconds=self.config.round_time_budget_seconds,
            )
        return GeneticConfig(
            population_size=self.config.gp_population_size,
            tournament_size=self.config.tournament_size,
            max_candidates=self.config.gp_max_candidates,
        )

    def _run_round(self, round_index: int, correlation_filter: CorrelationFilter | None,
                   seed: int) -> GeneticRound:
        miner = GeneticAlphaMiner(
            self.taskset,
            self._genetic_config(),
            correlation_filter=correlation_filter,
            backtest_engine=self.engine,
            seed=seed,
        )
        result = miner.run()
        name = f"alpha_G_{round_index}"
        valid_predictions = miner.evaluate_tree(result.best.tree, "valid")
        test_predictions = miner.evaluate_tree(result.best.tree, "test")
        valid_returns = self.engine.portfolio_returns(valid_predictions, split="valid")
        backtest = self.engine.evaluate(test_predictions, split="test", name=name)
        correlation = (
            correlation_filter.max_correlation(valid_returns)
            if correlation_filter is not None and correlation_filter.num_references
            else float("nan")
        )
        return GeneticRound(
            round_index=round_index,
            name=name,
            sharpe=backtest.sharpe,
            ic=backtest.ic,
            correlation=correlation,
            valid_returns=valid_returns,
        )

    def run(self, num_rounds: int | None = None) -> list[GeneticRound]:
        """Run the GP baseline for ``num_rounds`` rounds with accumulating cutoffs."""
        num_rounds = num_rounds or self.config.num_rounds
        self.rounds = []
        correlation_filter = CorrelationFilter(cutoff=self.config.correlation_cutoff)
        consecutive_bad = 0
        for round_index in range(num_rounds):
            if consecutive_bad >= self.stop_after_bad_rounds:
                self.rounds.append(
                    GeneticRound(
                        round_index=round_index,
                        name=f"alpha_G_{round_index}",
                        sharpe=float("nan"),
                        ic=float("nan"),
                        correlation=float("nan"),
                        valid_returns=np.empty(0),
                        skipped=True,
                    )
                )
                continue
            round_result = self._run_round(
                round_index,
                correlation_filter if correlation_filter.num_references else None,
                seed=self.config.search_seed + 100 + round_index,
            )
            self.rounds.append(round_result)
            correlation_filter.add_reference(round_result.name, round_result.valid_returns)
            if round_result.sharpe < self.bad_sharpe_threshold:
                consecutive_bad += 1
            else:
                consecutive_bad = 0
        return self.rounds

    def rows(self) -> list[dict]:
        """Table rows for every GP round."""
        return [
            {
                "alpha": record.name,
                "sharpe": record.sharpe,
                "ic": record.ic,
                "correlation": record.correlation,
                "round": record.round_index,
                "skipped": record.skipped,
            }
            for record in self.rounds
        ]


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def run_table1(config: ExperimentConfig = LAPTOP) -> ExperimentResult:
    """Table 1: mining a weakly correlated alpha against an existing expert alpha."""
    taskset = make_taskset(config)
    session = MiningSession(
        taskset,
        evolution_config=config.evolution_config(),
        correlation_cutoff=config.correlation_cutoff,
        long_k=config.long_positions,
        short_k=config.short_positions,
        max_train_steps=config.max_train_steps,
        seed=config.search_seed,
        checkpoint_dir=config.checkpoint_dir,
    )
    dims = Dimensions(taskset.num_features, taskset.window)

    expert = session.evaluate_alpha(get_initialization("D", dims), name="alpha_D_0")
    # AlphaEvolve and the GP baseline get the same wall-clock budget per
    # round, as in the paper (60 hours there, a few seconds at laptop scale).
    time_budgeted = config.evolution_config(
        max_candidates=10**9, max_seconds=config.round_time_budget_seconds
    )
    evolved = session.search(
        get_initialization("D", dims), name="alpha_AE_D_0", enforce_cutoff=False,
        evolution_config=time_budgeted,
    )

    genetic_study = GeneticStudy(config, taskset=taskset, use_time_budget=True)
    genetic_round = genetic_study._run_round(0, None, seed=config.search_seed + 100)

    reference = CorrelationFilter(cutoff=config.correlation_cutoff)
    reference.add_reference("alpha_D_0", expert.valid_returns)
    rows = [
        {"alpha": "alpha_D_0", "sharpe": expert.sharpe, "ic": expert.ic,
         "correlation": float("nan")},
        {"alpha": "alpha_AE_D_0", "sharpe": evolved.sharpe, "ic": evolved.ic,
         "correlation": reference.max_correlation(evolved.valid_returns)},
        {"alpha": "alpha_G_0", "sharpe": genetic_round.sharpe, "ic": genetic_round.ic,
         "correlation": reference.max_correlation(genetic_round.valid_returns)},
    ]
    columns = list(_TABLE_COLUMNS)
    columns[-1] = ("correlation", "Correlation with the existing alpha")
    rendered = render_table(rows, columns, title="Table 1: mining with an existing expert alpha")
    return ExperimentResult("table1", rows, rendered, metadata={"config": config.name})


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------

def run_table2(config: ExperimentConfig = LAPTOP) -> ExperimentResult:
    """Table 2: weakly correlated mining, AlphaEvolve (D init) vs. the GP baseline."""
    taskset = make_taskset(config)
    study = MiningStudy(config, taskset=taskset, initializations=("D",), use_time_budget=True)
    study.run(config.num_rounds)
    genetic_study = GeneticStudy(config, taskset=taskset, use_time_budget=True)
    genetic_study.run(config.num_rounds)

    rows: list[dict] = []
    ae_by_round = {record.round_index: record.best for record in study.rounds}
    gp_by_round = {record.round_index: record for record in genetic_study.rounds}
    for round_index in range(config.num_rounds):
        ae = ae_by_round.get(round_index)
        if ae is not None:
            rows.append({"alpha": ae.name, "sharpe": ae.sharpe, "ic": ae.ic,
                         "correlation": ae.correlation_with_accepted})
        gp = gp_by_round.get(round_index)
        if gp is not None:
            rows.append({"alpha": gp.name,
                         "sharpe": None if gp.skipped else gp.sharpe,
                         "ic": None if gp.skipped else gp.ic,
                         "correlation": None if gp.skipped else gp.correlation})
    rendered = render_table(rows, _TABLE_COLUMNS,
                            title="Table 2: weakly correlated alpha mining (AE vs GP)")
    return ExperimentResult("table2", rows, rendered, metadata={"config": config.name})


# ---------------------------------------------------------------------------
# Table 3 (and the shared study used by Tables 4/6 and Figure 6)
# ---------------------------------------------------------------------------

def run_study(config: ExperimentConfig = LAPTOP,
              initializations: tuple[str, ...] = ("D", "NOOP", "R", "NN")) -> MiningStudy:
    """Run the full multi-initialisation protocol once and return the study."""
    study = MiningStudy(config, initializations=initializations)
    study.run(config.num_rounds)
    return study


def run_table3(config: ExperimentConfig = LAPTOP,
               study: MiningStudy | None = None) -> ExperimentResult:
    """Table 3: weakly correlated mining across the four initialisations."""
    study = study or run_study(config)
    rows = study.rows()
    rendered = render_table(rows, _TABLE_COLUMNS,
                            title="Table 3: mining for different initializations")
    return ExperimentResult(
        "table3", rows, rendered,
        metadata={"config": config.name,
                  "best_per_round": [alpha.name for alpha in study.best_per_round()]},
    )


# ---------------------------------------------------------------------------
# Table 4: parameter-updating ablation
# ---------------------------------------------------------------------------

def run_table4(config: ExperimentConfig = LAPTOP,
               study: MiningStudy | None = None) -> ExperimentResult:
    """Table 4: ablation of the parameter-updating function on the best alphas."""
    study = study or run_study(config)
    rows: list[dict] = []
    for mined in study.best_per_round():
        rows.append({"alpha": mined.name, "sharpe": mined.sharpe, "ic": mined.ic,
                     "correlation": mined.correlation_with_accepted})
        ablated = study.session.evaluate_alpha(
            mined.program, name=f"{mined.name}_P", use_update=False
        )
        rows.append({"alpha": ablated.name, "sharpe": ablated.sharpe, "ic": ablated.ic,
                     "correlation": ablated.correlation_with_accepted})
    rendered = render_table(rows, _TABLE_COLUMNS,
                            title="Table 4: ablation of the parameter-updating function")
    return ExperimentResult("table4", rows, rendered, metadata={"config": config.name})


# ---------------------------------------------------------------------------
# Table 5: comparison with the complex machine-learning alphas
# ---------------------------------------------------------------------------

def run_table5(config: ExperimentConfig = LAPTOP) -> ExperimentResult:
    """Table 5: AlphaEvolve alphas vs. Rank_LSTM and RSR (mean ± std over seeds)."""
    taskset = make_taskset(config)
    session = MiningSession(
        taskset,
        evolution_config=config.evolution_config(),
        correlation_cutoff=config.correlation_cutoff,
        long_k=config.long_positions,
        short_k=config.short_positions,
        max_train_steps=config.max_train_steps,
        seed=config.search_seed,
        checkpoint_dir=config.checkpoint_dir,
    )
    dims = Dimensions(taskset.num_features, taskset.window)
    engine = session.engine

    evolved_d = session.search(get_initialization("D", dims), name="alpha_AE_D_0",
                               enforce_cutoff=False)
    session.accept(evolved_d)
    evolved_nn = session.search(get_initialization("NN", dims), name="alpha_AE_NN_1",
                                enforce_cutoff=True)

    # Grid search for Rank_LSTM on the validation IC, then 5-seed reporting.
    grid = grid_search_rank_lstm(
        taskset,
        sequence_lengths=config.nn_sequence_lengths,
        hidden_sizes=config.nn_hidden_sizes,
        loss_alphas=config.nn_loss_alphas,
        epochs=config.nn_epochs,
        seed=config.search_seed,
    )
    best = grid.best_config
    lstm_sharpes, lstm_ics, rsr_sharpes, rsr_ics = [], [], [], []
    for seed_offset in range(config.nn_num_seeds):
        seeded = TrainingConfig(
            sequence_length=best.sequence_length,
            hidden_size=best.hidden_size,
            loss_alpha=best.loss_alpha,
            learning_rate=best.learning_rate,
            epochs=config.nn_epochs,
            batch_days=config.nn_batch_days,
            seed=config.search_seed + seed_offset,
        )
        model, outcome = train_rank_lstm(taskset, seeded)
        lstm_backtest = engine.evaluate(outcome.predictions["test"], split="test",
                                        name="Rank_LSTM")
        lstm_sharpes.append(lstm_backtest.sharpe)
        lstm_ics.append(lstm_backtest.ic)
        _, rsr_outcome = train_rsr(taskset, model, seeded)
        rsr_backtest = engine.evaluate(rsr_outcome.predictions["test"], split="test",
                                       name="RSR")
        rsr_sharpes.append(rsr_backtest.sharpe)
        rsr_ics.append(rsr_backtest.ic)

    rows = [
        {"alpha": "alpha_AE_D_0", "sharpe": evolved_d.sharpe, "ic": evolved_d.ic},
        {"alpha": "alpha_AE_NN_1", "sharpe": evolved_nn.sharpe, "ic": evolved_nn.ic},
        {
            "alpha": "Rank_LSTM",
            "sharpe": float(np.mean(lstm_sharpes)),
            "ic": float(np.mean(lstm_ics)),
            "sharpe_std": float(np.std(lstm_sharpes)),
            "ic_std": float(np.std(lstm_ics)),
            "display_sharpe": format_mean_std(np.mean(lstm_sharpes), np.std(lstm_sharpes)),
            "display_ic": format_mean_std(np.mean(lstm_ics), np.std(lstm_ics)),
        },
        {
            "alpha": "RSR",
            "sharpe": float(np.mean(rsr_sharpes)),
            "ic": float(np.mean(rsr_ics)),
            "sharpe_std": float(np.std(rsr_sharpes)),
            "ic_std": float(np.std(rsr_ics)),
            "display_sharpe": format_mean_std(np.mean(rsr_sharpes), np.std(rsr_sharpes)),
            "display_ic": format_mean_std(np.mean(rsr_ics), np.std(rsr_ics)),
        },
    ]
    rendered = render_table(
        rows, [("alpha", "Alpha"), ("sharpe", "Sharpe ratio"), ("ic", "IC")],
        title="Table 5: comparison with the complex machine learning alphas",
    )
    metadata = {
        "config": config.name,
        "grid_best": {
            "sequence_length": best.sequence_length,
            "hidden_size": best.hidden_size,
            "loss_alpha": best.loss_alpha,
        },
    }
    return ExperimentResult("table5", rows, rendered, metadata=metadata)


# ---------------------------------------------------------------------------
# Table 6: pruning-technique efficiency
# ---------------------------------------------------------------------------

def run_table6(config: ExperimentConfig = LAPTOP,
               initializations: tuple[str, ...] = ("D", "NN", "R")) -> ExperimentResult:
    """Table 6: number of searched alphas with / without the pruning technique.

    Both variants get the same wall-clock budget
    (``config.pruning_time_budget_seconds``); the ``*_N`` rows disable the
    prune-before-evaluate fingerprinting, so every candidate pays the full
    evaluation cost, and far fewer candidates are searched.
    """
    taskset = make_taskset(config)
    dims = Dimensions(taskset.num_features, taskset.window)
    rows: list[dict] = []
    for index, code in enumerate(initializations):
        for use_pruning in (True, False):
            session = MiningSession(
                taskset,
                evolution_config=EvolutionConfig(
                    population_size=config.population_size,
                    tournament_size=config.tournament_size,
                    max_candidates=None,
                    max_seconds=config.pruning_time_budget_seconds,
                    use_pruning=use_pruning,
                    num_workers=config.num_workers,
                    num_islands=config.num_islands,
                    scheduler=config.scheduler,
                ),
                correlation_cutoff=config.correlation_cutoff,
                long_k=config.long_positions,
                short_k=config.short_positions,
                max_train_steps=config.max_train_steps,
                seed=config.search_seed + index,
                checkpoint_dir=config.checkpoint_dir,
            )
            suffix = "" if use_pruning else "_N"
            name = f"alpha_AE_{code}_{index}{suffix}"
            mined = session.search(
                get_initialization(code, dims, seed=config.search_seed + index),
                name=name,
                enforce_cutoff=False,
            )
            rows.append(
                {
                    "alpha": name,
                    "sharpe": mined.sharpe,
                    "ic": mined.ic,
                    "correlation": mined.correlation_with_accepted,
                    "searched": int(mined.extras["searched_alphas"]),
                    "evaluated": int(mined.extras["evaluated_alphas"]),
                    "pruning": use_pruning,
                }
            )
    columns = _TABLE_COLUMNS + [("searched", "Number of searched alphas")]
    rendered = render_table(rows, columns, title="Table 6: efficiency of the pruning technique")
    return ExperimentResult("table6", rows, rendered, metadata={"config": config.name})


# ---------------------------------------------------------------------------
# Figure 6: evolutionary trajectories
# ---------------------------------------------------------------------------

def run_figure6(config: ExperimentConfig = LAPTOP,
                study: MiningStudy | None = None) -> ExperimentResult:
    """Figure 6: best-validation-IC trajectories of the best alpha of each round."""
    study = study or run_study(config)
    rows: list[dict] = []
    series: dict[str, list[list[float]]] = {}
    for record in study.rounds:
        best = record.best
        trajectory = best.evolution.trajectory if best.evolution is not None else []
        points = [[point.candidates, point.best_fitness] for point in trajectory]
        series[best.name] = points
        milestones = _trajectory_milestones(points)
        rows.append({"alpha": best.name, **milestones})
    columns = [("alpha", "Alpha")] + [
        (f"at_{percent}", f"best IC @ {percent}% budget") for percent in (25, 50, 75, 100)
    ]
    rendered = render_table(rows, columns, title="Figure 6: evolutionary trajectories")
    return ExperimentResult("figure6", rows, rendered,
                            metadata={"config": config.name, "series": series})


def _trajectory_milestones(points: list[list[float]]) -> dict[str, float]:
    if not points:
        return {f"at_{p}": float("nan") for p in (25, 50, 75, 100)}
    total = points[-1][0]
    milestones = {}
    for percent in (25, 50, 75, 100):
        threshold = total * percent / 100.0
        reached = [fitness for candidates, fitness in points if candidates <= threshold]
        milestones[f"at_{percent}"] = reached[-1] if reached else points[0][1]
    return milestones


# ---------------------------------------------------------------------------
# Convenience: run everything
# ---------------------------------------------------------------------------

def run_all(config: ExperimentConfig = LAPTOP) -> dict[str, ExperimentResult]:
    """Run every table and figure once (sharing the heavy multi-round study)."""
    study = run_study(config)
    return {
        "table1": run_table1(config),
        "table2": run_table2(config),
        "table3": run_table3(config, study=study),
        "table4": run_table4(config, study=study),
        "table5": run_table5(config),
        "table6": run_table6(config),
        "figure6": run_figure6(config, study=study),
    }
