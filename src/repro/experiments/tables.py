"""Plain-text table rendering in the style of the paper's result tables."""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

__all__ = ["format_value", "format_mean_std", "render_table"]


def format_value(value, decimals: int = 6) -> str:
    """Render one cell: floats with fixed decimals, NaN as ``NA``."""
    if value is None:
        return "NA"
    if isinstance(value, float):
        if np.isnan(value):
            return "NA"
        return f"{value:.{decimals}f}"
    return str(value)


def format_mean_std(mean: float, std: float, decimals: int = 6) -> str:
    """Render a ``mean+/-std`` cell as in Table 5."""
    return f"{format_value(float(mean), decimals)}+/-{format_value(float(std), decimals)}"


def render_table(
    rows: Iterable[Mapping[str, object]],
    columns: list[tuple[str, str]],
    title: str | None = None,
    decimals: int = 6,
) -> str:
    """Render ``rows`` as an aligned text table.

    ``columns`` is a list of ``(key, header)`` pairs; missing keys render as
    ``NA``.  The output mirrors the layout of the paper's tables so that
    paper-vs-measured comparisons in EXPERIMENTS.md are easy to eyeball.
    """
    rows = list(rows)
    headers = [header for _, header in columns]
    body = [
        [format_value(row.get(key), decimals) for key, _ in columns]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in body)) if body else len(headers[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for line in body:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)
