"""Unified telemetry: metrics registry, span tracer, run provenance.

The observability layer every other subsystem reports through (see
``docs/OBSERVABILITY.md`` for conventions and a guide):

* :mod:`repro.obs.metrics`    — named counters, gauges and bounded-memory
  histograms (p50/p95/p99 from a fixed-size reservoir) in one
  :class:`MetricsRegistry` with a JSON snapshot;
* :mod:`repro.obs.trace`      — a span-based :class:`Tracer` producing the
  hierarchical timing tree of a run, the process-wide :data:`TELEMETRY`
  switchboard (near-zero overhead while disabled) and structured events on
  stdlib ``logging``;
* :mod:`repro.obs.provenance` — the versioned :class:`RunRecord` (config
  hash, data key, engine, git describe, host, phases, metric snapshot,
  span tree) written alongside every serve/scenario result and rendered by
  ``repro stats``.

Telemetry is strictly *observational*: enabling it changes no prediction
bit on any execution path (interpreter, compiled loop, time-batched,
fleet) — a contract asserted by ``tests/obs/test_obs_parity.py`` and gated in
CI by ``benchmarks/bench_obs.py --smoke``, which also bounds the
disabled-path overhead.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_instrument_table,
)
from .provenance import (
    RunRecord,
    build_run_record,
    config_hash,
    git_describe,
    host_info,
    load_run_record,
    render_run_record,
    save_run_record,
)
from .trace import (
    Span,
    TELEMETRY,
    Telemetry,
    Tracer,
    get_telemetry,
    log_event,
    render_span_tree,
    telemetry_session,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunRecord",
    "Span",
    "TELEMETRY",
    "Telemetry",
    "Tracer",
    "build_run_record",
    "config_hash",
    "get_telemetry",
    "git_describe",
    "host_info",
    "load_run_record",
    "log_event",
    "render_instrument_table",
    "render_run_record",
    "render_span_tree",
    "save_run_record",
    "telemetry_session",
]
