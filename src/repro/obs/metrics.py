"""Process-local metrics: named counters, gauges and bounded histograms.

Every subsystem in this repository reports *what it did* through one
:class:`MetricsRegistry` of named instruments (see ``docs/OBSERVABILITY.md``
for the naming conventions).  Three instrument kinds exist:

* :class:`Counter` — a monotonically increasing integer (candidates scored,
  cache hits, kernel calls);
* :class:`Gauge` — a last-value-wins float (candidates per second, cache
  hit-rate);
* :class:`Histogram` — a value distribution with **bounded** memory: exact
  ``count``/``total``/``min``/``max`` plus a fixed-size reservoir sample
  that percentiles (p50/p95/p99) are computed from.  Memory never grows
  with the number of observations, so a histogram can absorb a
  year-long serving stream without leaking — this is what replaced the
  unbounded ``AlphaServer.bar_latencies`` list.

Determinism and parity: instruments only *observe*.  The reservoir's
eviction choices come from a private :class:`random.Random` seeded from the
instrument name, so recording a measurement can never perturb NumPy's (or
any evaluator's) random state — telemetry on/off is bitwise-invisible to
every execution path, a contract enforced by
``tests/obs/test_obs_parity.py`` and ``benchmarks/bench_obs.py``.

The registry snapshot (:meth:`MetricsRegistry.snapshot`) is plain
JSON-serialisable dicts; it is what lands in every
:class:`~repro.obs.provenance.RunRecord` and ``BENCH_*.json`` telemetry
block.
"""

from __future__ import annotations

import math
import random
import zlib

from ..errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_instrument_table",
]

#: Default reservoir bound of a :class:`Histogram`.
DEFAULT_RESERVOIR_SIZE = 1024

#: The percentiles every histogram snapshot reports.
SNAPSHOT_PERCENTILES = (50, 95, 99)


class Instrument:
    """Base class of all instruments: a name plus a snapshot contract."""

    kind = "instrument"

    def __init__(self, name: str) -> None:
        if not name or any(ch.isspace() for ch in name):
            raise ObservabilityError(
                f"instrument names must be non-empty and contain no "
                f"whitespace, got {name!r}"
            )
        self.name = name

    def snapshot(self) -> dict:
        """JSON-serialisable state of this instrument."""
        raise NotImplementedError


class Counter(Instrument):
    """A monotonically increasing integer count."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.value = 0

    def inc(self, amount: int = 1) -> int:
        """Add ``amount`` (>= 0) and return the new value."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += int(amount)
        return self.value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge(Instrument):
    """A last-value-wins measurement (a rate, a ratio, a size)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.value = 0.0

    def set(self, value: float) -> float:
        """Record the current value and return it."""
        self.value = float(value)
        return self.value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram(Instrument):
    """A bounded-memory value distribution.

    ``count``, ``total``, ``min`` and ``max`` are exact over *all*
    observations; percentiles come from a reservoir sample of at most
    ``reservoir_size`` values (algorithm R), so memory is O(reservoir_size)
    no matter how long the stream runs.  While the stream is shorter than
    the reservoir, percentiles (and :attr:`values`) are exact too.
    """

    kind = "histogram"

    def __init__(self, name: str,
                 reservoir_size: int = DEFAULT_RESERVOIR_SIZE) -> None:
        super().__init__(name)
        if reservoir_size < 1:
            raise ObservabilityError(
                f"histogram {name!r} needs a positive reservoir size"
            )
        self.reservoir_size = int(reservoir_size)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: list[float] = []
        # Private PRNG: eviction decisions must never touch global random
        # state (parity!), and seeding from the name keeps runs repeatable.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one measurement."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Exact mean over every observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def values(self) -> list[float]:
        """The reservoir sample, in arrival order (bounded)."""
        return list(self._reservoir)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile of the reservoir (0.0 when empty).

        Linear interpolation between closest ranks, matching
        ``numpy.percentile``'s default — but computed on the bounded
        reservoir, without NumPy.
        """
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        weight = rank - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    def snapshot(self) -> dict:
        state = {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "reservoir_size": self.reservoir_size,
        }
        for p in SNAPSHOT_PERCENTILES:
            state[f"p{p}"] = self.percentile(p)
        return state


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as one dict.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call under a name creates the instrument, later calls return the same
    object, and asking for a different kind under an existing name raises
    (one name, one meaning).  Iteration order is creation order.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, cls: type, **kwargs) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, **kwargs)
            self._instruments[name] = instrument
            return instrument
        if not isinstance(instrument, cls):
            raise ObservabilityError(
                f"instrument {name!r} is a {instrument.kind}, not a "
                f"{cls.kind}; pick a distinct name per instrument kind"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  reservoir_size: int = DEFAULT_RESERVOIR_SIZE) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get_or_create(name, Histogram,
                                   reservoir_size=reservoir_size)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list[str]:
        """Instrument names, in creation order."""
        return list(self._instruments)

    def get(self, name: str) -> Instrument | None:
        """The instrument named ``name``, or ``None``."""
        return self._instruments.get(name)

    def snapshot(self) -> dict[str, dict]:
        """name → instrument state, JSON-serialisable, in creation order."""
        return {
            name: instrument.snapshot()
            for name, instrument in self._instruments.items()
        }

    def reset(self) -> None:
        """Drop every instrument (a fresh run starts from nothing)."""
        self._instruments.clear()


def render_instrument_table(snapshot: dict[str, dict]) -> str:
    """A printable table of one registry snapshot (``repro stats``)."""
    if not snapshot:
        return "(no instruments recorded)"
    header = ("instrument", "type", "value")
    rows = [header]
    for name in sorted(snapshot):
        state = snapshot[name]
        kind = state.get("type", "?")
        if kind == "histogram":
            value = (
                f"count={state['count']} mean={state['mean']:.6g} "
                f"p50={state['p50']:.6g} p95={state['p95']:.6g} "
                f"p99={state['p99']:.6g} max={state['max']:.6g}"
            )
        else:
            raw = state.get("value", 0)
            value = f"{raw:.6g}" if isinstance(raw, float) else str(raw)
        rows.append((name, kind, value))
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)
