"""Run provenance: one versioned record of *what ran*.

A :class:`RunRecord` is the durable footprint of one mine → compile → serve
run: the configuration (name + content hash), the data identity (the
backend's cache key), the execution engine, the code version (git
describe), host facts, the per-phase wall-clock breakdown, the full metric
snapshot and the span tree.  It is written alongside every
``ExperimentResult``/scenario JSON (``<experiment>.runrecord.json``) and
dumped on demand via ``--telemetry <path>``; ``repro stats <record.json>``
renders it back as a span tree plus an instrument table.

The shape follows the constants-DB pattern of the related CLEO work: one
shared, versioned record consumed identically by online serving and offline
analysis, so a result can always answer "what produced you?" without
replaying the run.

Everything here is stdlib-only and JSON-round-trip safe
(:func:`save_run_record` / :func:`load_run_record` are inverses, a tested
contract).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
from dataclasses import dataclass, field, fields as dataclass_fields, is_dataclass
from pathlib import Path

from ..errors import ObservabilityError
from .metrics import render_instrument_table
from .trace import TELEMETRY, Telemetry, render_span_tree

__all__ = [
    "RunRecord",
    "build_run_record",
    "config_hash",
    "git_describe",
    "host_info",
    "load_run_record",
    "render_run_record",
    "save_run_record",
]

#: Bumped whenever the record layout changes incompatibly.
RUN_RECORD_VERSION = 1


def config_hash(config) -> str:
    """A stable content hash of a configuration object.

    Dataclasses hash their sorted ``(field, repr(value))`` pairs, anything
    else the ``repr`` of the object itself — enough to tell two runs apart
    without serialising every nested structure.
    """
    if is_dataclass(config) and not isinstance(config, type):
        payload = repr(sorted(
            (spec.name, repr(getattr(config, spec.name)))
            for spec in dataclass_fields(config)
        ))
    else:
        payload = repr(config)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def git_describe() -> str | None:
    """``git describe --always --dirty`` of this checkout, or ``None``.

    Provenance must never fail a run: any error (no git binary, not a
    repository, timeout) degrades to ``None``.
    """
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def host_info() -> dict:
    """Facts about the machine a record was produced on."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
    }


@dataclass
class RunRecord:
    """Provenance + telemetry of one run (see the module docstring)."""

    experiment: str
    config_name: str = ""
    config_hash: str = ""
    data_key: str = ""
    engine: str = ""
    git: str | None = None
    host: dict = field(default_factory=dict)
    phase_seconds: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    metadata: dict = field(default_factory=dict)
    version: int = RUN_RECORD_VERSION

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation (the on-disk layout)."""
        return {
            "version": self.version,
            "experiment": self.experiment,
            "config_name": self.config_name,
            "config_hash": self.config_hash,
            "data_key": self.data_key,
            "engine": self.engine,
            "git": self.git,
            "host": dict(self.host),
            "phase_seconds": dict(self.phase_seconds),
            "metrics": self.metrics,
            "spans": self.spans,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        version = payload.get("version", RUN_RECORD_VERSION)
        if version != RUN_RECORD_VERSION:
            raise ObservabilityError(
                f"run record has version {version}, this build reads "
                f"version {RUN_RECORD_VERSION}"
            )
        return cls(
            experiment=payload.get("experiment", ""),
            config_name=payload.get("config_name", ""),
            config_hash=payload.get("config_hash", ""),
            data_key=payload.get("data_key", ""),
            engine=payload.get("engine", ""),
            git=payload.get("git"),
            host=payload.get("host", {}),
            phase_seconds=payload.get("phase_seconds", {}),
            metrics=payload.get("metrics", {}),
            spans=payload.get("spans", []),
            metadata=payload.get("metadata", {}),
            version=version,
        )


def build_run_record(
    experiment: str,
    config=None,
    data_key: str = "",
    engine: str = "",
    phase_seconds: dict | None = None,
    metadata: dict | None = None,
    telemetry: Telemetry | None = None,
) -> RunRecord:
    """Assemble a :class:`RunRecord` from a run's context and telemetry.

    ``config`` contributes its ``name`` attribute (when present) and its
    :func:`config_hash`; the metric snapshot and span tree come from
    ``telemetry`` (default: the process-wide :data:`~repro.obs.TELEMETRY`).
    """
    telemetry = TELEMETRY if telemetry is None else telemetry
    return RunRecord(
        experiment=experiment,
        config_name=getattr(config, "name", "") if config is not None else "",
        config_hash=config_hash(config) if config is not None else "",
        data_key=data_key,
        engine=engine,
        git=git_describe(),
        host=host_info(),
        phase_seconds=dict(phase_seconds or {}),
        metrics=telemetry.snapshot(),
        spans=telemetry.tracer.tree(),
        metadata=dict(metadata or {}),
    )


def save_run_record(record: RunRecord, path: str | Path) -> Path:
    """Write ``record`` as JSON to ``path`` (parents created) and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    return path


def load_run_record(path: str | Path) -> RunRecord:
    """Load a record written by :func:`save_run_record`.

    Also accepts an ``ExperimentResult`` JSON that embeds a record under a
    top-level ``"run_record"`` key, so ``repro stats`` works on either
    artifact.
    """
    payload = json.loads(Path(path).read_text())
    if "run_record" in payload and "spans" not in payload:
        embedded = payload["run_record"]
        if not isinstance(embedded, dict):
            raise ObservabilityError(
                f"{path}: 'run_record' is not an object"
            )
        payload = embedded
    if "spans" not in payload and "metrics" not in payload:
        raise ObservabilityError(
            f"{path} is neither a run record nor a result JSON embedding one"
        )
    return RunRecord.from_dict(payload)


def render_run_record(record: RunRecord) -> str:
    """The printable report of ``repro stats``: provenance, phases, spans,
    instruments."""
    lines = [f"# run record: {record.experiment}"]
    for label, value in (
        ("config", record.config_name),
        ("config hash", record.config_hash[:16] if record.config_hash else ""),
        ("data key", record.data_key),
        ("engine", record.engine),
        ("git", record.git or ""),
    ):
        if value:
            lines.append(f"{label}: {value}")
    host = record.host or {}
    if host:
        lines.append(
            "host: "
            + ", ".join(f"{key}={value}" for key, value in sorted(host.items()))
        )
    if record.phase_seconds:
        lines.append("")
        lines.append("## phases")
        total = sum(record.phase_seconds.values())
        for phase, seconds in record.phase_seconds.items():
            share = (seconds / total * 100.0) if total > 0 else 0.0
            lines.append(f"{phase:<10} {seconds:>10.3f} s  ({share:.1f}%)")
        lines.append(f"{'total':<10} {total:>10.3f} s")
    lines.append("")
    lines.append("## span tree")
    lines.append(render_span_tree(record.spans))
    lines.append("")
    lines.append("## instruments")
    lines.append(render_instrument_table(record.metrics))
    return "\n".join(lines)
