"""Span-based tracing plus the process-wide telemetry switchboard.

A *span* is one timed region of work with a name, optional attributes and
children — ``with trace.span("compile.passes", program=fp):`` — and the
spans of a run form a tree that mirrors the mine → compile → serve
pipeline.  The tracer is exception-safe (a span closes and records its
elapsed time even when its body raises, tagging itself ``error``) and
**near-zero overhead when disabled**: a disabled ``span()`` call is one
attribute check plus the return of a shared no-op context manager — no
allocation, no clock read.

:class:`Telemetry` bundles the tracer with a
:class:`~repro.obs.metrics.MetricsRegistry` and an enabled flag behind one
process-wide instance, :data:`TELEMETRY`.  Instrumented hot paths guard
with ``if TELEMETRY.enabled:`` so the disabled cost is a single boolean
test per *stage* (never per day or per element); enabling changes timings
only, never results — bitwise parity on/off is a tested contract.

:func:`telemetry_session` is how runs collect: it resets the registry and
tracer, enables telemetry for the ``with`` body, and restores the previous
state afterwards.  Sessions are re-entrancy safe — an inner session inside
an already enabled outer one is a passthrough, so ``run_scenario`` can wrap
``run_serve`` without wiping its own instruments.

Structured events ride on stdlib :mod:`logging` (logger ``repro.obs``):
:func:`log_event` emits one ``key=value`` formatted record per call, only
while telemetry is enabled, so operators can wire the event stream into any
logging backend without this package growing an I/O layer.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager

from .metrics import MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "Telemetry",
    "TELEMETRY",
    "get_telemetry",
    "telemetry_session",
    "log_event",
    "render_span_tree",
]

#: The structured-event logger; attach handlers/levels like any stdlib logger.
EVENT_LOGGER = logging.getLogger("repro.obs")


class Span:
    """One timed region: name, attributes, elapsed seconds and children."""

    __slots__ = ("name", "attrs", "seconds", "children", "error", "_started")

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.seconds = 0.0
        self.children: list[Span] = []
        self.error = False
        self._started = 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable form (what a RunRecord stores)."""
        state: dict = {"name": self.name, "seconds": self.seconds}
        if self.attrs:
            state["attrs"] = dict(self.attrs)
        if self.error:
            state["error"] = True
        if self.children:
            state["children"] = [child.to_dict() for child in self.children]
        return state


class _NullSpan:
    """The shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that opens/closes one :class:`Span` on a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._open(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.error = exc_type is not None
        self._tracer._close(self._span)
        return None  # never swallow the exception


class Tracer:
    """Builds the span tree of one run.

    Spans nest by runtime containment: a span opened while another is
    active becomes its child.  Closing is exception-safe and order-checked
    (spans are strictly LIFO, which the context-manager protocol
    guarantees).
    """

    def __init__(self) -> None:
        self.enabled = False
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """A context manager timing ``name``; no-op while disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, Span(name, attrs))

    def _open(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        span._started = time.perf_counter()

    def _close(self, span: Span) -> None:
        span.seconds = time.perf_counter() - span._started
        # Exception safety: unwind to *this* span even if a child was left
        # open (e.g. its body raised straight through a bare yield).
        while self._stack:
            if self._stack.pop() is span:
                break

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def tree(self) -> list[dict]:
        """The completed span tree as JSON-serialisable dicts."""
        return [span.to_dict() for span in self.roots]

    def reset(self) -> None:
        """Drop all recorded spans (open spans included)."""
        self.roots = []
        self._stack = []


def render_span_tree(tree: list[dict], indent: int = 0) -> str:
    """A printable rendering of :meth:`Tracer.tree` (``repro stats``)."""
    if not tree and indent == 0:
        return "(no spans recorded)"
    lines: list[str] = []
    for node in tree:
        attrs = node.get("attrs") or {}
        suffix = "".join(
            f" {key}={value}" for key, value in attrs.items()
        )
        if node.get("error"):
            suffix += " [error]"
        lines.append(
            f"{'  ' * indent}{node['name']}  "
            f"{node.get('seconds', 0.0) * 1e3:.3f} ms{suffix}"
        )
        children = node.get("children") or []
        if children:
            lines.append(render_span_tree(children, indent + 1))
    return "\n".join(lines)


class Telemetry:
    """The registry + tracer pair behind one enabled flag.

    Instrumented code holds a reference to the process-wide
    :data:`TELEMETRY` and guards every recording with
    ``if TELEMETRY.enabled:`` — one boolean test on the disabled path.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.tracer = Tracer()

    # ------------------------------------------------------------------
    def enable(self) -> None:
        """Turn recording on (idempotent)."""
        self.enabled = True
        self.tracer.enabled = True

    def disable(self) -> None:
        """Turn recording off (idempotent); recorded data is kept."""
        self.enabled = False
        self.tracer.enabled = False

    def reset(self) -> None:
        """Drop every instrument and span (the enabled flag is kept)."""
        self.registry.reset()
        self.tracer.reset()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """A tracer span (no-op context manager while disabled)."""
        return self.tracer.span(name, **attrs)

    def counter(self, name: str):
        """The registry counter named ``name``."""
        return self.registry.counter(name)

    def gauge(self, name: str):
        """The registry gauge named ``name``."""
        return self.registry.gauge(name)

    def histogram(self, name: str, **kwargs):
        """The registry histogram named ``name``."""
        return self.registry.histogram(name, **kwargs)

    def snapshot(self) -> dict[str, dict]:
        """The registry snapshot (name → instrument state)."""
        return self.registry.snapshot()


#: The process-wide telemetry instance every instrumented module consults.
TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-wide :class:`Telemetry` instance."""
    return TELEMETRY


@contextmanager
def telemetry_session(enabled: bool = True):
    """Collect telemetry for one run: reset, enable, restore on exit.

    Yields :data:`TELEMETRY`.  Re-entrant: when telemetry is *already*
    enabled (an outer session is collecting), the inner session is a pure
    passthrough — it neither resets nor disables, so nested pipelines
    (scenario → serve) aggregate into one record.  With ``enabled=False``
    the session only guarantees telemetry is off for the body.
    """
    if enabled and TELEMETRY.enabled:
        yield TELEMETRY
        return
    previous = TELEMETRY.enabled
    if enabled:
        TELEMETRY.reset()
        TELEMETRY.enable()
    else:
        TELEMETRY.disable()
    try:
        yield TELEMETRY
    finally:
        TELEMETRY.enable() if previous else TELEMETRY.disable()


def log_event(event: str, **fields) -> None:
    """Emit one structured ``key=value`` event on the ``repro.obs`` logger.

    Events are only emitted while telemetry is enabled, and formatting cost
    is deferred to the logging framework's lazy ``%s`` interpolation — an
    unhandled event costs one enabled check.
    """
    if not TELEMETRY.enabled:
        return
    EVENT_LOGGER.info(
        "%s", " ".join(
            [event] + [f"{key}={value}" for key, value in fields.items()]
        )
    )
