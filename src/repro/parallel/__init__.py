"""Parallel alpha-search subsystem.

The paper evaluates candidate alphas on a fleet of workers for 60-hour
search rounds; this package reproduces that architecture on one machine:

* :mod:`repro.parallel.pool`       — a process pool that evaluates candidate
  batches concurrently, shipping the task-set arrays to workers once;
* :mod:`repro.parallel.islands`    — an island-model controller running
  several regularised-evolution populations with ring migration;
* :mod:`repro.parallel.checkpoint` — atomic checkpoint/resume of the full
  search state, so long runs survive restarts.

The subsystem plugs into :class:`repro.core.mining.MiningSession` through
``EvolutionConfig(num_workers=..., num_islands=...)`` and the CLI flags
``--workers`` / ``--islands`` / ``--checkpoint``.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointManager,
    SearchCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from .islands import (
    Island,
    IslandConfig,
    IslandEvolutionController,
    IslandEvolutionResult,
)
from .pool import EvaluationPool, PoolEvaluation, PoolSpec

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointManager",
    "EvaluationPool",
    "Island",
    "IslandConfig",
    "IslandEvolutionController",
    "IslandEvolutionResult",
    "PoolEvaluation",
    "PoolSpec",
    "SearchCheckpoint",
    "load_checkpoint",
    "save_checkpoint",
]
