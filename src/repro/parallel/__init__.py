"""Parallel alpha-search subsystem.

The paper evaluates candidate alphas on a fleet of workers for 60-hour
search rounds; this package reproduces that architecture on one machine:

* :mod:`repro.parallel.shm`        — zero-copy shared feature/label panels
  (``multiprocessing.shared_memory``) with content-signature attach guards
  and unlink-on-every-exit-path cleanup;
* :mod:`repro.parallel.pool`       — a process pool that evaluates
  signature-grouped candidate batches concurrently over the shared panel,
  restarting workers and requeueing lost batches after crashes;
* :mod:`repro.parallel.islands`    — an island-model controller running
  several regularised-evolution populations with ring migration, with an
  optional overlap scheduler that hides migration behind worker dispatch;
* :mod:`repro.parallel.checkpoint` — atomic checkpoint/resume of the full
  search state, so long runs survive restarts.

The subsystem plugs into :class:`repro.core.mining.MiningSession` through
``EvolutionConfig(num_workers=..., num_islands=..., scheduler=...)`` and the
CLI flags ``--workers`` / ``--islands`` / ``--scheduler`` / ``--checkpoint``.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointManager,
    SearchCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from .islands import (
    Island,
    IslandConfig,
    IslandEvolutionController,
    IslandEvolutionResult,
)
from .pool import EvaluationPool, PendingEvaluations, PoolEvaluation, PoolSpec
from .shm import (
    SEGMENT_PREFIX,
    SharedPanelHandle,
    SharedPanelStore,
    panel_signature,
    shared_segment_names,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointManager",
    "EvaluationPool",
    "Island",
    "IslandConfig",
    "IslandEvolutionController",
    "IslandEvolutionResult",
    "PendingEvaluations",
    "PoolEvaluation",
    "PoolSpec",
    "SEGMENT_PREFIX",
    "SearchCheckpoint",
    "SharedPanelHandle",
    "SharedPanelStore",
    "load_checkpoint",
    "panel_signature",
    "save_checkpoint",
    "shared_segment_names",
]
