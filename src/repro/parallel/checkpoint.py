"""Checkpoint/resume for long-running searches.

The paper runs 60-hour search rounds; at that scale a restart must not throw
away days of work.  :func:`save_checkpoint` serialises the full search state
— island populations, per-island RNG and mutator states, the fingerprint
cache with its statistics, the best-so-far candidate and the trajectory —
with :mod:`pickle`, atomically (write to a temporary file, then
``os.replace``), so a crash mid-write never corrupts the previous
checkpoint.

The heavyweight, *reconstructible* objects — the task set, the evaluator and
the worker pool — are deliberately not part of the checkpoint: the resuming
process rebuilds them from its own configuration, which also means a
checkpoint taken with one worker count can be resumed with another.

Each save re-serialises the whole state, so checkpoint size and save time
grow with the number of searched candidates (the fingerprint cache and the
trajectory dominate).  For very long runs, raise ``checkpoint_interval`` so
the save cost stays small next to the evaluation work between saves; an
incremental (append-only) cache log is the natural next step if that ever
becomes the bottleneck.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field

from ..errors import CheckpointError, ConfigurationError

__all__ = [
    "CHECKPOINT_VERSION",
    "SearchCheckpoint",
    "atomic_pickle_save",
    "load_pickle",
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointManager",
]

#: Bumped whenever the checkpoint layout changes incompatibly.
CHECKPOINT_VERSION = 1


@dataclass
class SearchCheckpoint:
    """Full state of an island-model search at one point in time.

    ``islands`` holds :class:`repro.parallel.islands.Island` objects —
    populations, tournament RNGs and mutators included — and ``config_echo``
    records the search hyper-parameters the state depends on, so a resume
    under a different configuration fails loudly instead of silently
    diverging.  Budgets (``max_candidates`` / ``max_seconds``) are *not*
    echoed: resuming with an extended budget is the point of checkpointing.
    """

    version: int
    candidates_generated: int
    step: int
    migrations: int
    elapsed_seconds: float
    cache: object
    islands: list
    best_ever: object
    trajectory: list
    initial_key: str
    config_echo: dict = field(default_factory=dict)


def atomic_pickle_save(path: str, obj: object,
                       error_cls: type[Exception] = CheckpointError,
                       what: str = "checkpoint") -> None:
    """Crash-safe pickle write: dump to ``<path>.tmp``, then ``os.replace``.

    A crash mid-write never corrupts a previous file at ``path``.  Shared by
    the search checkpoints here and the streaming state snapshots
    (:mod:`repro.stream.state`); ``error_cls``/``what`` keep each caller's
    error surface (``CheckpointError`` vs ``StreamError``).
    """
    directory = os.path.dirname(os.path.abspath(path))
    temp_path = f"{path}.tmp"
    try:
        os.makedirs(directory, exist_ok=True)
        with open(temp_path, "wb") as handle:
            pickle.dump(obj, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp_path, path)
    except OSError as exc:
        raise error_cls(f"cannot write {what} to {path!r}: {exc}") from exc
    finally:
        if os.path.exists(temp_path):  # pragma: no cover - only on failed replace
            os.unlink(temp_path)


def load_pickle(path: str, error_cls: type[Exception] = CheckpointError,
                what: str = "checkpoint") -> object:
    """Load a pickle written by :func:`atomic_pickle_save`."""
    if not os.path.exists(path):
        raise error_cls(f"no {what} found at {path!r}")
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError, OSError) as exc:
        raise error_cls(f"cannot read {what} {path!r}: {exc}") from exc


def save_checkpoint(path: str, checkpoint: SearchCheckpoint) -> None:
    """Atomically write ``checkpoint`` to ``path``."""
    atomic_pickle_save(path, checkpoint)


def load_checkpoint(path: str) -> SearchCheckpoint:
    """Load and validate a checkpoint written by :func:`save_checkpoint`."""
    state = load_pickle(path)
    if not isinstance(state, SearchCheckpoint):
        raise CheckpointError(
            f"{path!r} does not contain a search checkpoint "
            f"(got {type(state).__name__})"
        )
    if state.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has version {state.version}, "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    return state


class CheckpointManager:
    """Decides *when* to checkpoint and performs the saves/loads.

    A checkpoint becomes due every ``interval`` searched candidates; the
    first save after construction (or resume) is always due, so a freshly
    restarted run re-establishes its on-disk state quickly.
    """

    def __init__(self, path: str, interval: int = 500) -> None:
        if interval < 1:
            raise ConfigurationError("checkpoint interval must be at least 1")
        self.path = str(path)
        self.interval = interval
        self._last_saved: int | None = None

    # ------------------------------------------------------------------
    def exists(self) -> bool:
        """Whether a checkpoint file is present on disk."""
        return os.path.exists(self.path)

    def due(self, candidates_generated: int) -> bool:
        """Whether enough candidates were searched since the last save."""
        if self._last_saved is None:
            return True
        return candidates_generated - self._last_saved >= self.interval

    # ------------------------------------------------------------------
    def save(self, checkpoint: SearchCheckpoint) -> None:
        """Persist ``checkpoint`` and remember its candidate count."""
        save_checkpoint(self.path, checkpoint)
        self._last_saved = checkpoint.candidates_generated

    def load(self) -> SearchCheckpoint:
        """Load the checkpoint and align the save cadence with its state."""
        checkpoint = load_checkpoint(self.path)
        self._last_saved = None
        return checkpoint
