"""Island-model evolutionary search with periodic best-candidate migration.

Instead of one aging population, the search runs ``M`` independent
regularised-evolution populations ("islands"), each with its own tournament
RNG and mutator stream.  Every main-loop step each island proposes one child
(tournament → mutate), and the ``M`` proposals are scored as one batch
through the shared :class:`~repro.core.evolution.CandidateScorer` — which is
what lets a :class:`~repro.parallel.pool.EvaluationPool` evaluate them
concurrently.  Every ``migration_interval`` steps the islands exchange their
best candidates along a ring (island ``i`` receives from island ``i-1``),
replacing their worst members, so good genetic material spreads without
collapsing the scenario diversity that independent populations provide.

The controller mirrors the paper's distributed search loop: a fleet of
evaluation workers, several concurrent populations, and checkpoints so a
60-hour round survives restarts (:mod:`repro.parallel.checkpoint`).  Budgets
and results are expressed exactly as in the serial
:class:`~repro.core.evolution.EvolutionController`, so the two controllers
are drop-in interchangeable for :class:`~repro.core.mining.MiningSession`.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..backtest.engine import BacktestEngine
from ..config import AddressSpace, DEFAULT_ADDRESS_SPACE, make_rng
from ..core.correlation import CorrelationFilter
from ..core.evolution import (
    Candidate,
    CandidateScorer,
    EvolutionConfig,
    EvolutionResult,
    TrajectoryPoint,
)
from ..core.fitness import INVALID_FITNESS
from ..core.interpreter import AlphaEvaluator
from ..core.mutation import MutationConfig, Mutator
from ..core.ops import Dimensions
from ..core.program import AlphaProgram, ComponentLimits
from ..errors import CheckpointError, EvolutionError
from .checkpoint import CHECKPOINT_VERSION, CheckpointManager, SearchCheckpoint
from .pool import EvaluationPool

__all__ = ["IslandConfig", "Island", "IslandEvolutionResult", "IslandEvolutionController"]


@dataclass(frozen=True)
class IslandConfig:
    """Topology parameters of the island model.

    ``migration_interval`` counts main-loop steps (one step = one child per
    island); ``migration_size`` is how many of the donor island's best
    candidates are offered to its ring neighbour at each migration.
    """

    num_islands: int = 4
    migration_interval: int = 25
    migration_size: int = 1

    def __post_init__(self) -> None:
        if self.num_islands < 1:
            raise EvolutionError("num_islands must be at least 1")
        if self.migration_interval < 1:
            raise EvolutionError("migration_interval must be at least 1")
        if self.migration_size < 1:
            raise EvolutionError("migration_size must be at least 1")


@dataclass
class Island:
    """One independent population with its own RNG and mutation stream."""

    index: int
    population: deque
    rng: np.random.Generator
    mutator: Mutator

    @property
    def best(self) -> Candidate:
        """The fittest member of the population (first of equals)."""
        return max(self.population, key=lambda candidate: candidate.fitness)


@dataclass
class IslandEvolutionResult(EvolutionResult):
    """An :class:`EvolutionResult` plus island-level diagnostics."""

    num_islands: int = 1
    migrations: int = 0
    island_best_fitness: list[float] = field(default_factory=list)


class IslandEvolutionController:
    """Runs ``M`` regularised-evolution islands over one shared scorer.

    Parameters
    ----------
    evaluator:
        Scores cache misses when no ``pool`` is given; its seed should match
        the pool's ``evaluator_seed`` so serial and pooled runs agree.
    dims:
        Problem dimensions used to build the per-island mutators.
    config:
        The usual evolutionary hyper-parameters; ``population_size`` and the
        tournament apply per island, the budget is global across islands.
        ``config.scheduler`` picks the main-loop strategy: ``"barrier"``
        (score → migrate strictly in turn) or ``"overlap"`` (migration runs
        while the pool evaluates; see :meth:`_main_phase_overlap`).
    island_config:
        Topology; defaults to ``IslandConfig(num_islands=config.num_islands)``.
    seed / mutation_seed:
        ``seed`` drives the per-island tournament RNGs, ``mutation_seed``
        (defaulting to the same stream) the per-island mutators.
    pool:
        Optional :class:`EvaluationPool`; per-step proposal batches are then
        evaluated by worker processes.  Results are identical with or
        without a pool (and for any worker count).
    checkpoint_path / checkpoint_interval:
        When a path is given, the full search state is checkpointed every
        ``checkpoint_interval`` searched candidates and once more at the
        end; :meth:`run` can resume from it.
    """

    def __init__(
        self,
        evaluator: AlphaEvaluator,
        dims: Dimensions,
        config: EvolutionConfig | None = None,
        island_config: IslandConfig | None = None,
        mutation_config: MutationConfig | None = None,
        address_space: AddressSpace = DEFAULT_ADDRESS_SPACE,
        limits: ComponentLimits | None = None,
        correlation_filter: CorrelationFilter | None = None,
        backtest_engine: BacktestEngine | None = None,
        seed: int | np.random.Generator | None = None,
        mutation_seed: int | np.random.Generator | None = None,
        pool: EvaluationPool | None = None,
        checkpoint_path: str | None = None,
        checkpoint_interval: int = 500,
    ) -> None:
        self.evaluator = evaluator
        self.dims = dims
        self.config = config or EvolutionConfig()
        self.scheduler = self.config.scheduler
        self.island_config = island_config or IslandConfig(
            num_islands=self.config.num_islands
        )
        self.mutation_config = mutation_config or MutationConfig()
        self.address_space = address_space
        self.limits = limits
        self.rng = make_rng(seed)
        self._mutation_rng = self.rng if mutation_seed is None else make_rng(mutation_seed)
        # Integer seeds identify the search for the checkpoint configuration
        # echo; generator/None seeds have no stable identity to compare.
        self._seed_echo = int(seed) if isinstance(seed, (int, np.integer)) else "external"
        self._mutation_seed_echo = (
            int(mutation_seed)
            if isinstance(mutation_seed, (int, np.integer))
            else "external"
        )
        self.scorer = CandidateScorer(
            evaluator,
            correlation_filter=correlation_filter,
            backtest_engine=backtest_engine,
            use_pruning=self.config.use_pruning,
            pool=pool,
        )
        self.checkpoint = (
            CheckpointManager(checkpoint_path, interval=checkpoint_interval)
            if checkpoint_path is not None
            else None
        )
        self.islands: list[Island] = []
        self._step = 0
        self._migrations = 0
        self._best_ever: Candidate | None = None
        self._trajectory: list[TrajectoryPoint] = []
        self._elapsed_offset = 0.0
        self._start_time = 0.0
        self._initial_program: AlphaProgram | None = None

    # ------------------------------------------------------------------
    # Run / resume entry point
    # ------------------------------------------------------------------
    def run(
        self, initial_program: AlphaProgram, resume: bool | None = None
    ) -> IslandEvolutionResult:
        """Evolve ``initial_program`` on all islands until the budget runs out.

        ``resume=None`` (the default) resumes automatically when a
        checkpoint file exists at the configured path; ``resume=True``
        requires one; ``resume=False`` always starts fresh.  A resumed run
        continues bit-for-bit where the checkpointed one stopped, so a
        killed search finishes with the same best program as an
        uninterrupted run under the same seed and worker count.
        """
        if resume is None:
            resume = self.checkpoint is not None and self.checkpoint.exists()
        self._start_time = time.perf_counter()
        self._initial_program = initial_program
        if resume:
            if self.checkpoint is None:
                raise CheckpointError(
                    "cannot resume: no checkpoint path was configured"
                )
            self._restore(self.checkpoint.load(), initial_program)
        else:
            self._fresh_start(initial_program)
        self._seed_phase(initial_program)
        self._main_phase()
        if self.checkpoint is not None:
            self._save_checkpoint()
        return self._result()

    # ------------------------------------------------------------------
    # State initialisation and restoration
    # ------------------------------------------------------------------
    def _fresh_start(self, initial_program: AlphaProgram) -> None:
        self.scorer.reset()
        self._step = 0
        self._migrations = 0
        self._best_ever = None
        self._trajectory = []
        self._elapsed_offset = 0.0
        num_islands = self.island_config.num_islands
        mutator_seeds = self._mutation_rng.integers(0, 2**63 - 1, size=num_islands)
        rng_seeds = self.rng.integers(0, 2**63 - 1, size=num_islands)
        self.islands = [
            Island(
                index=index,
                population=deque(),
                rng=np.random.default_rng(int(rng_seeds[index])),
                mutator=Mutator(
                    self.dims,
                    address_space=self.address_space,
                    limits=self.limits,
                    config=self.mutation_config,
                    seed=int(mutator_seeds[index]),
                ),
            )
            for index in range(num_islands)
        ]
        # The initial parent is scored once and shared by every island, just
        # as the serial controller scores it once.
        root = Candidate(
            program=initial_program,
            report=self.scorer.score(initial_program),
            born_at=self.scorer.candidates_generated,
        )
        for island in self.islands:
            island.population.append(root)
        self._register(root)

    def _config_echo(self) -> dict:
        return {
            "population_size": self.config.population_size,
            "tournament_size": self.config.tournament_size,
            "use_pruning": self.config.use_pruning,
            "num_islands": self.island_config.num_islands,
            "migration_interval": self.island_config.migration_interval,
            "migration_size": self.island_config.migration_size,
            # The overlap scheduler applies migrations one step later, so
            # two schedulers walk different search paths from the first
            # migration on; resuming across them would silently diverge.
            "scheduler": self.scheduler,
            "seed": self._seed_echo,
            "mutation_seed": self._mutation_seed_echo,
            "evaluator_base_seed": self.evaluator.base_seed,
            "max_train_steps": self.evaluator.max_train_steps,
            "use_update": self.evaluator.use_update,
            # Cached reports embed cutoff decisions, so the cutoff and the
            # accepted reference series are part of the search's identity.
            "correlation": (
                self.scorer.correlation_filter.fingerprint()
                if self.scorer.correlation_filter is not None
                else None
            ),
        }

    def _restore(self, state: SearchCheckpoint, initial_program: AlphaProgram) -> None:
        # Accept the historical (non-canonical) key too, so checkpoints taken
        # before structural_key canonicalised commutative operands resume.
        accepted_keys = {
            initial_program.structural_key(),
            initial_program.structural_key(canonical=False),
        }
        if state.initial_key not in accepted_keys:
            raise CheckpointError(
                "checkpoint was taken for a different initial program; "
                "resume with the same initial alpha or start fresh"
            )
        echo = self._config_echo()
        if state.config_echo != echo:
            changed = sorted(
                key for key in set(echo) | set(state.config_echo)
                if echo.get(key) != state.config_echo.get(key)
            )
            raise CheckpointError(
                f"checkpoint configuration differs from this controller's "
                f"({', '.join(changed)}); resuming would silently diverge"
            )
        self.islands = state.islands
        self.scorer.cache = state.cache
        self.scorer.candidates_generated = state.candidates_generated
        self._step = state.step
        self._migrations = state.migrations
        self._best_ever = state.best_ever
        self._trajectory = list(state.trajectory)
        self._elapsed_offset = state.elapsed_seconds

    # ------------------------------------------------------------------
    # Budget / bookkeeping helpers
    # ------------------------------------------------------------------
    def _elapsed(self) -> float:
        return self._elapsed_offset + (time.perf_counter() - self._start_time)

    def _budget_exhausted(self) -> bool:
        config = self.config
        if config.max_candidates is not None and \
                self.scorer.candidates_generated >= config.max_candidates:
            return True
        if config.max_seconds is not None and self._elapsed() >= config.max_seconds:
            return True
        return False

    def _remaining_candidates(self) -> int | None:
        if self.config.max_candidates is None:
            return None
        return max(0, self.config.max_candidates - self.scorer.candidates_generated)

    def _register(self, candidate: Candidate) -> None:
        if self._best_ever is None or candidate.fitness > self._best_ever.fitness:
            self._best_ever = candidate
        self._trajectory.append(
            TrajectoryPoint(
                candidates=self.scorer.candidates_generated,
                evaluations=self.scorer.cache.stats.evaluated,
                best_fitness=self._best_ever.fitness,
                elapsed_seconds=self._elapsed(),
            )
        )

    def _maybe_checkpoint(self) -> None:
        if self.checkpoint is not None and \
                self.checkpoint.due(self.scorer.candidates_generated):
            self._save_checkpoint()

    def _save_checkpoint(self) -> None:
        self.checkpoint.save(
            SearchCheckpoint(
                version=CHECKPOINT_VERSION,
                candidates_generated=self.scorer.candidates_generated,
                step=self._step,
                migrations=self._migrations,
                elapsed_seconds=self._elapsed(),
                cache=self.scorer.cache,
                islands=self.islands,
                best_ever=self._best_ever,
                trajectory=list(self._trajectory),
                initial_key=self._initial_program.structural_key(),
                config_echo=self._config_echo(),
            )
        )

    # ------------------------------------------------------------------
    # Search phases
    # ------------------------------------------------------------------
    def _seed_phase(self, initial_program: AlphaProgram) -> None:
        """Fill every island's population by mutating the initial parent."""
        target = self.config.population_size
        while not self._budget_exhausted():
            needy = [isl for isl in self.islands if len(isl.population) < target]
            if not needy:
                break
            remaining = self._remaining_candidates()
            if remaining is not None:
                needy = needy[:remaining]
            programs = [island.mutator.mutate(initial_program) for island in needy]
            reports = self.scorer.score_batch(programs)
            for island, program, report in zip(needy, programs, reports):
                child = Candidate(
                    program=program,
                    report=report,
                    born_at=self.scorer.candidates_generated,
                )
                island.population.append(child)
                self._register(child)
            self._maybe_checkpoint()

    def _propose(self, active: list[Island]) -> list[AlphaProgram]:
        """Draw one tournament → mutate proposal per active island."""
        config = self.config
        proposals = []
        for island in active:
            population = island.population
            indices = island.rng.choice(
                len(population),
                size=min(config.tournament_size, len(population)),
                replace=False,
            )
            parent = max(
                (population[int(i)] for i in indices),
                key=lambda candidate: candidate.fitness,
            )
            proposals.append(island.mutator.mutate(parent.program))
        return proposals

    def _insert(self, active: list[Island], proposals: list[AlphaProgram],
                reports: list) -> None:
        """Age each active island by its scored child."""
        for island, program, report in zip(active, proposals, reports):
            child = Candidate(
                program=program,
                report=report,
                born_at=self.scorer.candidates_generated,
            )
            island.population.append(child)
            island.population.popleft()
            self._register(child)

    def _active_islands(self) -> list[Island]:
        active = self.islands
        remaining = self._remaining_candidates()
        if remaining is not None:
            active = active[:remaining]
        return active

    def _main_phase(self) -> None:
        """Tournament → mutate → batch-score → age, one child per island."""
        if self.scheduler == "overlap":
            self._main_phase_overlap()
        else:
            self._main_phase_barrier()

    def _main_phase_barrier(self) -> None:
        while not self._budget_exhausted():
            active = self._active_islands()
            proposals = self._propose(active)
            reports = self.scorer.score_batch(proposals)
            self._insert(active, proposals, reports)
            self._step += 1
            if len(self.islands) > 1 and \
                    self._step % self.island_config.migration_interval == 0:
                self._migrate()
            self._maybe_checkpoint()

    def _main_phase_overlap(self) -> None:
        """Like the barrier loop, but migration hides behind evaluation.

        Each step dispatches the proposal batch asynchronously
        (:meth:`~repro.core.evolution.CandidateScorer.score_batch_async`)
        and performs any due ring migration *between* the dispatch and the
        collect, so with an evaluation pool attached the migration cost
        disappears behind the workers' wall clock.  The proposals of step
        ``t+1`` are therefore drawn before the migration due at step ``t``
        is applied: migrants enter tournaments one step later than under
        the barrier scheduler, a deliberate (and deterministic) semantic
        difference — which is why the scheduler is part of the search's
        checkpoint configuration echo.  Checkpoints still happen only at
        the step boundary, after the collect, so kill-and-resume stays
        bit-for-bit.

        ``pending`` is recomputed from checkpointed state on entry (a
        migration is pending exactly when fewer migrations ran than steps
        completed per interval), so resumed runs continue exactly where the
        schedule left off.  A migration still pending when the budget runs
        out is dropped, as harmless as the one due on the very last barrier
        step.
        """
        interval = self.island_config.migration_interval
        pending = self._migrations < self._step // interval
        while not self._budget_exhausted():
            active = self._active_islands()
            proposals = self._propose(active)
            handle = self.scorer.score_batch_async(proposals)
            if pending and len(self.islands) > 1:
                self._migrate()
            pending = False
            reports = handle.result()
            self._insert(active, proposals, reports)
            self._step += 1
            if len(self.islands) > 1 and self._step % interval == 0:
                pending = True
            self._maybe_checkpoint()

    def _migrate(self) -> None:
        """Ring migration: island ``i`` receives island ``i-1``'s best.

        A migrant replaces the receiving island's worst member, and only if
        it is fitter and not already present, so population sizes are
        invariant and clones do not pile up.
        """
        size = self.island_config.migration_size
        offers = []
        for island in self.islands:
            ranked = sorted(
                island.population,
                key=lambda candidate: candidate.fitness,
                reverse=True,
            )
            offers.append(ranked[:size])
        for index, island in enumerate(self.islands):
            migrants = offers[(index - 1) % len(self.islands)]
            members = list(island.population)
            for migrant in migrants:
                if any(member.program == migrant.program for member in members):
                    continue
                worst = min(
                    range(len(members)), key=lambda j: members[j].fitness
                )
                if migrant.fitness <= members[worst].fitness:
                    continue
                members[worst] = migrant
            island.population = deque(members)
        self._migrations += 1

    # ------------------------------------------------------------------
    def _result(self) -> IslandEvolutionResult:
        candidates = [
            candidate for island in self.islands for candidate in island.population
        ]
        best_in_population = max(candidates, key=lambda candidate: candidate.fitness)
        best = best_in_population
        if best.fitness <= INVALID_FITNESS and self._best_ever is not None:
            best = self._best_ever
        return IslandEvolutionResult(
            best_program=best.program,
            best_report=best.report,
            best_in_population=best_in_population,
            trajectory=self._trajectory,
            cache_stats=self.scorer.cache.stats,
            candidates_generated=self.scorer.candidates_generated,
            elapsed_seconds=self._elapsed(),
            num_islands=len(self.islands),
            migrations=self._migrations,
            island_best_fitness=[island.best.fitness for island in self.islands],
        )
