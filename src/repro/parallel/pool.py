"""Worker-pool evaluation of candidate alphas over zero-copy shared panels.

The paper's search is distributed: candidate alphas are scored on a fleet of
evaluation workers for 60-hour rounds.  :class:`EvaluationPool` reproduces
that shape on one machine with a :class:`concurrent.futures.ProcessPoolExecutor`
— around two structural moves that make the fan-out actually cheap:

* **Zero-copy shared panels.**  The task-set feature/label arrays are
  published once into a :class:`~repro.parallel.shm.SharedPanelStore`
  (``multiprocessing.shared_memory``); each worker's initializer attaches
  read-only NumPy views and rebuilds its :class:`~repro.data.dataset.TaskSet`
  around them.  Physical memory holds one copy of the panel however many
  workers (or executor restarts) the pool sees, and the per-worker
  :class:`PoolSpec` shrinks to a handle plus scalars.  A content-signature
  echo in the store header guards against attaching to a stale store
  (:class:`~repro.errors.SharedPanelMismatchError`).
* **Stacked batch dispatch.**  ``evaluate_detailed`` partitions each batch
  by :func:`~repro.compile.stacked.stack_signature`
  (:func:`repro.engine.stack_partition`) before chunking, so a worker
  dispatch carries programs of **one** signature group and executes them as
  a single :class:`~repro.compile.stacked.StackedAlpha` tape
  (:func:`repro.engine.evaluate_program_batch`) — one batched kernel call
  per instruction per day instead of a per-candidate loop.  Per-candidate
  IPC is just the (tiny) :class:`~repro.core.program.AlphaProgram` payload
  out and a :class:`PoolEvaluation` back.

**Robustness.**  A worker that dies mid-batch (OOM-killed, segfault) breaks
the executor; the pool detects it, rebuilds the executor — workers re-attach
to the *same* shared store, so the restart ships no data — and requeues the
lost batches, each at most ``max_batch_retries`` times before a
:class:`~repro.errors.ParallelError` surfaces.  Evaluation is deterministic,
so a retried batch returns bitwise-identical results.  :meth:`close` (and
the context-manager exit) shuts the executor down and unlinks the shared
segment even when a batch raised; the store's own atexit/signal/crash
guards cover the paths that never reach ``close``.

Determinism: every worker builds its evaluator from the same
``evaluator_seed``, and evaluation derives its RNG from that seed per call,
so a program's fitness report is bitwise identical no matter which worker
(or how many retries) produced it — and identical to a serial
``AlphaEvaluator`` built from the same seed.

Telemetry (behind :data:`repro.obs.TELEMETRY`): ``pool.shm_bytes`` (gauge,
bytes of shared panel currently published), ``pool.batches_retried`` and
``pool.worker_restarts`` (counters), next to the existing ``pool.batches`` /
``pool.programs`` / ``pool.dispatch_seconds``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal as _signal
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..backtest.engine import BacktestEngine
from ..config import LONG_POSITIONS, SHORT_POSITIONS
from ..core.fitness import FitnessReport
from ..core.program import AlphaProgram
from ..data.dataset import TaskSet
from ..errors import ConfigurationError, ParallelError
from ..obs import TELEMETRY
from .shm import SharedPanelHandle, SharedPanelStore

__all__ = ["PoolSpec", "PoolEvaluation", "EvaluationPool", "PendingEvaluations"]


@dataclass(frozen=True)
class PoolSpec:
    """Everything a worker needs to rebuild the evaluation stack.

    Shipped to each worker once at executor (re)start.  The panel itself
    never rides in the spec: ``panel`` is a
    :class:`~repro.parallel.shm.SharedPanelHandle` the worker attaches to,
    and only the small sidecar metadata (dates, taxonomy, split, tickers)
    is pickled.
    """

    panel: SharedPanelHandle
    dates: np.ndarray
    taxonomy: object
    split: object
    tickers: tuple[str, ...]
    evaluator_seed: int = 0
    max_train_steps: int | None = None
    use_update: bool = True
    evaluate_test: bool = True
    long_k: int = LONG_POSITIONS
    short_k: int = SHORT_POSITIONS
    compute_valid_returns: bool = False
    #: Execution-engine name each worker's evaluator runs candidates on
    #: (see :data:`repro.engine.ENGINES`; bitwise identical across
    #: engines).
    engine: str = "compiled"
    #: Whether signature groups execute as stacked tapes inside workers
    #: (``None`` → on for the compiled engine).  Never changes a result
    #: bit; exists so the parity suite can A/B the stacked dispatch.
    stacked: bool | None = None
    #: Whether workers withdraw their attach-side resource-tracker
    #: registration (needed under non-``fork`` start methods, whose
    #: private trackers would unlink the parent's segment on worker exit).
    untrack_on_attach: bool = False


@dataclass
class PoolEvaluation:
    """One worker-evaluated candidate.

    ``valid_returns`` carries the validation long-short portfolio-return
    series when the pool was built with ``compute_valid_returns=True`` and
    the report is valid; the parent process needs it to apply the
    correlation cutoff without re-running the program.
    """

    report: FitnessReport
    valid_returns: np.ndarray | None = None


@dataclass
class _WorkBatch:
    """One worker dispatch: programs of a single stack-signature group.

    ``fault`` is a test-only hook (``"sigkill"`` / ``"raise"``) injected by
    the fault tests; it is never set on a retry resubmission, so an
    injected crash exercises exactly one requeue.
    """

    programs: list[AlphaProgram]
    fault: str | None = None


@dataclass
class _WorkerState:
    """Per-process evaluation stack, built once by the pool initializer."""

    evaluator: object
    engine: BacktestEngine | None
    stacked: bool | None
    store: SharedPanelStore

    @classmethod
    def from_spec(cls, spec: PoolSpec) -> "_WorkerState":
        # Imported lazily: repro.parallel sits below the engine layer, and
        # the interpreter facade imports the engine package itself.
        from ..core.interpreter import AlphaEvaluator

        store = SharedPanelStore.attach(spec.panel,
                                        untrack=spec.untrack_on_attach)
        taskset = TaskSet(
            features=store.features,
            labels=store.labels,
            dates=spec.dates,
            taxonomy=spec.taxonomy,
            split=spec.split,
            tickers=spec.tickers,
        )
        evaluator = AlphaEvaluator(
            taskset,
            seed=spec.evaluator_seed,
            max_train_steps=spec.max_train_steps,
            use_update=spec.use_update,
            evaluate_test=spec.evaluate_test,
            engine=spec.engine,
        )
        engine = None
        if spec.compute_valid_returns:
            engine = BacktestEngine(taskset, long_k=spec.long_k, short_k=spec.short_k)
        return cls(evaluator=evaluator, engine=engine, stacked=spec.stacked,
                   store=store)


_WORKER: _WorkerState | None = None


def _init_worker(spec: PoolSpec) -> None:
    """Executor initializer: attach the shared panel, build the stack."""
    global _WORKER
    _WORKER = _WorkerState.from_spec(spec)


def _evaluate_batch(batch: _WorkBatch) -> list[PoolEvaluation]:
    """Evaluate one signature-grouped batch inside a worker process.

    The whole batch runs as one fleet over the worker's shared-view task
    set — a single :class:`~repro.compile.stacked.StackedAlpha` tape when
    the programs stack — via :func:`repro.engine.evaluate_program_batch`,
    the same entry point the serial scorer evaluates through.
    """
    state = _WORKER
    if state is None:  # pragma: no cover - initializer always runs first
        raise ParallelError("evaluation worker was not initialised")
    if batch.fault == "sigkill":  # pragma: no cover - kills this process
        os.kill(os.getpid(), _signal.SIGKILL)
    if batch.fault == "raise":
        raise ParallelError("injected worker fault (test hook)")
    # Imported lazily: repro.engine builds on repro.core submodules.
    from ..engine import evaluate_program_batch

    results = evaluate_program_batch(
        state.evaluator, batch.programs, stacked=state.stacked
    )
    evaluations: list[PoolEvaluation] = []
    for result in results:
        valid_returns = None
        if state.engine is not None and result.is_valid:
            valid_returns = state.engine.portfolio_returns(
                result.predictions["valid"], split="valid"
            )
        evaluations.append(PoolEvaluation(report=result.report,
                                          valid_returns=valid_returns))
    return evaluations


def _pool_context(start_method: str | None) -> multiprocessing.context.BaseContext:
    """Pick the multiprocessing context; prefer ``fork`` for instant startup."""
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


@dataclass
class _Chunk:
    """One in-flight dispatch unit and where its results land."""

    indices: list[int]
    programs: list[AlphaProgram]
    fault: str | None = None
    retries: int = 0
    future: object = None
    evaluations: list[PoolEvaluation] | None = None


class PendingEvaluations:
    """A dispatched batch whose results are collected on :meth:`result`.

    Returned by :meth:`EvaluationPool.submit_detailed`; the overlap
    scheduler of :mod:`repro.parallel.islands` performs ring migration and
    checkpoint bookkeeping between the dispatch and the collect, hiding
    that work behind the workers' wall clock.
    """

    def __init__(self, pool: "EvaluationPool", chunks: list[_Chunk],
                 num_programs: int, started: float) -> None:
        self._pool = pool
        self._chunks = chunks
        self._num_programs = num_programs
        self._started = started
        self._evaluations: list[PoolEvaluation] | None = None

    def result(self) -> list[PoolEvaluation]:
        """Block until every chunk finished (retrying lost batches)."""
        if self._evaluations is None:
            self._evaluations = self._pool._collect(
                self._chunks, self._num_programs, self._started
            )
        return self._evaluations


class EvaluationPool:
    """Fans candidate-alpha evaluation out to ``num_workers`` processes.

    Parameters
    ----------
    taskset:
        The task set candidates are evaluated on; its feature/label panel
        is published to shared memory once, here.
    num_workers:
        Number of worker processes; defaults to the machine's CPU count.
    evaluator_seed / max_train_steps / use_update / evaluate_test:
        Forwarded to each worker's :class:`AlphaEvaluator`; use the same
        values as the serial evaluator to get bitwise-identical reports.
    long_k / short_k / compute_valid_returns:
        With ``compute_valid_returns=True`` workers also return the
        validation long-short portfolio-return series of every valid
        candidate (needed by the correlation cutoff).
    engine:
        Execution-engine name the workers run candidates on (see
        :data:`repro.engine.ENGINES`); bitwise identical across engines.
        The legacy ``compiled`` flag keeps working and maps onto the
        engine names.
    stacked:
        Whether workers execute signature groups as stacked tapes
        (default: on under the compiled engine).  Never changes a result
        bit.
    batch_size:
        Programs per worker dispatch.  Batching amortises the per-task
        overhead and widens the stacked tapes; results always come back in
        input order.
    max_batch_retries:
        How many times a batch lost to a worker crash is requeued before
        the pool gives up with a :class:`~repro.errors.ParallelError`.
    start_method:
        Optional multiprocessing start method override (default: ``fork``
        where available, the platform default elsewhere).

    The pool is a context manager; :meth:`close` shuts the workers down and
    unlinks the shared panel — even when a batch raised inside the block.
    """

    def __init__(
        self,
        taskset: TaskSet,
        num_workers: int | None = None,
        *,
        evaluator_seed: int = 0,
        max_train_steps: int | None = None,
        use_update: bool = True,
        evaluate_test: bool = True,
        long_k: int = LONG_POSITIONS,
        short_k: int = SHORT_POSITIONS,
        compute_valid_returns: bool = False,
        compiled: bool | None = None,
        engine: str | None = None,
        stacked: bool | None = None,
        batch_size: int = 8,
        max_batch_retries: int = 2,
        start_method: str | None = None,
    ) -> None:
        # Imported lazily: repro.parallel sits below the engine layer.
        from ..engine import resolve_engine

        if num_workers is None:
            num_workers = os.cpu_count() or 1
        if num_workers < 1:
            raise ConfigurationError("num_workers must be at least 1")
        if batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        if max_batch_retries < 0:
            raise ConfigurationError("max_batch_retries cannot be negative")
        self._mp_context = _pool_context(start_method)
        self._store = SharedPanelStore.publish(taskset.features, taskset.labels)
        self.spec = PoolSpec(
            panel=self._store.handle,
            dates=taskset.dates,
            taxonomy=taskset.taxonomy,
            split=taskset.split,
            tickers=taskset.tickers,
            evaluator_seed=evaluator_seed,
            max_train_steps=max_train_steps,
            use_update=use_update,
            evaluate_test=evaluate_test,
            long_k=long_k,
            short_k=short_k,
            compute_valid_returns=compute_valid_returns,
            engine=resolve_engine(engine, compiled),
            stacked=stacked,
            untrack_on_attach=self._mp_context.get_start_method() != "fork",
        )
        self.num_workers = num_workers
        self.batch_size = batch_size
        self.max_batch_retries = max_batch_retries
        #: Lost batches requeued after worker crashes (lifetime total).
        self.batches_retried = 0
        #: Executor rebuilds forced by worker crashes (lifetime total).
        self.worker_restarts = 0
        #: Test-only fault hook: set to ``"sigkill"`` or ``"raise"`` to
        #: inject the fault into the first chunk of the next dispatch.
        self._inject_fault_once: str | None = None
        self._executor = self._make_executor()
        self._closed = False
        if TELEMETRY.enabled:
            TELEMETRY.gauge("pool.shm_bytes").set(self._store.nbytes)

    # ------------------------------------------------------------------
    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.num_workers,
            mp_context=self._mp_context,
            initializer=_init_worker,
            initargs=(self.spec,),
        )

    # ------------------------------------------------------------------
    @property
    def compute_valid_returns(self) -> bool:
        """Whether workers return validation portfolio-return series."""
        return self.spec.compute_valid_returns

    @property
    def shm_bytes(self) -> int:
        """Bytes of shared panel this pool published."""
        return self._store.nbytes

    @property
    def panel_signature(self) -> str:
        """Content signature of the published panel (the attach guard)."""
        return self._store.handle.signature

    # ------------------------------------------------------------------
    # Dispatch / collect
    # ------------------------------------------------------------------
    def _plan_chunks(self, programs: list[AlphaProgram]) -> list[_Chunk]:
        """Cut ``programs`` into signature-grouped, size-bounded chunks.

        Grouping first (by stacked-tape signature) makes every chunk a
        single stacked execution worker-side; the chunk size is additionally
        capped so a small batch (e.g. one proposal per island) still
        spreads across all workers.
        """
        # Imported lazily: repro.engine builds on repro.core submodules.
        from ..engine import stack_partition

        stacking = self.spec.stacked
        if stacking is None:
            stacking = self.spec.engine == "compiled"
        if stacking:
            groups = stack_partition(programs, engine=self.spec.engine)
        else:
            groups = [list(range(len(programs)))]
        chunk_size = min(
            self.batch_size,
            max(1, (len(programs) + self.num_workers - 1) // self.num_workers),
        )
        chunks: list[_Chunk] = []
        for group in groups:
            for start in range(0, len(group), chunk_size):
                indices = group[start:start + chunk_size]
                chunks.append(_Chunk(
                    indices=indices,
                    programs=[programs[i] for i in indices],
                ))
        return chunks

    def submit_detailed(self, programs: list[AlphaProgram]) -> PendingEvaluations:
        """Dispatch ``programs`` to the workers without blocking.

        Returns a :class:`PendingEvaluations` whose ``result()`` yields the
        evaluations in input order; the caller may do useful work between
        the two (the islands overlap scheduler does ring migration).
        """
        if self._closed:
            raise ParallelError("the evaluation pool has been closed")
        programs = list(programs)
        started = time.perf_counter() if TELEMETRY.enabled else 0.0
        chunks = self._plan_chunks(programs)
        if chunks and self._inject_fault_once is not None:
            chunks[0].fault = self._inject_fault_once
            self._inject_fault_once = None
        for chunk in chunks:
            self._submit(chunk)
        return PendingEvaluations(self, chunks, len(programs), started)

    def _submit(self, chunk: _Chunk) -> None:
        """Submit one chunk; a broken executor leaves it for the retry path.

        A crashing worker can break the executor *while* a batch is still
        being submitted, so even first submission must tolerate
        ``BrokenExecutor`` — the chunk is left future-less and
        :meth:`_collect` requeues it like any other lost chunk.
        """
        try:
            chunk.future = self._executor.submit(
                _evaluate_batch, _WorkBatch(chunk.programs, fault=chunk.fault)
            )
        except BrokenExecutor:
            chunk.future = None

    def _collect(self, chunks: list[_Chunk], num_programs: int,
                 started: float) -> list[PoolEvaluation]:
        """Gather chunk results, rebuilding the executor after crashes."""
        with TELEMETRY.span(
            "pool.dispatch", programs=num_programs, chunks=len(chunks)
        ):
            while True:
                lost = [chunk for chunk in chunks if chunk.evaluations is None]
                if not lost:
                    break
                broken = False
                for chunk in lost:
                    if chunk.future is None:
                        broken = True
                        break
                    try:
                        chunk.evaluations = chunk.future.result()
                    except BrokenExecutor:
                        broken = True
                        break
                if broken:
                    self._requeue_lost(chunks)
        evaluations: list[PoolEvaluation] = [None] * num_programs
        for chunk in chunks:
            for index, evaluation in zip(chunk.indices, chunk.evaluations):
                evaluations[index] = evaluation
        if TELEMETRY.enabled:
            TELEMETRY.counter("pool.batches").inc(len(chunks))
            TELEMETRY.counter("pool.programs").inc(num_programs)
            TELEMETRY.histogram("pool.dispatch_seconds").observe(
                time.perf_counter() - started
            )
        return evaluations

    def _requeue_lost(self, chunks: list[_Chunk]) -> None:
        """A worker died mid-batch: rebuild the executor, requeue the rest.

        The replacement workers attach to the same shared panel store, so
        the restart ships zero panel bytes.  Each lost chunk may be
        requeued at most ``max_batch_retries`` times; evaluation is
        deterministic, so retried chunks return bitwise-identical results.
        """
        if self._closed:  # pragma: no cover - close() raced a crash
            raise ParallelError("the evaluation pool has been closed")
        lost = [chunk for chunk in chunks if chunk.evaluations is None]
        for chunk in lost:
            chunk.retries += 1
            if chunk.retries > self.max_batch_retries:
                raise ParallelError(
                    f"a worker batch of {len(chunk.programs)} program(s) "
                    f"crashed the pool {chunk.retries} times "
                    f"(max_batch_retries={self.max_batch_retries}); "
                    "giving up"
                )
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = self._make_executor()
        self.worker_restarts += 1
        self.batches_retried += len(lost)
        if TELEMETRY.enabled:
            TELEMETRY.counter("pool.worker_restarts").inc()
            TELEMETRY.counter("pool.batches_retried").inc(len(lost))
        for chunk in lost:
            # Injected faults are not re-armed: the retry must succeed.
            chunk.fault = None
            self._submit(chunk)

    # ------------------------------------------------------------------
    def evaluate_detailed(self, programs: list[AlphaProgram]) -> list[PoolEvaluation]:
        """Evaluate ``programs`` across the workers, preserving input order."""
        programs = list(programs)
        if not programs:
            if self._closed:
                raise ParallelError("the evaluation pool has been closed")
            return []
        return self.submit_detailed(programs).result()

    def evaluate(self, programs: list[AlphaProgram]) -> list[FitnessReport]:
        """Evaluate ``programs`` and return just their fitness reports."""
        return [evaluation.report for evaluation in self.evaluate_detailed(programs)]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down and unlink the shared panel (idempotent).

        The unlink runs even when the executor shutdown fails — losing a
        worker must never leak a ``/dev/shm`` segment.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._executor.shutdown(wait=True)
        finally:
            self._store.close()
            if TELEMETRY.enabled:
                TELEMETRY.gauge("pool.shm_bytes").set(0)

    def __enter__(self) -> "EvaluationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
