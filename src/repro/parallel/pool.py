"""Worker-pool evaluation of candidate alphas.

The paper's search is distributed: candidate alphas are scored on a fleet of
evaluation workers for 60-hour rounds.  :class:`EvaluationPool` reproduces
that shape on one machine with a :class:`concurrent.futures.ProcessPoolExecutor`.

The expensive state — the :class:`~repro.data.dataset.TaskSet` feature and
label arrays — is shipped to each worker exactly **once**, at pool startup,
through the executor's ``initializer``: the worker stores an
:class:`~repro.core.interpreter.AlphaEvaluator` built from the
:class:`PoolSpec` in a module global and reuses it for every batch.  On
platforms with the ``fork`` start method (Linux) even that one-time transfer
is free, because the spec is inherited through the forked address space
instead of being pickled.  Per-candidate traffic is then just the (tiny)
:class:`~repro.core.program.AlphaProgram` payload out and a
:class:`PoolEvaluation` back.

Determinism: every worker builds its evaluator from the same
``evaluator_seed``, and :meth:`AlphaEvaluator.evaluate` derives its RNG from
that seed per call, so a program's fitness report is bitwise identical no
matter which worker evaluates it — and identical to a serial
``AlphaEvaluator`` built from the same seed.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..backtest.engine import BacktestEngine
from ..config import LONG_POSITIONS, SHORT_POSITIONS
from ..core.fitness import FitnessReport
from ..core.interpreter import AlphaEvaluator
from ..core.program import AlphaProgram
from ..data.dataset import TaskSet
from ..errors import ConfigurationError, ParallelError
from ..obs import TELEMETRY

__all__ = ["PoolSpec", "PoolEvaluation", "EvaluationPool"]


@dataclass(frozen=True)
class PoolSpec:
    """Everything a worker needs to rebuild the evaluation stack.

    Shipped to each worker once at pool startup; see the module docstring.
    """

    taskset: TaskSet
    evaluator_seed: int = 0
    max_train_steps: int | None = None
    use_update: bool = True
    evaluate_test: bool = True
    long_k: int = LONG_POSITIONS
    short_k: int = SHORT_POSITIONS
    compute_valid_returns: bool = False
    #: Execution-engine name each worker's evaluator runs candidates on
    #: (see :data:`repro.engine.ENGINES`; bitwise identical across
    #: engines).
    engine: str = "compiled"


@dataclass
class PoolEvaluation:
    """One worker-evaluated candidate.

    ``valid_returns`` carries the validation long-short portfolio-return
    series when the pool was built with ``compute_valid_returns=True`` and
    the report is valid; the parent process needs it to apply the
    correlation cutoff without re-running the program.
    """

    report: FitnessReport
    valid_returns: np.ndarray | None = None


@dataclass
class _WorkerState:
    """Per-process evaluation stack, built once by the pool initializer."""

    evaluator: AlphaEvaluator
    engine: BacktestEngine | None

    @classmethod
    def from_spec(cls, spec: PoolSpec) -> "_WorkerState":
        evaluator = AlphaEvaluator(
            spec.taskset,
            seed=spec.evaluator_seed,
            max_train_steps=spec.max_train_steps,
            use_update=spec.use_update,
            evaluate_test=spec.evaluate_test,
            engine=spec.engine,
        )
        engine = None
        if spec.compute_valid_returns:
            engine = BacktestEngine(spec.taskset, long_k=spec.long_k, short_k=spec.short_k)
        return cls(evaluator=evaluator, engine=engine)


_WORKER: _WorkerState | None = None


def _init_worker(spec: PoolSpec) -> None:
    """Executor initializer: build the per-process evaluation stack."""
    global _WORKER
    _WORKER = _WorkerState.from_spec(spec)


def _evaluate_batch(programs: list[AlphaProgram]) -> list[PoolEvaluation]:
    """Evaluate a batch of programs inside a worker process."""
    state = _WORKER
    if state is None:  # pragma: no cover - initializer always runs first
        raise ParallelError("evaluation worker was not initialised")
    evaluations: list[PoolEvaluation] = []
    for program in programs:
        result = state.evaluator.evaluate(program)
        valid_returns = None
        if state.engine is not None and result.is_valid:
            valid_returns = state.engine.portfolio_returns(
                result.predictions["valid"], split="valid"
            )
        evaluations.append(PoolEvaluation(report=result.report, valid_returns=valid_returns))
    return evaluations


def _pool_context(start_method: str | None) -> multiprocessing.context.BaseContext:
    """Pick the multiprocessing context; prefer ``fork`` for zero-copy startup."""
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


class EvaluationPool:
    """Fans candidate-alpha evaluation out to ``num_workers`` processes.

    Parameters
    ----------
    taskset:
        The task set candidates are evaluated on (shipped to workers once).
    num_workers:
        Number of worker processes; defaults to the machine's CPU count.
    evaluator_seed / max_train_steps / use_update / evaluate_test:
        Forwarded to each worker's :class:`AlphaEvaluator`; use the same
        values as the serial evaluator to get bitwise-identical reports.
    long_k / short_k / compute_valid_returns:
        With ``compute_valid_returns=True`` workers also return the
        validation long-short portfolio-return series of every valid
        candidate (needed by the correlation cutoff).
    engine:
        Execution-engine name the workers run candidates on (see
        :data:`repro.engine.ENGINES`); bitwise identical across engines.
        The legacy ``compiled`` flag keeps working and maps onto the
        engine names.
    batch_size:
        Programs per worker task.  Batching amortises the per-task dispatch
        overhead; results always come back in input order.
    start_method:
        Optional multiprocessing start method override (default: ``fork``
        where available, the platform default elsewhere).

    The pool is a context manager; :meth:`close` shuts the workers down.
    """

    def __init__(
        self,
        taskset: TaskSet,
        num_workers: int | None = None,
        *,
        evaluator_seed: int = 0,
        max_train_steps: int | None = None,
        use_update: bool = True,
        evaluate_test: bool = True,
        long_k: int = LONG_POSITIONS,
        short_k: int = SHORT_POSITIONS,
        compute_valid_returns: bool = False,
        compiled: bool | None = None,
        engine: str | None = None,
        batch_size: int = 8,
        start_method: str | None = None,
    ) -> None:
        # Imported lazily: repro.parallel sits below the engine layer.
        from ..engine import resolve_engine

        if num_workers is None:
            num_workers = os.cpu_count() or 1
        if num_workers < 1:
            raise ConfigurationError("num_workers must be at least 1")
        if batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        self.spec = PoolSpec(
            taskset=taskset,
            evaluator_seed=evaluator_seed,
            max_train_steps=max_train_steps,
            use_update=use_update,
            evaluate_test=evaluate_test,
            long_k=long_k,
            short_k=short_k,
            compute_valid_returns=compute_valid_returns,
            engine=resolve_engine(engine, compiled),
        )
        self.num_workers = num_workers
        self.batch_size = batch_size
        self._executor = ProcessPoolExecutor(
            max_workers=num_workers,
            mp_context=_pool_context(start_method),
            initializer=_init_worker,
            initargs=(self.spec,),
        )
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def compute_valid_returns(self) -> bool:
        """Whether workers return validation portfolio-return series."""
        return self.spec.compute_valid_returns

    # ------------------------------------------------------------------
    def evaluate_detailed(self, programs: list[AlphaProgram]) -> list[PoolEvaluation]:
        """Evaluate ``programs`` across the workers, preserving input order."""
        if self._closed:
            raise ParallelError("the evaluation pool has been closed")
        programs = list(programs)
        if not programs:
            return []
        # Cap the chunk size so a small batch (e.g. one proposal per island
        # from the island controller) still spreads across all workers;
        # batch_size only bounds the per-task payload for large lists.
        chunk_size = min(
            self.batch_size,
            max(1, (len(programs) + self.num_workers - 1) // self.num_workers),
        )
        chunks = [
            programs[start:start + chunk_size]
            for start in range(0, len(programs), chunk_size)
        ]
        # Timed per *dispatch* (one batch of chunks), never per program:
        # the disabled cost is one boolean test.
        dispatch_started = time.perf_counter() if TELEMETRY.enabled else 0.0
        with TELEMETRY.span(
            "pool.dispatch", programs=len(programs), chunks=len(chunks)
        ):
            futures = [
                self._executor.submit(_evaluate_batch, chunk) for chunk in chunks
            ]
            evaluations: list[PoolEvaluation] = []
            for future in futures:
                evaluations.extend(future.result())
        if TELEMETRY.enabled:
            TELEMETRY.counter("pool.batches").inc(len(chunks))
            TELEMETRY.counter("pool.programs").inc(len(programs))
            TELEMETRY.histogram("pool.dispatch_seconds").observe(
                time.perf_counter() - dispatch_started
            )
        return evaluations

    def evaluate(self, programs: list[AlphaProgram]) -> list[FitnessReport]:
        """Evaluate ``programs`` and return just their fitness reports."""
        return [evaluation.report for evaluation in self.evaluate_detailed(programs)]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker processes (idempotent)."""
        if not self._closed:
            self._executor.shutdown(wait=True)
            self._closed = True

    def __enter__(self) -> "EvaluationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
