"""Zero-copy shared panels for the evaluation workers.

The expensive state of a worker pool is the task-set panel — the
``(N, K, f, w)`` feature tensor and the ``(N, K)`` label matrix.  The
historical pool shipped both to every worker through the executor
initializer, which re-materialises the full panel once per worker (and once
per executor rebuild).  :class:`SharedPanelStore` publishes them instead
into **one** :class:`multiprocessing.shared_memory.SharedMemory` block,
exactly once per pool; workers attach read-only NumPy views in their
initializer, so however many workers (or restarts) the pool sees, physical
memory holds a single copy of the data and nothing panel-sized ever crosses
the pickle IPC channel.

Layout of the block::

    [0:8]   little-endian uint64: header length L
    [8:8+L] JSON header: version, content signature, shapes, dtypes, offsets
    [features_offset : ...]  the feature tensor bytes (64-byte aligned)
    [labels_offset   : ...]  the label matrix bytes  (64-byte aligned)

**Content-signature echo.**  The publisher hashes the panel bytes (SHA-256
over shapes, dtypes and raw data) and writes the digest both into the block
header and into the :class:`SharedPanelHandle` it hands to workers.  An
attaching worker compares the two: a handle pointing at a stale or recycled
store — a name reused after an unlink, a store republished with different
data — fails loudly with :class:`~repro.errors.SharedPanelMismatchError`
instead of computing on wrong data.

**Cleanup.**  Owners unlink on every exit path:

* context-manager / explicit :meth:`close` — the normal path;
* interpreter exit — a ``weakref.finalize`` guard unlinks stores the caller
  leaked;
* ``SIGTERM`` / ``SIGINT`` — a chaining signal hook unlinks every live
  owner store before the previous handler (or the default action) runs;
* hard crash (``SIGKILL``) — the stdlib ``resource_tracker`` the block is
  registered with unlinks it when the process tree dies.

Attached (non-owner) stores only ever detach; they never unlink.  Every
owner-side guard is PID-checked, so a ``fork``-context worker — which
inherits the owner's live-store set, signal handlers and finalizers — can
never unlink a segment its parent still serves from.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import signal
import threading
import uuid
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..errors import ParallelError, SharedPanelMismatchError

__all__ = [
    "SharedPanelHandle",
    "SharedPanelStore",
    "panel_signature",
    "shared_segment_names",
]

_LAYOUT_VERSION = 1
_ALIGNMENT = 64
#: Every store name carries this prefix, so tests (and operators) can scan
#: ``/dev/shm`` for leaked segments without false positives.
SEGMENT_PREFIX = "repro-panel-"


def panel_signature(features: np.ndarray, labels: np.ndarray) -> str:
    """SHA-256 content signature of a feature/label panel pair.

    Covers shapes, dtypes and raw bytes, so two panels share a signature
    exactly when attaching to either produces bitwise-identical data.
    """
    digest = hashlib.sha256()
    for array in (features, labels):
        array = np.ascontiguousarray(array)
        digest.update(str(array.shape).encode())
        digest.update(str(array.dtype).encode())
        digest.update(array.data)
    return digest.hexdigest()


@dataclass(frozen=True)
class SharedPanelHandle:
    """Everything a worker needs to attach: name, signature, geometry.

    Tiny and picklable — this is what rides in :class:`~.pool.PoolSpec`
    instead of the panel arrays themselves.
    """

    name: str
    signature: str
    features_shape: tuple[int, ...]
    labels_shape: tuple[int, ...]
    features_dtype: str
    labels_dtype: str
    features_offset: int
    labels_offset: int
    nbytes: int


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


# ----------------------------------------------------------------------
# Process-wide cleanup guards for owner stores
# ----------------------------------------------------------------------
_LIVE_OWNERS: "weakref.WeakSet[SharedPanelStore]" = weakref.WeakSet()
_HOOKS_INSTALLED = False
_HOOK_LOCK = threading.Lock()


def _unlink_live_owners() -> None:
    for store in list(_LIVE_OWNERS):
        store.close()


def _signal_cleanup(signum, frame):  # pragma: no cover - exercised in a subprocess
    previous = _PREVIOUS_HANDLERS.get(signum)
    _unlink_live_owners()
    if callable(previous):
        previous(signum, frame)
    else:
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)


_PREVIOUS_HANDLERS: dict[int, object] = {}


def _install_cleanup_hooks() -> None:
    """Install the atexit and signal guards once per process.

    Signal hooks chain: an application handler registered before the first
    store was published still runs after the unlink.  Installation is
    skipped quietly off the main thread (``signal.signal`` would raise).
    """
    global _HOOKS_INSTALLED
    with _HOOK_LOCK:
        if _HOOKS_INSTALLED:
            return
        atexit.register(_unlink_live_owners)
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    _PREVIOUS_HANDLERS[signum] = signal.getsignal(signum)
                    signal.signal(signum, _signal_cleanup)
                except (ValueError, OSError):  # pragma: no cover
                    pass
        _HOOKS_INSTALLED = True


def shared_segment_names() -> list[str]:
    """Names of live ``repro-panel-*`` segments under ``/dev/shm`` (POSIX).

    The leak oracle of the fault-injection tests and the benchmark's
    cleanup gate; returns ``[]`` where ``/dev/shm`` does not exist.
    """
    try:
        return sorted(
            entry for entry in os.listdir("/dev/shm")
            if entry.startswith(SEGMENT_PREFIX)
        )
    except (FileNotFoundError, NotADirectoryError):  # pragma: no cover
        return []


class SharedPanelStore:
    """One published (or attached) feature/label panel in shared memory.

    Use :meth:`publish` in the pool owner and :meth:`attach` in workers;
    both return a store exposing zero-copy :attr:`features` / :attr:`labels`
    views (read-only, so a buggy worker cannot corrupt the shared panel for
    its siblings).  The owner is a context manager whose exit unlinks the
    segment; attached stores detach only.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 handle: SharedPanelHandle, owner: bool) -> None:
        self._shm = shm
        self.handle = handle
        self.owner = owner
        self._owner_pid = os.getpid() if owner else None
        self._closed = False
        self.features = self._view(
            handle.features_shape, handle.features_dtype, handle.features_offset
        )
        self.labels = self._view(
            handle.labels_shape, handle.labels_dtype, handle.labels_offset
        )
        if owner:
            _LIVE_OWNERS.add(self)
            _install_cleanup_hooks()
            # Last-resort guard: unlink when the store object is collected
            # without close() ever running.
            self._finalizer = weakref.finalize(
                self, SharedPanelStore._unlink_quietly, shm.name, os.getpid()
            )
        else:
            self._finalizer = None

    def _view(self, shape, dtype, offset) -> np.ndarray:
        array = np.ndarray(shape, dtype=np.dtype(dtype),
                           buffer=self._shm.buf, offset=offset)
        array.flags.writeable = False
        return array

    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, features: np.ndarray, labels: np.ndarray) -> "SharedPanelStore":
        """Copy the panel into a fresh shared segment and own it."""
        features = np.ascontiguousarray(features)
        labels = np.ascontiguousarray(labels)
        signature = panel_signature(features, labels)
        name = f"{SEGMENT_PREFIX}{os.getpid()}-{uuid.uuid4().hex[:12]}"
        # The header length depends only on field values whose rendered
        # width is fixed once computed, so lay it out with placeholder
        # offsets first, then patch.
        header = {
            "version": _LAYOUT_VERSION,
            "signature": signature,
            "features_shape": list(features.shape),
            "labels_shape": list(labels.shape),
            "features_dtype": str(features.dtype),
            "labels_dtype": str(labels.dtype),
        }
        header_blob = json.dumps(header, sort_keys=True).encode()
        features_offset = _align(8 + len(header_blob))
        labels_offset = _align(features_offset + features.nbytes)
        nbytes = labels_offset + labels.nbytes
        handle = SharedPanelHandle(
            name=name,
            signature=signature,
            features_shape=tuple(features.shape),
            labels_shape=tuple(labels.shape),
            features_dtype=str(features.dtype),
            labels_dtype=str(labels.dtype),
            features_offset=features_offset,
            labels_offset=labels_offset,
            nbytes=nbytes,
        )
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        except OSError as exc:  # pragma: no cover - exhausted /dev/shm
            raise ParallelError(
                f"cannot create a {nbytes}-byte shared panel segment: {exc}"
            ) from exc
        shm.buf[0:8] = len(header_blob).to_bytes(8, "little")
        shm.buf[8:8 + len(header_blob)] = header_blob
        store = cls(shm, handle, owner=True)
        # Publish through writable staging views, then the constructor's
        # read-only views are the only way back in.
        staging = np.ndarray(features.shape, features.dtype,
                             buffer=shm.buf, offset=features_offset)
        staging[...] = features
        staging = np.ndarray(labels.shape, labels.dtype,
                             buffer=shm.buf, offset=labels_offset)
        staging[...] = labels
        return store

    @classmethod
    def attach(cls, handle: SharedPanelHandle, *,
               untrack: bool = False) -> "SharedPanelStore":
        """Attach read-only views to a published store, verifying identity.

        The handle's signature must echo the one the publisher wrote into
        the block header; any disagreement (stale handle, recycled name,
        torn header) raises :class:`SharedPanelMismatchError`.

        ``untrack=True`` withdraws the attach-side ``resource_tracker``
        registration that :class:`~multiprocessing.shared_memory.SharedMemory`
        makes unconditionally.  Pass it from workers that do **not** share
        the publisher's tracker process (``spawn`` / ``forkserver`` start
        methods) — their private tracker would otherwise unlink the
        publisher's segment when the worker exits.  ``fork``-context
        workers inherit the publisher's tracker, where re-registration
        deduplicates harmlessly, and must leave this off so the
        crash-cleanup registration survives.
        """
        try:
            shm = shared_memory.SharedMemory(name=handle.name)
        except FileNotFoundError as exc:
            raise SharedPanelMismatchError(
                f"shared panel store {handle.name!r} does not exist "
                "(unlinked before this worker attached?)"
            ) from exc
        try:
            header_length = int.from_bytes(bytes(shm.buf[0:8]), "little")
            try:
                header = json.loads(bytes(shm.buf[8:8 + header_length]))
            except (ValueError, UnicodeDecodeError) as exc:
                raise SharedPanelMismatchError(
                    f"shared panel store {handle.name!r} has a corrupt header"
                ) from exc
            if header.get("version") != _LAYOUT_VERSION:
                raise SharedPanelMismatchError(
                    f"shared panel store {handle.name!r} has layout version "
                    f"{header.get('version')}, this build reads "
                    f"{_LAYOUT_VERSION}"
                )
            if header.get("signature") != handle.signature:
                raise SharedPanelMismatchError(
                    f"shared panel store {handle.name!r} holds content "
                    f"signature {header.get('signature')!r} but the pool "
                    f"spec expects {handle.signature!r}; refusing to attach "
                    "to a stale store"
                )
            echoed = (
                tuple(header.get("features_shape", ())),
                tuple(header.get("labels_shape", ())),
                header.get("features_dtype"),
                header.get("labels_dtype"),
            )
            expected = (
                handle.features_shape, handle.labels_shape,
                handle.features_dtype, handle.labels_dtype,
            )
            if echoed != expected:
                raise SharedPanelMismatchError(
                    f"shared panel store {handle.name!r} geometry {echoed} "
                    f"does not match the handle's {expected}"
                )
        except SharedPanelMismatchError:
            shm.close()
            raise
        if untrack:
            try:  # stdlib-private, stable since 3.8 (bpo-39959 workaround)
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker already gone
                pass
        return cls(shm, handle, owner=False)

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Size of the shared segment in bytes."""
        return self.handle.nbytes

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` already ran."""
        return self._closed

    @staticmethod
    def _unlink_quietly(name: str, owner_pid: int) -> None:
        if os.getpid() != owner_pid:  # pragma: no cover - forked copy
            return
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return
        try:
            segment.unlink()
        finally:
            segment.close()

    def close(self) -> None:
        """Detach; owners also unlink the segment (idempotent).

        Live NumPy views pin the underlying mapping, so the detach is
        best-effort (the mapping falls with the process); the **unlink** —
        what actually releases ``/dev/shm`` space — always runs for owners.
        A forked copy of an owner store (a ``fork``-context worker inherits
        them) only ever detaches: the unlink belongs to the publishing PID.
        """
        if self._closed:
            return
        self._closed = True
        self.features = None
        self.labels = None
        if self.owner:
            _LIVE_OWNERS.discard(self)
            if self._finalizer is not None:
                self._finalizer.detach()
            if os.getpid() == self._owner_pid:
                try:
                    self._shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - caller still holds views
            pass

    def __enter__(self) -> "SharedPanelStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
