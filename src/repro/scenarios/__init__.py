"""Named scenario suite: declarative workloads over pluggable data backends.

The ROADMAP's north star asks for "as many scenarios as you can imagine";
this package is where they live.  A scenario is a named, declarative
description of one workload — data source, bar frequency, market regime and
experiment sizing — that materialises into an ordinary
:class:`~repro.experiments.configs.ExperimentConfig` and runs the full
mine→compile→serve pipeline through one call (or ``repro scenario <name>``
on the command line):

* :mod:`repro.scenarios.spec`     — :class:`ScenarioSpec` and its
  materialisation (including the CSV export behind file-backed scenarios
  and the deterministic corruption injection behind the dirty-market ones);
* :mod:`repro.scenarios.registry` — the shipped suite (baseline, weekly,
  file-backed, high-vol, sparse-relations, corrected-tick, and the
  dirty-duplicates / dirty-gaps / dirty-splits family) and
  :func:`register_scenario`;
* :mod:`repro.scenarios.runner`   — :func:`run_scenario`, producing one
  :class:`~repro.experiments.recorder.ExperimentResult` per scenario with
  the online/offline parity verdict in its metadata;
* :mod:`repro.scenarios.robustness` — :class:`RobustnessReport`: the mined
  fleet re-served across admissible repair policies, banded per alpha
  (IC/Sharpe min/mean/max, certain-vs-contingent ranking).

See ``docs/DATA.md`` for the scenario-spec reference and the guide to
adding backends and scenarios.
"""

from .registry import get_scenario, list_scenarios, register_scenario, scenario_names
from .robustness import (
    ROBUSTNESS_REPORT_VERSION,
    AlphaBand,
    RobustnessReport,
    evaluate_robustness,
)
from .runner import render_scenario_list, run_scenario
from .spec import SCENARIO_DATA_ENV, ScenarioSpec, default_data_dir

__all__ = [
    "ROBUSTNESS_REPORT_VERSION",
    "SCENARIO_DATA_ENV",
    "AlphaBand",
    "RobustnessReport",
    "ScenarioSpec",
    "default_data_dir",
    "evaluate_robustness",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "render_scenario_list",
    "run_scenario",
    "scenario_names",
]
