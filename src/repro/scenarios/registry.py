"""The named scenario suite and its registry.

Nine scenarios ship with the repository, spanning the three axes the data
layer opens — source, frequency and regime — plus the serving-time
correction path and the dirty-market family (full reference:
``docs/DATA.md``):

=================  ========================================================
name               workload
=================  ========================================================
baseline           default synthetic market; bit-for-bit the pre-backend
                   data path
weekly             the same generator resampled to weekly bars over a
                   longer history (calendar-aware aggregation)
file-backed        the synthetic panel exported to per-stock CSVs and
                   served through :class:`~repro.data.FileBackend` — the
                   full on-disk round trip
high-vol           high-volatility regime on a larger universe (doubled
                   factor and idiosyncratic volatilities)
sparse-relations   a near-flat relation graph (two sectors, one industry
                   each, no industry-momentum spillover) — the regime in
                   which relational operators have nothing to exploit
corrected-tick     default market with late bar restatements injected
                   mid-serve, delta-replayed and verified bitwise against
                   a clean full replay of the corrected history
dirty-duplicates   exported CSVs dirtied with conflicting duplicate rows;
                   mined under ``keep-last``, robustness-banded against
                   ``keep-first``
dirty-gaps         exported CSVs with multi-day calendar gaps; mined under
                   linear interpolation, banded against forward-fill and
                   calendar-drop
dirty-splits       exported CSVs with an unadjusted 2:1 split and a spike
                   outlier; mined under the ``robust`` policy, banded
                   against ``strict`` and ``split-adjust``
=================  ========================================================

The dirty scenarios corrupt their export deterministically
(:class:`~repro.data.CorruptionSpec`), audit the directory, and attach a
:class:`~repro.scenarios.robustness.RobustnessReport` — per-alpha IC/Sharpe
bands across the admissible repairs, with the certain-vs-contingent
verdict on the fleet ranking.

Downstream projects add their own with :func:`register_scenario`; the CLI
(``repro scenario --list``) and :func:`~repro.scenarios.runner.run_scenario`
only ever consult this registry.
"""

from __future__ import annotations

from ..data import CorruptionSpec, DataSpec
from ..errors import ConfigurationError
from ..stream import BarCorrection
from .spec import ScenarioSpec

__all__ = ["get_scenario", "list_scenarios", "register_scenario", "scenario_names"]

_SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry (error on duplicates unless ``overwrite``)."""
    if not overwrite and spec.name in _SCENARIOS:
        raise ConfigurationError(
            f"scenario {spec.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name; unknown names list the alternatives."""
    spec = _SCENARIOS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available scenarios: {scenario_names()}"
        )
    return spec


def scenario_names() -> list[str]:
    """Sorted names of every registered scenario."""
    return sorted(_SCENARIOS)


def list_scenarios() -> list[ScenarioSpec]:
    """Every registered scenario, sorted by name."""
    return [_SCENARIOS[name] for name in scenario_names()]


# ---------------------------------------------------------------------------
# The shipped suite
# ---------------------------------------------------------------------------

register_scenario(ScenarioSpec(
    name="baseline",
    description="Default synthetic market — the paper's setting, bitwise "
                "identical to the pre-backend data path",
))

register_scenario(ScenarioSpec(
    name="weekly",
    description="Synthetic market resampled to weekly bars over a longer "
                "history (calendar-aware OHLCV aggregation)",
    data=DataSpec(frequency="weekly"),
    # Weekly bars divide the usable history by ~5; extend it and let the
    # split fall back to the paper's fractional proportions.
    config_overrides=(("num_days", 1260), ("split", None)),
    smoke_overrides=(("num_days", 420),),
))

register_scenario(ScenarioSpec(
    name="file-backed",
    description="Synthetic panel exported to per-stock OHLCV CSVs and "
                "loaded back through the validating FileBackend",
    data=DataSpec(kind="file"),
    export_synthetic=True,
))

register_scenario(ScenarioSpec(
    name="high-vol",
    description="High-volatility regime on a larger universe (doubled "
                "market/sector/idiosyncratic vols)",
    config_overrides=(("num_stocks", 160),),
    smoke_overrides=(("num_stocks", 60),),
    market_overrides=(
        ("market_vol", 0.016),
        ("sector_vol", 0.012),
        ("industry_vol", 0.008),
        ("idio_vol_range", (0.02, 0.07)),
    ),
))

register_scenario(ScenarioSpec(
    name="corrected-tick",
    description="Default market with late data corrections injected "
                "mid-serve: restated bars are delta-replayed and verified "
                "bitwise against a clean full replay",
    # One feature restatement early in the stream (long replay suffix), one
    # label restatement later, one combined — exercising every rewind mode.
    corrections=(
        BarCorrection(day=2, feature_scale=1.01),
        BarCorrection(day=15, label_scale=0.99),
        BarCorrection(day=8, feature_scale=0.995, label_scale=1.005),
    ),
))

register_scenario(ScenarioSpec(
    name="sparse-relations",
    description="Near-flat relation graph: two sectors, one industry each, "
                "no industry-momentum spillover",
    config_overrides=(("num_sectors", 2), ("industries_per_sector", 1)),
    market_overrides=(("relation_spillover_strength", 0.0),),
))

register_scenario(ScenarioSpec(
    name="dirty-duplicates",
    description="Exported CSVs dirtied with conflicting duplicate rows; "
                "mined under keep-last, robustness-banded vs keep-first",
    data=DataSpec(kind="file", repair="keep-last"),
    export_synthetic=True,
    corruption=CorruptionSpec(kinds=("duplicates",), events=2, seed=101),
    repairs=("keep-first",),
))

register_scenario(ScenarioSpec(
    name="dirty-gaps",
    description="Exported CSVs with multi-day calendar gaps; mined under "
                "interpolation, banded vs forward-fill and calendar-drop",
    data=DataSpec(kind="file", repair="gap-interpolate"),
    export_synthetic=True,
    corruption=CorruptionSpec(kinds=("gaps",), events=2, seed=102),
    # The gap-drop repair shrinks the calendar by the dropped dates, so the
    # history needs headroom over the fixed split totals at both scales.
    config_overrides=(("num_days", 440),),
    smoke_overrides=(("num_days", 280),),
    repairs=("strict", "gap-drop"),
))

register_scenario(ScenarioSpec(
    name="dirty-splits",
    description="Exported CSVs with an unadjusted 2:1 split and a spike "
                "outlier; mined under robust, banded vs strict/split-adjust",
    data=DataSpec(kind="file", repair="robust"),
    export_synthetic=True,
    corruption=CorruptionSpec(kinds=("splits", "spikes"), events=1, seed=103),
    repairs=("strict", "split-adjust"),
))
