"""Robustness bands: one alpha fleet evaluated across admissible repairs.

The consistent-query-answering view of a dirty panel (see
:mod:`repro.data.repair`) is that it denotes a *set* of possible repaired
panels, one per admissible :class:`~repro.data.repair.RepairPolicy`.  A
result that holds on every repair is **certain**; one that depends on which
repair was chosen is **contingent**.  This module makes that distinction
executable for the serving pipeline:

1. the scenario runner mines its fleet once, on the scenario's *primary*
   repair (the one on its :class:`~repro.data.DataSpec`);
2. :func:`evaluate_robustness` re-serves the *same* programs over every
   other admissible repair (each serve individually parity-gated against
   its offline path);
3. the per-alpha IC / Sharpe spreads become a :class:`RobustnessReport` —
   min/mean/max bands, a per-repair breakdown, and the certain-vs-contingent
   verdict on the fleet's IC ranking.

The report's JSON layout is versioned exactly like
:class:`~repro.obs.provenance.RunRecord`: ``to_json`` embeds
:data:`ROBUSTNESS_REPORT_VERSION` and ``from_json`` refuses other versions,
so golden files and downstream consumers fail loudly instead of silently
misreading a changed schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import isnan

from ..errors import ConfigurationError
from ..obs import TELEMETRY

__all__ = [
    "ROBUSTNESS_REPORT_VERSION",
    "AlphaBand",
    "RobustnessReport",
    "evaluate_robustness",
]

#: Bumped whenever the :class:`RobustnessReport` JSON layout changes
#: incompatibly.
ROBUSTNESS_REPORT_VERSION = 1

#: Metrics a band covers, in report order.
_BAND_METRICS = ("ic", "sharpe")


def _band(values: list[float]) -> dict[str, float]:
    return {
        "min": float(min(values)),
        "mean": float(sum(values) / len(values)),
        "max": float(max(values)),
    }


@dataclass(frozen=True)
class AlphaBand:
    """One alpha's metric spread across the admissible repairs.

    ``per_repair`` maps repair name → ``{"ic", "sharpe", "parity"}``;
    ``bands`` maps metric → ``{"min", "mean", "max"}`` over the repairs.
    ``contingent`` is true when the alpha's position in the fleet's IC
    ranking changes depending on the repair — its rank is not a certain
    answer over the dirty panel.
    """

    name: str
    bands: dict = field(default_factory=dict)
    per_repair: dict = field(default_factory=dict)
    contingent: bool = False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "bands": {metric: dict(band) for metric, band in self.bands.items()},
            "per_repair": {
                repair: dict(entry)
                for repair, entry in self.per_repair.items()
            },
            "contingent": self.contingent,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AlphaBand":
        return cls(
            name=payload["name"],
            bands=dict(payload.get("bands", {})),
            per_repair=dict(payload.get("per_repair", {})),
            contingent=bool(payload.get("contingent", False)),
        )


@dataclass
class RobustnessReport:
    """Per-alpha robustness bands for one fleet across a repair set."""

    scenario: str
    #: Repair names in evaluation order; the first is the primary repair
    #: the fleet was mined on.
    repairs: tuple[str, ...]
    bands: tuple[AlphaBand, ...]
    #: True when the fleet's IC ranking is identical under every repair —
    #: the ranking is a *certain* answer over the dirty panel.
    certain_ranking: bool
    #: Conjunction of every per-repair serve's online/offline parity.
    parity: bool
    #: ``kind -> count`` from auditing the dirty directory (may be empty).
    audit_counts: dict = field(default_factory=dict)
    version: int = ROBUSTNESS_REPORT_VERSION

    def __post_init__(self) -> None:
        self.repairs = tuple(self.repairs)
        self.bands = tuple(self.bands)

    # ------------------------------------------------------------------
    def band_for(self, name: str) -> AlphaBand:
        """The band of one alpha by name."""
        for band in self.bands:
            if band.name == name:
                return band
        raise ConfigurationError(
            f"no robustness band for alpha {name!r}; "
            f"fleet: {[band.name for band in self.bands]}"
        )

    def to_json(self) -> dict:
        """JSON-serialisable representation (the on-disk layout)."""
        return {
            "version": self.version,
            "scenario": self.scenario,
            "repairs": list(self.repairs),
            "certain_ranking": self.certain_ranking,
            "parity": self.parity,
            "audit_counts": dict(self.audit_counts),
            "bands": [band.to_dict() for band in self.bands],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RobustnessReport":
        """Inverse of :meth:`to_json`; rejects layouts from other versions."""
        version = payload.get("version", ROBUSTNESS_REPORT_VERSION)
        if version != ROBUSTNESS_REPORT_VERSION:
            raise ConfigurationError(
                f"robustness report has version {version}, this build reads "
                f"version {ROBUSTNESS_REPORT_VERSION}"
            )
        return cls(
            scenario=payload.get("scenario", ""),
            repairs=tuple(payload.get("repairs", ())),
            bands=tuple(
                AlphaBand.from_dict(entry)
                for entry in payload.get("bands", ())
            ),
            certain_ranking=bool(payload.get("certain_ranking", True)),
            parity=bool(payload.get("parity", True)),
            audit_counts=dict(payload.get("audit_counts", {})),
            version=version,
        )

    def render(self) -> str:
        """A printable band table."""
        verdict = "certain" if self.certain_ranking else "CONTINGENT"
        lines = [
            f"robustness across repairs {list(self.repairs)} "
            f"(IC ranking: {verdict}; parity: "
            + ("ok" if self.parity else "VIOLATED") + ")"
        ]
        if self.audit_counts:
            lines.append(f"audit: {self.audit_counts}")
        lines.append("{:<20} {:>26} {:>26} {:>11}".format(
            "alpha", "IC [min..mean..max]", "Sharpe [min..mean..max]",
            "rank"))
        for band in self.bands:
            ic, sharpe = band.bands["ic"], band.bands["sharpe"]
            lines.append("{:<20} {:>26} {:>26} {:>11}".format(
                band.name,
                "[{min:.4f}..{mean:.4f}..{max:.4f}]".format(**ic),
                "[{min:.3f}..{mean:.3f}..{max:.3f}]".format(**sharpe),
                "contingent" if band.contingent else "certain",
            ))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def _ic_ranking(metrics: dict[str, dict[str, float]]) -> tuple[str, ...]:
    """Fleet names ordered by descending IC (NaNs last, name-stable ties)."""
    return tuple(sorted(
        metrics,
        key=lambda name: (isnan(metrics[name]["ic"]),
                          -metrics[name]["ic"]
                          if not isnan(metrics[name]["ic"]) else 0.0,
                          name),
    ))


def evaluate_robustness(
    config,
    report,
    repairs: tuple[str, ...],
    scenario: str = "",
    audit_counts: dict | None = None,
) -> RobustnessReport:
    """Re-serve ``report``'s fleet across ``repairs`` and band the metrics.

    ``config`` is the materialised (file-backed) experiment configuration
    the primary serve ran on; its own ``data.repair`` is the primary repair
    and is *not* re-served — the primary rows are reused.  Every extra
    repair rebuilds the config with :meth:`~repro.data.DataSpec.repaired`
    (a different panel, a different task-set memo entry) and replays the
    identical mined programs through :func:`~repro.stream.run_serve`, so
    the spread per alpha is attributable to the repair choice alone.
    """
    if report.programs is None or report.program_names is None:
        raise ConfigurationError(
            "robustness evaluation needs the primary serve report to carry "
            "its fleet (ServeReport.programs / program_names)"
        )
    # Imported lazily to keep the scenarios package import-light.
    from ..stream import run_serve

    primary = config.data.repair
    ordered = [primary] + [name for name in repairs if name != primary]
    rows_by_repair = {primary: report.rows}
    parity_by_repair = {primary: report.parity}
    for name in ordered[1:]:
        repaired_config = config.scaled(
            name=f"{config.name}-{name}",
            data=config.data.repaired(name),
        )
        with TELEMETRY.span("scenario.robustness.serve", repair=name):
            served = run_serve(
                repaired_config,
                programs=list(report.programs),
                names=list(report.program_names),
            )
        rows_by_repair[name] = served.rows
        parity_by_repair[name] = served.parity
    if TELEMETRY.enabled:
        TELEMETRY.counter("scenarios.robustness.serves").inc(len(ordered) - 1)

    # name -> repair -> {"ic", "sharpe", "parity"}
    metrics: dict[str, dict[str, dict]] = {
        name: {} for name in report.program_names
    }
    for repair, rows in rows_by_repair.items():
        for row in rows:
            metrics[row.name][repair] = {
                "ic": float(row.ic),
                "sharpe": float(row.sharpe),
                "parity": bool(row.parity),
            }
    rankings = [
        _ic_ranking({name: metrics[name][repair] for name in metrics})
        for repair in ordered
    ]
    certain_ranking = all(ranking == rankings[0] for ranking in rankings)
    bands = []
    for name in report.program_names:
        positions = {ranking.index(name) for ranking in rankings}
        bands.append(AlphaBand(
            name=name,
            bands={
                metric: _band([
                    metrics[name][repair][metric] for repair in ordered
                ])
                for metric in _BAND_METRICS
            },
            per_repair={repair: metrics[name][repair] for repair in ordered},
            contingent=len(positions) > 1,
        ))
    return RobustnessReport(
        scenario=scenario,
        repairs=tuple(ordered),
        bands=tuple(bands),
        certain_ranking=certain_ranking,
        parity=all(parity_by_repair.values()),
        audit_counts=dict(audit_counts or {}),
    )
