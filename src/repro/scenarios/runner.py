"""Run one named scenario end to end: mine → compile → serve.

:func:`run_scenario` materialises a scenario into an
:class:`~repro.experiments.configs.ExperimentConfig`, builds its task set
through the configured data backend, mines a weakly correlated alpha fleet
(compiled execution is the default engine), and replays the held-out days
through the streaming :class:`~repro.stream.server.AlphaServer` with the
bitwise online/offline parity check — the same pipeline ``repro serve``
drives, parameterised by scenario instead of hand-set flags.

The outcome is an ordinary :class:`~repro.experiments.recorder.ExperimentResult`
(experiment name ``scenario-<name>``), so ``repro scenario <name> --output
DIR`` persists one results JSON per scenario next to the table artifacts.
"""

from __future__ import annotations

import time
from pathlib import Path

from ..data import audit_directory
from ..experiments.recorder import ExperimentResult
from ..obs import TELEMETRY
from ..stream import run_serve
from .registry import get_scenario, list_scenarios
from .robustness import evaluate_robustness
from .spec import ScenarioSpec

__all__ = ["render_scenario_list", "run_scenario"]


def run_scenario(
    scenario: str | ScenarioSpec,
    scale: str = "laptop",
    data_dir: str | None = None,
    overrides: dict | None = None,
    repair: str | None = None,
) -> ExperimentResult:
    """Run ``scenario`` (a name or spec) end to end and return its result.

    ``overrides`` are extra :class:`ExperimentConfig` fields applied after
    materialisation (the CLI uses them for ``--top-k``/``--candidates``
    style trims); unknown fields raise a configuration error naming the
    scenario.  ``repair`` swaps the primary repair policy on file-backed
    scenarios (the CLI's ``--repair``).  The result's metadata records the
    scenario, scale, backend description, task-set shape, serving
    statistics, the parity verdict and the per-phase (mine / compile /
    serve) wall-clock breakdown; dirty scenarios add the directory audit
    (``metadata["audit"]``) and, when the spec lists admissible ``repairs``,
    the per-alpha robustness bands (``metadata["robustness"]``); the
    result's ``run_record`` carries the full provenance for ``repro stats``.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    config = spec.experiment_config(scale, data_dir=data_dir)
    if overrides:
        config = config.scaled(**overrides)
    if repair is not None:
        config = config.scaled(data=config.data.repaired(repair))

    started = time.perf_counter()
    backend = config.data_backend()
    with TELEMETRY.span("scenario.run", scenario=spec.name, scale=scale):
        report = run_serve(
            config,
            corrections=list(spec.corrections) if spec.corrections else None,
        )
        audit_counts: dict = {}
        if config.data.kind == "file" and config.data.path:
            exclude = (
                (Path(config.data.sector_map).name,)
                if config.data.sector_map else ()
            )
            audit_counts = audit_directory(
                config.data.path, pattern=config.data.pattern,
                exclude=exclude,
            ).counts()
        robustness = None
        if spec.repairs:
            robustness = evaluate_robustness(
                config, report, spec.repairs, scenario=spec.name,
                audit_counts=audit_counts,
            )
    seconds = time.perf_counter() - started
    # run_serve built (and memoised) the task set; re-resolve it for the
    # shape summary without paying a second build.
    from ..experiments.configs import make_taskset

    taskset = make_taskset(config)

    rows = [row.row() for row in report.rows]
    header = (
        f"Scenario {spec.name!r} ({scale}): {spec.description}\n"
        f"backend={backend.describe()}\n"
        f"taskset={taskset.describe()}\n"
    )
    rendered = header + report.render()
    # The scenario's overall parity verdict folds in every robustness
    # re-serve: a repair that breaks online/offline parity fails the run.
    parity = report.parity and (robustness is None or robustness.parity)
    if robustness is not None:
        rendered += "\n\n" + robustness.render()
    metadata = {
        **report.metadata,
        **report.stats,
        # Scenario identity last: it wins over the serve report's generic
        # keys (whose "scale" is the config name, not the scale).
        "scenario": spec.name,
        "scale": scale,
        "config": config.name,
        "description": spec.description,
        "backend": backend.describe(),
        "taskset": taskset.describe(),
        "parity": parity,
        "seconds": round(seconds, 3),
        # Per-phase wall clock (mine / compile / serve), measured by
        # run_serve regardless of whether telemetry is enabled.
        "phase_seconds": report.metadata.get("phase_seconds", {}),
    }
    if audit_counts:
        metadata["audit"] = audit_counts
    if robustness is not None:
        metadata["robustness"] = robustness.to_json()
    run_record = report.run_record
    if run_record is not None:
        run_record.experiment = f"scenario-{spec.name}"
        run_record.metadata.update({"scenario": spec.name, "scale": scale})
        if TELEMETRY.enabled:
            # Refresh the snapshot run_serve took: the scenario.run span
            # has closed since, so the tree now carries its elapsed time.
            run_record.spans = TELEMETRY.tracer.tree()
            run_record.metrics = TELEMETRY.snapshot()
    return ExperimentResult(
        experiment=f"scenario-{spec.name}",
        rows=rows,
        rendered=rendered,
        metadata=metadata,
        run_record=run_record,
    )


def render_scenario_list() -> str:
    """The table ``repro scenario --list`` prints."""
    # Imported here: repro.experiments.tables is presentation-layer only.
    from ..experiments.tables import render_table

    rows = []
    for spec in list_scenarios():
        rows.append({
            "name": spec.name,
            "backend": spec.data.kind,
            "frequency": spec.data.frequency,
            "description": spec.description,
        })
    columns = [
        ("name", "Scenario"),
        ("backend", "Backend"),
        ("frequency", "Bars"),
        ("description", "Description"),
    ]
    return render_table(rows, columns, title="Named scenarios (repro scenario <name>)")
