"""Declarative scenario specifications and their materialisation.

A :class:`ScenarioSpec` is a named, immutable description of one workload:
which data backend feeds it (:class:`~repro.data.DataSpec`), which market
regime the synthetic generator should produce (``market_overrides``), and
how the experiment knobs differ from the stock ``LAPTOP``/``SMOKE`` scales
(``config_overrides`` / ``smoke_overrides``).  Materialising a spec
produces an ordinary :class:`~repro.experiments.configs.ExperimentConfig`,
so every existing entry point — tables, benchmarks, ``repro serve`` — runs
a scenario unchanged.

File-backed scenarios set ``export_synthetic=True``: materialisation first
exports the scenario's synthetic panel as per-stock CSVs (plus sector map)
into the scenario data directory and points the config's
:class:`~repro.data.FileBackend` at them.  The export is idempotent — a
manifest records the generating backend's cache key and the files are only
rewritten when it changes.

Errors raised while materialising carry the scenario name, so a typo in a
spec's overrides is attributable from the message alone.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from pathlib import Path

from ..data import (
    CorruptionSpec,
    DataSpec,
    SyntheticBackend,
    export_panel_csv,
    inject_corruption,
    repair_policy,
    save_audit_report,
)
from ..errors import ConfigurationError
from ..experiments.configs import SCALES, ExperimentConfig

__all__ = ["SCENARIO_DATA_ENV", "ScenarioSpec", "default_data_dir"]

#: Environment variable overriding where file-backed scenarios keep their
#: exported data (default: ``.scenario_data`` under the working directory).
SCENARIO_DATA_ENV = "REPRO_SCENARIO_DATA"

#: The experiment scales a scenario can materialise at — the same registry
#: the CLI's ``--scale`` consults.
_BASES = SCALES

#: ``ExperimentConfig`` fields :meth:`ScenarioSpec.experiment_config` sets
#: itself; a spec's ``config_overrides`` may not collide with them.
_RESERVED_OVERRIDES = ("name", "market_overrides", "data")

#: Name of the sector-map file exported next to the per-stock CSVs.
_SECTOR_MAP = "sectors.txt"


def default_data_dir() -> Path:
    """Directory for exported scenario data (override: ``REPRO_SCENARIO_DATA``)."""
    return Path(os.environ.get(SCENARIO_DATA_ENV, ".scenario_data"))


@dataclass(frozen=True)
class ScenarioSpec:
    """One named workload for the mine→compile→serve pipeline.

    Attributes
    ----------
    name / description:
        Registry identity and the one-liner ``repro scenario --list`` shows.
    data:
        Backend selection (:class:`~repro.data.DataSpec`); the frequency
        field is how resampled scenarios are expressed.
    config_overrides:
        ``(field, value)`` pairs applied to the base scale's
        :class:`~repro.experiments.configs.ExperimentConfig`.
    smoke_overrides:
        Extra pairs applied on top at the ``smoke`` scale (CI sizing).
    market_overrides:
        Regime parameters forwarded to
        :meth:`~repro.experiments.configs.ExperimentConfig.market_config`.
    export_synthetic:
        When true, materialisation exports the synthetic panel to CSV and
        rewrites ``data`` to a file backend over the export — the scenario
        then exercises the on-disk path end to end.
    corrections:
        Late point corrections (:class:`~repro.stream.driver.BarCorrection`)
        the runner injects after the stream: each rewrites an already-served
        bar through the server's bounded delta-replay, verified bitwise
        against a full replay of the corrected history.
    corruption:
        A :class:`~repro.data.CorruptionSpec` applied to the exported CSVs
        (requires ``export_synthetic``): the export is deterministically
        dirtied — duplicate rows, gaps, frozen quotes, splits, spikes — and
        the injected ground truth is written next to the data as
        ``corruption.json``.  The scenario then loads through the spec's
        repair policy (``data.repair``).
    repairs:
        Extra admissible repair-policy names.  When non-empty the runner
        re-serves the mined fleet under each of them and attaches a
        :class:`~repro.scenarios.robustness.RobustnessReport` (per-alpha
        IC/Sharpe bands, certain-vs-contingent ranking) to the result.
    """

    name: str
    description: str
    data: DataSpec = DataSpec()
    config_overrides: tuple[tuple[str, object], ...] = ()
    smoke_overrides: tuple[tuple[str, object], ...] = ()
    market_overrides: tuple[tuple[str, object], ...] = ()
    export_synthetic: bool = False
    corrections: tuple = ()
    corruption: CorruptionSpec | None = None
    repairs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")
        if self.export_synthetic and self.data.kind != "file":
            raise ConfigurationError(
                f"scenario {self.name!r}: export_synthetic requires "
                "DataSpec(kind='file')"
            )
        if self.corruption is not None and not self.export_synthetic:
            raise ConfigurationError(
                f"scenario {self.name!r}: corruption injection requires "
                "export_synthetic=True (there is nothing on disk to corrupt)"
            )
        if self.repairs:
            if self.data.kind != "file":
                raise ConfigurationError(
                    f"scenario {self.name!r}: robustness repairs require "
                    "DataSpec(kind='file') — repair policies act at load time"
                )
            for name in self.repairs:
                repair_policy(name)  # fail fast on unknown policy names

    # ------------------------------------------------------------------
    def overrides_for(self, scale: str) -> dict:
        """The merged ExperimentConfig overrides at ``scale``."""
        if scale not in _BASES:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown scale {scale!r}; "
                f"use one of {sorted(_BASES)}"
            )
        overrides = dict(self.config_overrides)
        if scale == "smoke":
            overrides.update(dict(self.smoke_overrides))
        reserved = sorted(set(overrides) & set(_RESERVED_OVERRIDES))
        if reserved:
            raise ConfigurationError(
                f"scenario {self.name!r}: overrides may not set {reserved}; "
                "those fields belong to the spec itself "
                "(name / market_overrides / data)"
            )
        return overrides

    def experiment_config(self, scale: str = "laptop",
                          data_dir: str | Path | None = None) -> ExperimentConfig:
        """Materialise this scenario into an :class:`ExperimentConfig`.

        ``data_dir`` overrides where file-backed scenarios export their
        CSVs (default :func:`default_data_dir`).  All configuration errors
        are re-raised with the scenario name attached.
        """
        overrides = self.overrides_for(scale)  # validates the scale name
        base = _BASES[scale]
        data = self.data
        try:
            config = base.scaled(
                name=f"{self.name}-{scale}",
                market_overrides=self.market_overrides,
                **overrides,
            )
            if self.export_synthetic:
                directory = self._export(config, scale, data_dir)
                data = replace(
                    data,
                    path=str(directory),
                    sector_map=str(directory / _SECTOR_MAP),
                )
            config = config.scaled(data=data)
            # Fail here, not deep inside a search, if the spec is broken.
            config.market_config()
            config.data_backend()
        except ConfigurationError as exc:
            raise ConfigurationError(f"scenario {self.name!r}: {exc}") from exc
        return config

    # ------------------------------------------------------------------
    def _export(self, config: ExperimentConfig, scale: str,
                data_dir: str | Path | None) -> Path:
        """Export the scenario's synthetic panel to CSV (idempotently)."""
        root = Path(data_dir) if data_dir is not None else default_data_dir()
        directory = root / f"{self.name}-{scale}"
        backend = SyntheticBackend(config.market_config(), seed=config.data_seed)
        manifest_path = directory / "manifest.json"
        manifest = {
            "cache_key": repr(backend.cache_key()),
            "num_stocks": config.num_stocks,
        }
        if self.corruption is not None:
            # Part of the manifest so a clean export from a pre-corruption
            # spec (or a different workload) is never mistaken for this one.
            manifest["corruption"] = repr(self.corruption)
        if manifest_path.exists():
            try:
                intact = (
                    json.loads(manifest_path.read_text()) == manifest
                    # A matching manifest over partially deleted data must
                    # re-export, not serve a silently shrunken universe.
                    and len(list(directory.glob("*.csv"))) == config.num_stocks
                    and (directory / _SECTOR_MAP).exists()
                )
                if intact:
                    return directory
            except (json.JSONDecodeError, OSError):
                pass
        # A re-export (changed sizing/regime/seed) must not leave stale
        # per-stock CSVs behind: FileBackend globs the directory, so any
        # leftover from the previous generation would silently join the
        # panel.
        if directory.exists():
            for stale in directory.glob("*.csv"):
                stale.unlink()
            (directory / _SECTOR_MAP).unlink(missing_ok=True)
            (directory / "corruption.json").unlink(missing_ok=True)
            manifest_path.unlink(missing_ok=True)
        export_panel_csv(backend.load_panel(), directory,
                         sector_map_name=_SECTOR_MAP)
        if self.corruption is not None:
            # Dirty the clean export deterministically and persist the
            # injected ground truth next to the data, so tests (and curious
            # humans) can compare it against a live audit of the directory.
            injected = inject_corruption(
                directory, self.corruption, exclude=(_SECTOR_MAP,)
            )
            save_audit_report(injected, directory / "corruption.json")
        manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
        return directory
