"""Streaming alpha-serving subsystem: incremental compiled execution.

Search (:mod:`repro.parallel`) and compilation (:mod:`repro.compile`)
produce a portfolio of compiled alphas; this package is where they get
*used*: evaluating arriving market data day by day without recomputing full
history, the incremental-evaluation-under-updates shape of serving systems.

* :mod:`repro.stream.incremental` — :class:`IncrementalAlpha` advances one
  compiled alpha one day per ``step``, persisting its rolling SSA state
  through the suspend/resume tape protocol of
  :mod:`repro.compile.executor`;
* :mod:`repro.stream.server`      — :class:`AlphaServer` registers the
  top-K mined programs and evaluates each new day's bar across all of them
  in one pass, with shared feature tensors and canonical-IR fingerprint
  deduplication of equivalent programs;
* :mod:`repro.stream.driver`      — :class:`OnlineBacktestDriver` feeds
  simulated market ticks through the server into the backtest engine,
  asserting bitwise parity with the offline batch path;
* :mod:`repro.stream.state`       — atomic save/load of suspended state,
  so a serving process survives restarts without replaying history; since
  server-state v2 a snapshot also carries the served-bar history, the
  correction log and the delta-replay payloads, so late corrections keep
  working after a restart.

Late data corrections are first-class: :meth:`AlphaServer.correct_bar`
rewrites one already-served bar and **delta-replays** only the invalidated
suffix — bounded by the compile-time lookback analysis
(:mod:`repro.compile.lookback`) and the engine layer's snapshot rings
(:mod:`repro.engine.replay`) — bitwise-identically to a full warm-start
recompute.  The driver's :class:`BarCorrection` + ``repro serve --correct``
inject and verify corrections end to end.

The online path is the *same code* as the offline backtest path — executor
contexts, training subsamples and label-reveal ordering all come from
:class:`repro.core.interpreter.AlphaEvaluator` — so research results and
served results can never diverge.  The CLI front door is ``repro serve``.
"""

from .driver import (
    BarCorrection,
    OnlineBacktestDriver,
    ServeReport,
    ServedAlphaRow,
    run_serve,
)
from .incremental import IncrementalAlpha
from .server import AlphaServer, CorrectionRecord, Registration, ServerState
from .state import load_state, save_state

__all__ = [
    "AlphaServer",
    "BarCorrection",
    "CorrectionRecord",
    "IncrementalAlpha",
    "OnlineBacktestDriver",
    "Registration",
    "ServeReport",
    "ServedAlphaRow",
    "ServerState",
    "load_state",
    "save_state",
    "run_serve",
]
