"""Online backtest driver: market ticks → AlphaServer → backtest engine.

The driver closes the loop the ROADMAP's serving goal asks for: it takes the
task set built from :mod:`repro.data.market_sim` ticks, warm-starts an
:class:`~repro.stream.server.AlphaServer` over the training history, then
replays the validation and test splits **one day at a time** — exactly as a
live serving process would see them — collecting each alpha's predictions
and handing the test-split panel to :class:`repro.backtest.engine.BacktestEngine`
for the paper's Sharpe/IC metrics.

Its defining feature is the **parity assertion**: for every served alpha the
day-by-day streamed predictions are compared bit for bit against the offline
batch path (:meth:`repro.core.interpreter.AlphaEvaluator.run` with the same
seed), and the online backtest metrics against the offline backtest of those
batch predictions.  Online serving and offline research share one code path,
so the assertion holds by construction — and the driver makes the contract
executable, which is what the CI stream-parity gate and
``benchmarks/bench_stream.py`` run.

:func:`run_serve` is the ``repro serve`` CLI entry point: it mines (or
receives) a top-K alpha fleet for an :class:`ExperimentConfig` and streams
it through the driver.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

import numpy as np

from ..backtest.engine import BacktestEngine
from ..core.interpreter import AlphaEvaluator
from ..core.program import AlphaProgram
from ..data.dataset import TaskSet
from ..engine.protocol import stream_days
from ..errors import StreamError
from ..obs import TELEMETRY, RunRecord, build_run_record
from .server import AlphaServer

__all__ = [
    "BarCorrection", "ServedAlphaRow", "ServeReport", "OnlineBacktestDriver",
    "run_serve",
]

#: Splits the driver streams, in chronological order.
_STREAM_SPLITS = ("valid", "test")


@dataclass(frozen=True)
class BarCorrection:
    """A late point correction to one already-served bar.

    ``day`` is the served-day index (0 = the first streamed bar, counting
    across the valid and test splits); the scales multiply that day's
    feature tensor / label vector — the shape a vendor restatement takes
    when it rescales a bad print.  ``None`` leaves that side untouched.
    """

    day: int
    feature_scale: float | None = None
    label_scale: float | None = None

    def __post_init__(self) -> None:
        if self.feature_scale is None and self.label_scale is None:
            raise StreamError(
                f"correction at day {self.day} changes neither features "
                f"nor labels"
            )


@dataclass
class ServedAlphaRow:
    """Metrics and parity verdict for one served alpha."""

    name: str
    sharpe: float
    ic: float
    #: Bitwise equality of streamed vs batch predictions, per split.
    parity: bool
    #: Whether this name shares another registration's executor.
    deduplicated: bool

    def row(self) -> dict[str, float | str | bool]:
        """A flat table row (used by the CLI and the recorder)."""
        return {
            "alpha": self.name,
            "sharpe": self.sharpe,
            "ic": self.ic,
            "parity": self.parity,
            "deduplicated": self.deduplicated,
        }


@dataclass
class ServeReport:
    """Everything one online serving run produced."""

    rows: list[ServedAlphaRow]
    #: Serving statistics from :meth:`AlphaServer.stats`.
    stats: dict[str, float | int]
    #: name → split → streamed ``(days, K)`` prediction panel.
    predictions: dict[str, dict[str, np.ndarray]]
    elapsed_seconds: float
    metadata: dict = field(default_factory=dict)
    #: Provenance + telemetry of the run (attached by :func:`run_serve`).
    run_record: RunRecord | None = None
    #: The fleet that was served, in row order (attached by
    #: :func:`run_serve`).  Lets callers replay the identical programs over
    #: a different data repair — the robustness-band evaluation in
    #: :mod:`repro.scenarios.robustness`.
    programs: list[AlphaProgram] | None = None
    program_names: list[str] | None = None

    @property
    def parity(self) -> bool:
        """Whether every served alpha matched the offline path bitwise.

        Covers both the clean stream (per-row verdicts) and, when late
        corrections were injected, the delta-replayed suffix against a full
        offline replay of the corrected history.
        """
        corrected = self.metadata.get("corrections")
        correction_parity = corrected is None or bool(corrected["parity"])
        return all(row.parity for row in self.rows) and correction_parity

    def render(self) -> str:
        """A printable summary table plus the serving statistics."""
        lines = ["{:<20} {:>10} {:>9} {:>7} {:>7}".format(
            "alpha", "Sharpe", "IC", "parity", "dedup")]
        for row in self.rows:
            lines.append("{:<20} {:>10.4f} {:>9.4f} {:>7} {:>7}".format(
                row.name, row.sharpe, row.ic,
                "ok" if row.parity else "FAIL",
                "yes" if row.deduplicated else "no"))
        stats = self.stats
        lines.append("")
        lines.append(
            f"served {stats['days_served']} days x "
            f"{stats['registered_alphas']} alphas "
            f"({stats['unique_executors']} unique executors, "
            f"{stats['deduplicated_alphas']} deduplicated)"
        )
        lines.append(
            f"bar latency mean {stats['mean_bar_latency_ms']:.3f} ms, "
            f"p95 {stats['p95_bar_latency_ms']:.3f} ms; "
            f"{stats['alpha_days_per_second']:.0f} alpha-days/s"
        )
        lines.append(
            "parity with the offline batch path: "
            + ("bitwise identical" if self.parity else "VIOLATED")
        )
        return "\n".join(lines)


class OnlineBacktestDriver:
    """Streams a program fleet through an :class:`AlphaServer` and verifies it.

    Parameters
    ----------
    taskset:
        The task set whose train split warms the server and whose valid/test
        splits are replayed as arriving bars.
    programs / names:
        The fleet to serve; ``names`` defaults to each program's own name.
    seed / max_train_steps / use_update:
        Evaluator settings, shared by the server and the offline reference
        path so the parity assertion is meaningful.
    long_k / short_k:
        Long-short book sizes for the backtest.
    """

    def __init__(
        self,
        taskset: TaskSet,
        programs: list[AlphaProgram],
        names: list[str] | None = None,
        seed: int | np.random.Generator | None = 0,
        max_train_steps: int | None = None,
        use_update: bool = True,
        long_k: int = 10,
        short_k: int = 10,
    ) -> None:
        if not programs:
            raise StreamError("no programs to serve")
        if names is not None and len(names) != len(programs):
            raise StreamError(
                f"{len(names)} names for {len(programs)} programs"
            )
        self.taskset = taskset
        self.programs = list(programs)
        self.names = list(names) if names is not None else [
            program.name for program in programs
        ]
        self.seed = seed
        self.max_train_steps = max_train_steps
        self.use_update = use_update
        self.engine = BacktestEngine(taskset, long_k=long_k, short_k=short_k)

    # ------------------------------------------------------------------
    def build_server(self) -> AlphaServer:
        """A warm server with the whole fleet registered."""
        server = AlphaServer(
            self.taskset,
            seed=self.seed,
            max_train_steps=self.max_train_steps,
            use_update=self.use_update,
        )
        for program, name in zip(self.programs, self.names):
            server.register(program, name=name)
        server.warm_start()
        return server

    def stream(self, server: AlphaServer) -> dict[str, dict[str, np.ndarray]]:
        """Replay the valid and test splits through ``server`` day by day.

        The day-loop (and its predict-before-reveal ordering) is the single
        shared implementation, :func:`repro.engine.protocol.stream_days` —
        the same loop the offline inference stage runs.
        """
        taskset = self.taskset
        num_tasks = taskset.num_tasks
        served: dict[str, dict[str, np.ndarray]] = {
            name: {
                split: np.zeros((getattr(taskset.split, split), num_tasks))
                for split in _STREAM_SPLITS
            }
            for name in self.names
        }
        for split in _STREAM_SPLITS:
            def step(day: int, bar: np.ndarray, split: str = split) -> None:
                predictions = server.on_bar(bar)
                for name in self.names:
                    served[name][split][day] = predictions[name]

            stream_days(
                taskset.split_features(split),
                taskset.split_labels(split),
                step,
                server.reveal,
            )
        return served

    # ------------------------------------------------------------------
    def apply_corrections(
        self,
        server: AlphaServer,
        served: dict[str, dict[str, np.ndarray]],
        corrections: list[BarCorrection],
    ) -> dict:
        """Inject late corrections into ``server`` and verify delta-replay.

        Each correction rewrites one already-served bar through
        :meth:`AlphaServer.correct_bar`; the delta-replayed suffix
        predictions are patched back into the ``served`` panels in place.
        Afterwards every unique alpha is re-run offline over a task set with
        the same corrections applied, and the panels are compared bit for
        bit — the executable form of the claim that bounded delta-replay
        equals a full warm-start recompute.  Returns the metadata block
        recorded under ``ServeReport.metadata["corrections"]``.
        """
        taskset = self.taskset
        valid_days = taskset.split.valid
        # Patched copies of the full sample panels back the offline
        # reference; served day d is global sample index train + d.
        features = np.array(taskset.features, copy=True)
        labels = np.array(taskset.labels, copy=True)
        records: list[dict] = []
        for correction in corrections:
            day = int(correction.day)
            if not 0 <= day < server.days_served:
                raise StreamError(
                    f"correction day {day} outside the "
                    f"{server.days_served} served days"
                )
            sample = taskset.split.train + day
            new_features = None
            new_labels = None
            if correction.feature_scale is not None:
                features[sample] = features[sample] * float(
                    correction.feature_scale
                )
                new_features = features[sample]
            if correction.label_scale is not None:
                labels[sample] = labels[sample] * float(correction.label_scale)
                new_labels = labels[sample]
            suffix = server.correct_bar(
                day, features=new_features, labels=new_labels
            )
            for name in self.names:
                panel = suffix[name]
                for offset in range(panel.shape[0]):
                    served_day = day + offset
                    if served_day < valid_days:
                        served[name]["valid"][served_day] = panel[offset]
                    else:
                        served[name]["test"][served_day - valid_days] = (
                            panel[offset]
                        )
            record = server.corrections[-1]
            records.append({
                "day": record.day,
                "features_corrected": record.features_corrected,
                "labels_corrected": record.labels_corrected,
                "replayed_days": record.replayed_days,
                "days_served": record.days_served,
            })
        # Offline reference over the *corrected* history: a fresh evaluator
        # on the patched task set, forced onto the server's base seed so the
        # comparison is meaningful even for Generator/None driver seeds.
        patched = dataclasses.replace(
            taskset, features=features, labels=labels
        )
        reference = AlphaEvaluator(
            patched,
            seed=self.seed,
            max_train_steps=self.max_train_steps,
            use_update=self.use_update,
            compiled=True,
        )
        reference._base_seed = server.base_seed
        batch_by_key: dict[str, dict[str, np.ndarray]] = {}
        key_by_name = {
            registration.name: registration.key
            for registration in server.registrations
        }
        violations: list[str] = []
        for program, name in zip(self.programs, self.names):
            key = key_by_name[name]
            batch = batch_by_key.get(key)
            if batch is None:
                batch = reference.run(program, splits=_STREAM_SPLITS)
                batch_by_key[key] = batch
            if not all(
                served[name][split].tobytes() == batch[split].tobytes()
                for split in _STREAM_SPLITS
            ):
                violations.append(name)
        return {
            "count": len(records),
            "records": records,
            "parity": not violations,
            "violations": violations,
        }

    # ------------------------------------------------------------------
    def run(self, strict_parity: bool = True) -> ServeReport:
        """Serve the fleet online and verify it against the offline path.

        With ``strict_parity`` (the default) any bitwise divergence between
        the streamed and the batch predictions — or between the online and
        offline backtest metrics — raises :class:`StreamError`; otherwise
        the mismatch is recorded in the report rows.
        """
        start = time.perf_counter()
        server = self.build_server()
        served = self.stream(server)
        return self.verify(server, served, strict_parity=strict_parity,
                           start_time=start)

    def verify(
        self,
        server: AlphaServer,
        served: dict[str, dict[str, np.ndarray]],
        strict_parity: bool = True,
        start_time: float | None = None,
    ) -> ServeReport:
        """Check streamed predictions against the offline path and report.

        Split out of :meth:`run` so callers that already hold a streamed
        server — the latency benchmark, a long-lived serving process — can
        get the parity verdict without serving the splits a second time.
        """
        start = time.perf_counter() if start_time is None else start_time
        # The server's own (paired) evaluator is the offline reference: with
        # a Generator or None seed a freshly built evaluator would draw a
        # *different* base seed, turning a healthy run into a spurious
        # parity failure.  Its run() builds a fresh context per call, so
        # running the batch path through it leaves the server untouched.
        offline = server.evaluator
        registration_key = {
            registration.name: registration.key
            for registration in server.registrations
        }
        deduplicated = {
            registration.name: registration.deduplicated
            for registration in server.registrations
        }
        rows: list[ServedAlphaRow] = []
        violations: list[str] = []
        # Names deduplicated onto one executor serve the representative's
        # predictions, so the (expensive) offline reference and the two
        # backtests are computed once per unique executor as well.
        batch_by_key: dict[str, dict[str, np.ndarray]] = {}
        results_by_key: dict[str, tuple] = {}
        for program, name in zip(self.programs, self.names):
            key = registration_key[name]
            batch = batch_by_key.get(key)
            if batch is None:
                batch = offline.run(program, splits=_STREAM_SPLITS)
                batch_by_key[key] = batch
                results_by_key[key] = (
                    self.engine.evaluate(
                        served[name]["test"], split="test", name=name
                    ),
                    self.engine.evaluate(batch["test"], split="test", name=name),
                )
            parity = all(
                served[name][split].tobytes() == batch[split].tobytes()
                for split in _STREAM_SPLITS
            )
            online_result, offline_result = results_by_key[key]
            same_metrics = (
                online_result.sharpe == offline_result.sharpe
                and online_result.ic == offline_result.ic
            ) or (
                np.isnan(online_result.sharpe)
                and np.isnan(offline_result.sharpe)
            )
            parity = parity and same_metrics
            if not parity:
                violations.append(name)
            rows.append(ServedAlphaRow(
                name=name,
                sharpe=online_result.sharpe,
                ic=online_result.ic,
                parity=parity,
                deduplicated=deduplicated[name],
            ))
        if strict_parity and violations:
            raise StreamError(
                "online serving diverged from the offline batch path for: "
                + ", ".join(violations)
            )
        return ServeReport(
            rows=rows,
            stats=server.stats(),
            predictions=served,
            elapsed_seconds=time.perf_counter() - start,
            metadata={
                "base_seed": server.base_seed,
                "splits": list(_STREAM_SPLITS),
            },
        )


# ---------------------------------------------------------------------------
# CLI entry point
# ---------------------------------------------------------------------------

def run_serve(config, programs: list[AlphaProgram] | None = None,
              names: list[str] | None = None,
              corrections: list[BarCorrection] | None = None) -> ServeReport:
    """Mine (or receive) a top-K fleet for ``config`` and serve it online.

    ``corrections`` injects late point corrections after the stream: each
    one rewrites an already-served bar through the server's bounded
    delta-replay (:meth:`AlphaServer.correct_bar`) and the corrected panels
    are verified bitwise against a full offline replay of the corrected
    history (``metadata["corrections"]``, folded into ``report.parity``).

    Without ``programs`` a :class:`~repro.core.mining.MiningSession` mines
    ``config.serve_top_k`` weakly correlated alphas — one search per
    initialisation, cycling D → NN → R as in the paper's protocol — and the
    accepted set is what gets served.  The report's metadata records how the
    fleet was obtained; its ``run_record`` captures provenance plus the
    per-phase (mine / compile / serve) wall-clock breakdown — and, when
    telemetry is enabled (``--telemetry`` or :func:`~repro.obs.telemetry_session`),
    the full metric snapshot and span tree.
    """
    # Imported lazily: repro.experiments sits above repro.stream.
    from ..core.initializations import get_initialization
    from ..core.mining import MiningSession
    from ..core.ops import Dimensions
    from ..experiments.configs import make_taskset

    #: Initialisations worth mining from (NOOP is the ablation baseline).
    mining_codes = ("D", "NN", "R")

    phase_seconds: dict[str, float] = {}
    phase_started = time.perf_counter()
    taskset = make_taskset(config)
    mined_names: list[str] | None = names
    if programs is None:
        with TELEMETRY.span("serve.mine", top_k=config.serve_top_k):
            session = MiningSession(
                taskset,
                evolution_config=config.evolution_config(),
                correlation_cutoff=config.correlation_cutoff,
                long_k=config.long_positions,
                short_k=config.short_positions,
                max_train_steps=config.max_train_steps,
                seed=config.search_seed,
                checkpoint_dir=config.checkpoint_dir,
            )
            dims = Dimensions(taskset.num_features, taskset.window)
            codes = [
                mining_codes[i % len(mining_codes)]
                for i in range(config.serve_top_k)
            ]
            for i, code in enumerate(codes):
                mined = session.search(
                    get_initialization(code, dims, seed=config.search_seed + i),
                    name=f"alpha_AE_{code}_{i}",
                    enforce_cutoff=True,
                )
                session.accept(mined)
            programs = session.accepted_programs()
            mined_names = [alpha.name for alpha in session.accepted]
    phase_seconds["mine"] = time.perf_counter() - phase_started

    driver = OnlineBacktestDriver(
        taskset,
        programs,
        names=mined_names,
        seed=config.search_seed,
        max_train_steps=config.max_train_steps,
        long_k=config.long_positions,
        short_k=config.short_positions,
    )
    start = time.perf_counter()
    # The compile phase covers registration (canonical-IR dedup), tape
    # compilation and the warm-start training replay.
    phase_started = time.perf_counter()
    with TELEMETRY.span("serve.compile", fleet=len(programs)):
        server = driver.build_server()
    phase_seconds["compile"] = time.perf_counter() - phase_started
    phase_started = time.perf_counter()
    with TELEMETRY.span("serve.stream"):
        served = driver.stream(server)
    # Parity violations are recorded in the report (and turned into a
    # non-zero exit by the CLI) instead of raising, so the rendered table
    # and --output diagnostics survive a failure.
    report = driver.verify(server, served, strict_parity=False,
                           start_time=start)
    phase_seconds["serve"] = time.perf_counter() - phase_started
    if corrections:
        # Verified *after* the clean-stream parity rows above, so a
        # correction failure is attributable to the delta-replay path.
        phase_started = time.perf_counter()
        with TELEMETRY.span("serve.correct", corrections=len(corrections)):
            report.metadata["corrections"] = driver.apply_corrections(
                server, served, list(corrections)
            )
        phase_seconds["correct"] = time.perf_counter() - phase_started
    report.programs = list(programs)
    report.program_names = list(driver.names)
    report.metadata["scale"] = config.name
    report.metadata["serve_top_k"] = getattr(config, "serve_top_k", len(programs))
    report.metadata["phase_seconds"] = {
        phase: round(seconds, 6) for phase, seconds in phase_seconds.items()
    }
    report.run_record = build_run_record(
        "serve",
        config=config,
        data_key=str(config.data_backend().cache_key()),
        engine="fleet-compiled",
        phase_seconds=report.metadata["phase_seconds"],
        metadata={
            "fleet": list(report.predictions),
            "parity": report.parity,
            "days_served": report.stats.get("days_served", 0),
            "stack_groups": report.stats.get("stack_groups", 0),
        },
    )
    return report
