"""Incremental (day-at-a-time) execution of one compiled alpha.

The offline evaluator (:class:`repro.core.interpreter.AlphaEvaluator`)
recomputes an alpha's whole history on every call: a training pass over all
training days followed by an inference pass over a full split.  For serving
— where one new market bar arrives per day — that is wasted work: the only
state an alpha carries between days is its operand memory, so advancing the
alpha by one day costs exactly one ``Predict()`` tape pass (plus a label
reveal), independent of how much history precedes it.

:class:`IncrementalAlpha` packages that contract around a
:class:`~repro.compile.executor.CompiledAlpha`:

* :meth:`warm_start` replays the training protocol once (identical, day for
  day, to the offline training stage — including the ``max_train_steps``
  subsampling, whose day indices the caller passes through);
* :meth:`step` advances one inference day (``set_input`` → ``run_predict``),
  returning the cross-sectional prediction;
* :meth:`reveal` writes the realised label *after* the prediction was taken,
  exactly as the offline inference loop does, so alphas that read recent
  labels see the same values in both paths;
* :meth:`suspend` / :meth:`resume` round-trip the rolling SSA state through
  the tape protocol of :mod:`repro.compile.executor`, so a server can be
  checkpointed mid-stream and continue bitwise identically.

Bitwise parity with the batched offline path is the design contract, tested
by ``tests/stream`` with fuzzed programs: for every day ``d`` of a split,
``step(features[d])`` equals row ``d`` of
``AlphaEvaluator.run(program)[split]`` bit for bit.
"""

from __future__ import annotations

import numpy as np

from ..compile import CompiledAlpha, TapeState, compile_program
from ..config import AddressSpace, DEFAULT_ADDRESS_SPACE
from ..core.ops import ExecutionContext
from ..core.program import AlphaProgram
from ..errors import StreamError

__all__ = ["IncrementalAlpha"]


class IncrementalAlpha:
    """One compiled alpha advanced one day at a time.

    Parameters
    ----------
    program:
        The alpha to serve; compiled through the execution pipeline
        (:func:`repro.compile.compile_program`) at construction.
    ctx:
        The evaluation context to bind the tape to.  For parity with an
        offline :class:`~repro.core.interpreter.AlphaEvaluator`, build it
        with :meth:`~repro.core.interpreter.AlphaEvaluator.make_context` of
        an evaluator constructed with the same seed.
    address_space:
        Operand address-space sizes used for program validation.
    """

    def __init__(
        self,
        program: AlphaProgram,
        ctx: ExecutionContext,
        address_space: AddressSpace = DEFAULT_ADDRESS_SPACE,
    ) -> None:
        program.validate(address_space)
        self.program = program
        self.executor = CompiledAlpha(compile_program(program), ctx)
        #: Inference days served since the warm start.
        self.days_served = 0
        self._warmed = False
        self._awaiting_label = False

    # ------------------------------------------------------------------
    @property
    def is_warm(self) -> bool:
        """Whether the alpha went through setup + training and can serve."""
        return self._warmed

    # ------------------------------------------------------------------
    def warm_start(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        day_indices: np.ndarray | None = None,
        use_update: bool = True,
    ) -> None:
        """Run ``Setup()`` plus the single-epoch training pass.

        ``features`` has shape ``(D, K, f, w)`` and ``labels`` ``(D, K)``;
        ``day_indices`` selects the visited subsample (defaults to every day
        in order) and must match the offline evaluator's
        :meth:`~repro.core.interpreter.AlphaEvaluator.train_day_indices` for
        the two paths to stay bitwise identical.
        """
        if self._warmed:
            raise StreamError("alpha is already warm; construct a fresh one "
                              "or resume a suspended state instead")
        executor = self.executor
        executor.run_setup()
        if day_indices is None:
            day_indices = np.arange(features.shape[0])
        for day in day_indices:
            executor.set_input(features[day])
            executor.run_predict()
            executor.set_label(labels[day])
            if use_update:
                executor.run_update()
        self._warmed = True

    # ------------------------------------------------------------------
    def step(self, features: np.ndarray) -> np.ndarray:
        """Advance one inference day and return the ``(K,)`` prediction.

        Mirrors one iteration of the offline inference loop: the day's
        feature matrices go into ``m0``, ``Predict()`` runs once, and the
        prediction is returned *before* the day's label exists.  Call
        :meth:`reveal` once the label realises.
        """
        if not self._warmed:
            raise StreamError("alpha must be warm-started (or resumed) "
                              "before it can serve days")
        if self._awaiting_label:
            raise StreamError("previous day's label was never revealed; "
                              "call reveal() between steps")
        executor = self.executor
        executor.set_input(features)
        executor.run_predict()
        self.days_served += 1
        self._awaiting_label = True
        return executor.prediction.copy()

    def reveal(self, labels: np.ndarray) -> None:
        """Write the realised ``(K,)`` labels of the last stepped day.

        The offline inference stage never runs ``Update()`` — the trained
        parameters are frozen — and neither does this; the label is only
        made visible so the next day's ``Predict()`` reads what the batch
        path would read.
        """
        if not self._awaiting_label:
            raise StreamError("no prediction is pending a label; "
                              "call step() first")
        self.executor.set_label(labels)
        self._awaiting_label = False

    # ------------------------------------------------------------------
    def suspend(self) -> TapeState:
        """Snapshot the rolling SSA state (see :class:`TapeState`)."""
        if self._awaiting_label:
            raise StreamError("cannot suspend between step() and reveal(); "
                              "reveal the pending label first")
        return self.executor.suspend()

    def resume(self, state: TapeState, days_served: int = 0) -> None:
        """Restore a snapshot into this (fresh, un-warmed) alpha."""
        if self._warmed:
            raise StreamError("cannot resume into an alpha that already ran; "
                              "construct a fresh one")
        self.executor.resume(state)
        self.days_served = int(days_served)
        self._warmed = True
