"""Incremental (day-at-a-time) serving of one compiled alpha.

:class:`IncrementalAlpha` is the streaming subsystem's public name for the
engine layer's :class:`~repro.engine.incremental.IncrementalExecutor`
bound to the compiled backend: ``warm_start`` replays the training stage
through the single protocol implementation
(:func:`repro.engine.protocol.training_pass`), ``step``/``reveal`` advance
one inference day with the offline label-reveal ordering, and
``suspend``/``resume`` round-trip the rolling operand state through the
tape protocol of :mod:`repro.compile.executor` so a server can be
checkpointed mid-stream and continue bitwise identically.

Bitwise parity with the batched offline path is the design contract, tested
by ``tests/stream`` with fuzzed programs: for every day ``d`` of a split,
``step(features[d])`` equals row ``d`` of
``AlphaEvaluator.run(program)[split]`` bit for bit.  The class keeps its
historical constructor signature; it is now a thin shim over the engine
layer (see ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

from ..config import AddressSpace, DEFAULT_ADDRESS_SPACE
from ..core.ops import ExecutionContext
from ..core.program import AlphaProgram
from ..engine.incremental import IncrementalExecutor

__all__ = ["IncrementalAlpha"]


class IncrementalAlpha(IncrementalExecutor):
    """One compiled alpha advanced one day at a time.

    Parameters
    ----------
    program:
        The alpha to serve; compiled through the execution pipeline
        (:func:`repro.compile.compile_program`) at construction.
    ctx:
        The evaluation context to bind the tape to.  For parity with an
        offline :class:`~repro.core.interpreter.AlphaEvaluator`, build it
        with :meth:`~repro.core.interpreter.AlphaEvaluator.make_context` of
        an evaluator constructed with the same seed.
    address_space:
        Operand address-space sizes used for program validation.
    """

    def __init__(
        self,
        program: AlphaProgram,
        ctx: ExecutionContext,
        address_space: AddressSpace = DEFAULT_ADDRESS_SPACE,
    ) -> None:
        super().__init__(
            program, ctx, address_space=address_space, engine="compiled"
        )
