"""Multi-alpha batch serving: one market bar in, all predictions out.

:class:`AlphaServer` is the online front of the engine layer's
:class:`~repro.engine.fleet.FleetEngine`: the top-K programs of a mining
session are *registered* once, *warm-started* once over the training
history, and then each arriving day ("bar") is evaluated across all of
them in one pass.  Three kinds of work are shared across the fleet:

* **feature extraction** — one ``(K, f, w)`` feature tensor per day is built
  once (by the task-set pipeline) and handed to every registered alpha; no
  per-alpha feature work exists;
* **the day loop** — one ``on_bar`` call advances every alpha, so per-day
  overhead (timing, label reveal, bookkeeping) is paid once, not K times;
* **duplicate programs** — the fleet fingerprints each program on its
  canonical IR (the same prune → :func:`repro.core.cache.fingerprint` flow
  the search's :class:`~repro.core.cache.FingerprintCache` uses), so mined
  alphas that are trivially equivalent — mirrored commutative operands,
  renamed registers, duplicated subexpressions — share a single incremental
  executor and are evaluated once per day, however many names point at them.

The server is the *same code path* as the offline backtest: every executor
context comes from
:meth:`~repro.core.interpreter.AlphaEvaluator.make_context` of an evaluator
built with the server's seed, warm-start replays exactly the evaluator's
training protocol (through the single day-loop of
:mod:`repro.engine.protocol`), and the driver (:mod:`repro.stream.driver`)
asserts the served predictions equal the offline batch path bit for bit —
results can never diverge between research and serving.

:meth:`suspend` / :meth:`resume` checkpoint the whole fleet's rolling state
(see :mod:`repro.stream.state`), so a serving process can be killed and
relaunched mid-stream without replaying history and without changing a
single output bit.

Real market data is never clean: :meth:`correct_bar` rewrites one
already-served bar and **delta-replays** only the suffix the correction
invalidates — the engine layer's bounded snapshot rings plus the
compile-time lookback bound (:mod:`repro.engine.replay`) make that bitwise
identical to a full warm-start replay at a fraction of the cost.  The
server retains the full served-bar history as the replay source of truth;
corrections patch it in place, are logged
(:class:`CorrectionRecord`), and survive suspend/resume.

The class keeps its historical public signature; registration, warm-start
and fan-out now delegate to the engine layer.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

import numpy as np

from ..compile import TapeState
from ..core.interpreter import AlphaEvaluator
from ..core.program import AlphaProgram
from ..data.dataset import TaskSet
from ..engine.fleet import FleetEngine, FleetMember
from ..errors import StreamError
from ..obs import TELEMETRY, Histogram

__all__ = ["CorrectionRecord", "Registration", "ServerState", "AlphaServer"]

#: Bumped whenever the server-state layout changes incompatibly.
#: v2: served-bar history, the correction log and the delta-replay
#: snapshot payloads ride along with the tapes.
SERVER_STATE_VERSION = 2

#: Reservoir size of the per-bar latency histogram: large enough that every
#: bar of a laptop-scale serve (and the bench suite) is kept exactly, yet a
#: years-long live stream stays bounded.
BAR_LATENCY_RESERVOIR = 4096


def taskset_fingerprint(taskset: TaskSet) -> str:
    """A content hash identifying the data a server was trained/served on.

    Covers the shape, the split, the dates and the full label panel —
    enough to distinguish two synthetic markets generated with different
    seeds even when every dimension matches.  (The labels are ``(N, K)``,
    so hashing them stays cheap even at paper scale; the feature tensor
    is derived from the same panel and is deliberately not hashed.)
    """
    digest = hashlib.sha256()
    digest.update(repr((
        taskset.num_samples, taskset.num_tasks, taskset.num_features,
        taskset.window, taskset.split,
    )).encode("utf-8"))
    digest.update(np.ascontiguousarray(taskset.dates).tobytes())
    digest.update(np.ascontiguousarray(taskset.labels).tobytes())
    return digest.hexdigest()


def _append_row(buffer: np.ndarray | None, length: int,
                row: np.ndarray) -> np.ndarray:
    """Append ``row`` at ``buffer[length]``, doubling capacity as needed."""
    row = np.asarray(row, dtype=float)
    if buffer is None:
        buffer = np.empty((8,) + row.shape, dtype=float)
    elif length == buffer.shape[0]:
        grown = np.empty((2 * buffer.shape[0],) + buffer.shape[1:],
                         dtype=float)
        grown[:length] = buffer[:length]
        buffer = grown
    buffer[length] = row
    return buffer


@dataclass(frozen=True)
class Registration(FleetMember):
    """One registered alpha name and where its predictions come from.

    The server's public name for the engine layer's
    :class:`~repro.engine.fleet.FleetMember` (same fields: ``name``, the
    canonical-IR ``key``, ``deduplicated``, ``redundant``).
    """


@dataclass(frozen=True)
class CorrectionRecord:
    """One applied point correction, as logged (and persisted) by the server."""

    #: Served-day index the correction rewrote.
    day: int
    #: Which parts of the bar changed.
    features_corrected: bool
    labels_corrected: bool
    #: ``days_served`` at the time the correction was applied.
    days_served: int
    #: Suffix length actually re-executed (max across the fleet's units).
    replayed_days: int


@dataclass(frozen=True)
class ServerState:
    """Suspended state of a whole :class:`AlphaServer` fleet.

    Contains one :class:`~repro.compile.executor.TapeState` per *unique*
    executor plus an echo of the registration table, so a resume under a
    different program set fails loudly instead of serving the wrong alpha.
    Since v2 it also carries the served-bar history, the correction log and
    the per-key delta-replay payloads, so :meth:`AlphaServer.correct_bar`
    keeps working across a suspend/resume round trip.
    """

    version: int
    base_seed: int
    #: Content hash of the task set the fleet was warmed/served on (see
    #: :func:`taskset_fingerprint`) — a resume against different market
    #: data of the same shape must fail loudly, not serve stale state.
    data_key: str
    days_served: int
    #: name → canonical fingerprint, in registration order.
    registrations: dict[str, str]
    #: canonical fingerprint → suspended tape state.
    tapes: dict[str, TapeState]
    #: Served-bar history ``(features (D, K, f, w), labels (D, K))`` with
    #: all applied corrections patched in; ``None`` on pre-v2 states.
    history: tuple[np.ndarray, np.ndarray] | None = None
    #: Corrections applied before suspension, oldest first.
    corrections: tuple[CorrectionRecord, ...] = ()
    #: canonical fingerprint → delta-replay payload (warm anchor + snapshot
    #: ring entries; see ``FleetEngine.suspend_replay_states``).
    replay: dict[str, dict] | None = None


class AlphaServer:
    """Serves the predictions of a registered alpha fleet day by day.

    Parameters
    ----------
    taskset:
        The task set whose feature pipeline and training history back the
        fleet; serving parity is defined against an
        :class:`~repro.core.interpreter.AlphaEvaluator` over this task set.
    seed:
        Evaluator seed; a server and an offline evaluator built with equal
        seeds (and settings) produce bitwise-identical predictions.
    max_train_steps / use_update:
        Training-stage knobs, mirrored from the evaluator.
    """

    def __init__(
        self,
        taskset: TaskSet,
        seed: int | np.random.Generator | None = 0,
        max_train_steps: int | None = None,
        use_update: bool = True,
    ) -> None:
        self.taskset = taskset
        self.use_update = use_update
        #: The paired offline evaluator: source of the execution contexts,
        #: the training-day subsample and the parity reference.
        self.evaluator = AlphaEvaluator(
            taskset,
            seed=seed,
            max_train_steps=max_train_steps,
            use_update=use_update,
            compiled=True,
        )
        self._data_key = taskset_fingerprint(taskset)
        #: The engine-layer fleet behind registration, warm-start and
        #: per-bar fan-out (one shared context, canonical dedup).
        self.fleet = FleetEngine(self.evaluator)
        self.registrations: list[Registration] = []
        self.days_served = 0
        #: Served-bar history — the delta-replay source of truth.  Stored in
        #: contiguous buffers grown geometrically (``(capacity, K, f, w)`` /
        #: ``(capacity, K)``), so a correction hands the engine O(1) views
        #: of the history instead of restacking O(T) days per call; patched
        #: in place by :meth:`correct_bar`.
        self._history_features: np.ndarray | None = None
        self._history_labels: np.ndarray | None = None
        self._num_bars = 0
        self._num_labels = 0
        #: Applied corrections, oldest first (persisted by :meth:`suspend`).
        self.corrections: list[CorrectionRecord] = []
        #: Bounded per-bar latency histogram: exact count/total/min/max plus
        #: a reservoir for percentiles — a long-lived serving process no
        #: longer grows a per-day Python list without limit.
        self._bar_latency = Histogram(
            "serve.bar_latency_seconds", reservoir_size=BAR_LATENCY_RESERVOIR
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_backend(
        cls,
        backend,
        split=None,
        seed: int | np.random.Generator | None = 0,
        max_train_steps: int | None = None,
        use_update: bool = True,
    ) -> "AlphaServer":
        """Build a server straight from a :class:`~repro.data.DataBackend`.

        Loads the backend's panel and builds the task set the server warms
        over — so a serving process can warm-start from the synthetic
        simulator, a directory of OHLCV files, or a resampled view of
        either, without touching the construction code.
        """
        taskset = backend.build_taskset(split=split)
        return cls(
            taskset, seed=seed, max_train_steps=max_train_steps,
            use_update=use_update,
        )

    # ------------------------------------------------------------------
    @property
    def base_seed(self) -> int:
        """The derived seed shared with the paired offline evaluator."""
        return self.evaluator.base_seed

    @property
    def num_registered(self) -> int:
        """Number of registered alpha names."""
        return len(self.registrations)

    @property
    def num_unique(self) -> int:
        """Number of distinct executors behind those names."""
        return self.fleet.num_unique

    @property
    def names(self) -> list[str]:
        """Registered alpha names, in registration order."""
        return [registration.name for registration in self.registrations]

    @property
    def _warmed(self) -> bool:
        return self.fleet.is_warm

    @property
    def _executors(self):
        """key → incremental executor of the fleet (one per unique alpha)."""
        return self.fleet.executors

    # ------------------------------------------------------------------
    def register(self, program: AlphaProgram, name: str | None = None) -> Registration:
        """Add ``program`` to the served fleet under ``name``.

        Programs whose canonical-IR fingerprint matches an already
        registered one share that executor (``deduplicated=True``): they are
        evaluated once per bar and their names receive the same prediction
        array.  Registration is only allowed before :meth:`warm_start`.
        """
        if self._warmed:
            raise StreamError("cannot register alphas on a warm server; "
                              "register the whole fleet first")
        member = self.fleet.add(program, name=name)
        registration = Registration(**vars(member))
        self.registrations.append(registration)
        return registration

    # ------------------------------------------------------------------
    def warm_start(self) -> None:
        """Set up and train every unique executor over the training split.

        Replays exactly the offline evaluator's training stage — same
        feature tensors, same ``max_train_steps`` day subsample, same
        label-reveal ordering — once per unique executor, through the
        shared :func:`repro.engine.protocol.training_pass`.
        """
        if self._warmed:
            raise StreamError("server is already warm")
        if not self.registrations:
            raise StreamError("no alphas registered; nothing to warm-start")
        with TELEMETRY.span(
            "serve.warm_start",
            registered=self.num_registered,
            unique=self.num_unique,
        ):
            self.fleet.warm_start(use_update=self.use_update)

    # ------------------------------------------------------------------
    def on_bar(self, features: np.ndarray) -> dict[str, np.ndarray]:
        """Evaluate one arriving day across the whole fleet.

        ``features`` is the day's ``(K, f, w)`` feature tensor, shared by
        every alpha.  Returns name → ``(K,)`` prediction; deduplicated names
        reference the same array.  Call :meth:`reveal` with the realised
        labels before the next bar.
        """
        if not self._warmed:
            raise StreamError("server must be warm-started (or resumed) "
                              "before serving bars")
        start = time.perf_counter()
        by_key = self.fleet.step_bar(features)
        elapsed = time.perf_counter() - start
        self._bar_latency.observe(elapsed)
        if TELEMETRY.enabled:
            TELEMETRY.counter("serve.bars").inc()
            TELEMETRY.histogram("serve.bar_latency_ms").observe(elapsed * 1e3)
        self.days_served += 1
        self._history_features = _append_row(
            self._history_features, self._num_bars, features
        )
        self._num_bars += 1
        return {
            registration.name: by_key[registration.key]
            for registration in self.registrations
        }

    def reveal(self, labels: np.ndarray) -> None:
        """Reveal the last bar's realised ``(K,)`` labels to every alpha."""
        self.fleet.reveal(labels)
        self._history_labels = _append_row(
            self._history_labels, self._num_labels, labels
        )
        self._num_labels += 1

    # ------------------------------------------------------------------
    def correct_bar(
        self,
        day: int,
        features: np.ndarray | None = None,
        labels: np.ndarray | None = None,
    ) -> dict[str, np.ndarray]:
        """Rewrite an already-served bar and delta-replay the fleet.

        ``day`` is the served-day index (0 = the first bar after warm-start);
        at least one of ``features`` (``(K, f, w)``) / ``labels`` (``(K,)``)
        must be given and replaces that day's retained bar.  Every unit of
        the fleet rewinds to its newest clean snapshot at or before ``day``
        — or spins up over its compile-time lookback bound — and replays
        only the invalidated suffix, bitwise-identically to a full
        warm-start replay over the corrected history.  ``days_served`` is
        unchanged.  Returns name → ``(days_served - day, K)`` corrected
        predictions for the replayed suffix.
        """
        if not self._warmed:
            raise StreamError("server must be warm-started (or resumed) "
                              "before correcting bars")
        if features is None and labels is None:
            raise StreamError("a correction must change the bar's features "
                              "or labels (or both)")
        if not 0 <= day < self.days_served:
            raise StreamError(
                f"cannot correct day {day}: {self.days_served} days served"
            )
        if self._num_labels != self.days_served:
            raise StreamError(
                "served-bar history is incomplete (a label is pending, or "
                "the server was resumed from a state without history); "
                "corrections need the full served history"
            )
        record_kwargs = {
            "features_corrected": features is not None,
            "labels_corrected": labels is not None,
        }
        if features is not None:
            patch = np.asarray(features, dtype=float)
            if patch.shape != self._history_features.shape[1:]:
                raise StreamError(
                    f"corrected features have shape {patch.shape}, day "
                    f"{day} was served with {self._history_features.shape[1:]}"
                )
            self._history_features[day] = patch
        if labels is not None:
            patch = np.asarray(labels, dtype=float)
            if patch.shape != self._history_labels.shape[1:]:
                raise StreamError(
                    f"corrected labels have shape {patch.shape}, day "
                    f"{day} was revealed with {self._history_labels.shape[1:]}"
                )
            self._history_labels[day] = patch
        history_features = self._history_features[:self.days_served]
        history_labels = self._history_labels[:self.days_served]
        with TELEMETRY.span("serve.correct", day=day,
                            days_served=self.days_served):
            by_key = self.fleet.correct(day, history_features, history_labels)
        replayed = max(result.replayed_days for result in by_key.values())
        if TELEMETRY.enabled:
            # A full warm-start replay would re-run the training pass plus
            # every served day; the delta path replays only the suffix.
            full_replay = (
                len(self.evaluator.train_day_indices()) + self.days_served
            )
            TELEMETRY.counter("stream.corrections").inc()
            TELEMETRY.counter("stream.replay_days").inc(replayed)
            TELEMETRY.counter("stream.replay_days_saved").inc(
                max(full_replay - replayed, 0)
            )
        self.corrections.append(CorrectionRecord(
            day=day, days_served=self.days_served, replayed_days=replayed,
            **record_kwargs,
        ))
        return {
            registration.name: by_key[registration.key].predictions
            for registration in self.registrations
        }

    # ------------------------------------------------------------------
    def suspend(self) -> ServerState:
        """Snapshot the whole fleet's rolling state for later resumption."""
        if not self._warmed:
            raise StreamError("cannot suspend a server that was never warmed")
        history = None
        if self._num_labels and self._num_labels == self._num_bars:
            history = (
                np.array(self._history_features[:self._num_bars], copy=True),
                np.array(self._history_labels[:self._num_labels], copy=True),
            )
        return ServerState(
            version=SERVER_STATE_VERSION,
            base_seed=self.base_seed,
            data_key=self._data_key,
            days_served=self.days_served,
            registrations={
                registration.name: registration.key
                for registration in self.registrations
            },
            tapes=self.fleet.suspend_tapes(),
            history=history,
            corrections=tuple(self.corrections),
            replay=self.fleet.suspend_replay_states(),
        )

    def resume(self, state: ServerState) -> None:
        """Restore a :meth:`suspend` snapshot into this (fresh) server.

        The same programs must have been registered first; the snapshot's
        registration table, version and seed are validated against this
        server before any state is touched.
        """
        if self._warmed:
            raise StreamError("cannot resume into a server that already ran")
        if state.version != SERVER_STATE_VERSION:
            raise StreamError(
                f"server state has version {state.version}, this build "
                f"reads version {SERVER_STATE_VERSION}"
            )
        if state.base_seed != self.base_seed:
            raise StreamError(
                f"server state was produced under base seed "
                f"{state.base_seed}, this server runs under {self.base_seed}"
            )
        if state.data_key != self._data_key:
            raise StreamError(
                "server state was produced on a different task set; "
                "resuming it here would silently mix training histories"
            )
        registered = {
            registration.name: registration.key
            for registration in self.registrations
        }
        if state.registrations != registered:
            raise StreamError(
                "server state registration table does not match this "
                "server; register the same programs under the same names "
                "before resuming"
            )
        self.fleet.resume_tapes(state.tapes, days_served=state.days_served)
        self.days_served = int(state.days_served)
        if state.history is not None:
            features, labels = state.history
            self._history_features = np.array(features, dtype=float, copy=True)
            self._history_labels = np.array(labels, dtype=float, copy=True)
            self._num_bars = int(features.shape[0])
            self._num_labels = int(labels.shape[0])
        self.corrections = list(state.corrections)
        if state.replay is not None:
            self.fleet.resume_replay_states(state.replay)

    # ------------------------------------------------------------------
    @property
    def bar_latencies(self) -> list[float]:
        """Per-bar wall-clock seconds (the histogram's bounded reservoir).

        Exact and complete up to :data:`BAR_LATENCY_RESERVOIR` served bars;
        beyond that it is a uniform sample — use :meth:`stats` for exact
        count/mean/total however long the stream runs.
        """
        return self._bar_latency.values

    def stats(self) -> dict[str, float | int]:
        """Serving statistics: fleet size, dedup wins and bar latency."""
        histogram = self._bar_latency
        served = histogram.count
        mean_latency = histogram.mean if served else 0.0
        p95_latency = histogram.percentile(95.0) if served else 0.0
        total = histogram.total
        alpha_days = self.num_registered * served
        return {
            "registered_alphas": self.num_registered,
            "unique_executors": self.num_unique,
            "stack_groups": self.fleet.stack_groups,
            "deduplicated_alphas": self.num_registered - self.num_unique,
            "redundant_alphas": sum(
                1 for registration in self.registrations if registration.redundant
            ),
            "days_served": self.days_served,
            "bars_timed": served,
            "mean_bar_latency_ms": mean_latency * 1e3,
            "p95_bar_latency_ms": p95_latency * 1e3,
            "alpha_days_per_second": (alpha_days / total) if total > 0 else 0.0,
        }
