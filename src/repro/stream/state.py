"""Atomic persistence of suspended streaming state.

Thin wrappers around the crash-safe pickle helpers shared with the search
checkpoints (:func:`repro.parallel.checkpoint.atomic_pickle_save`): the
state is pickled to a temporary file and ``os.replace``\\ d over the target,
so a crash mid-write never corrupts a previous snapshot.  Both
:class:`~repro.stream.server.ServerState` (a whole fleet) and a single
:class:`~repro.compile.executor.TapeState` are plain data and round-trip
through here; structural validation — versions, seeds, registration tables
— happens at ``resume`` time, not at load time, because only the resuming
object knows what it expects.

Since server-state v2 a :class:`~repro.stream.server.ServerState` also
persists the served-bar history, the applied
:class:`~repro.stream.server.CorrectionRecord` log and the per-alpha
delta-replay payloads (warm anchors + snapshot rings), so a resumed server
can keep accepting ``correct_bar`` calls — including for days served before
the restart — without any recompute.
"""

from __future__ import annotations

from ..errors import StreamError
from ..parallel.checkpoint import atomic_pickle_save, load_pickle

__all__ = ["save_state", "load_state"]


def save_state(path: str, state: object) -> None:
    """Atomically pickle ``state`` (a ``ServerState``/``TapeState``) to ``path``."""
    atomic_pickle_save(path, state, error_cls=StreamError, what="stream state")


def load_state(path: str) -> object:
    """Load a state written by :func:`save_state`."""
    return load_pickle(path, error_cls=StreamError, what="stream state")
