"""Tests for the backtest engine."""

import numpy as np
import pytest

from repro.backtest import BacktestEngine
from repro.errors import BacktestError


@pytest.fixture()
def engine(small_taskset):
    return BacktestEngine(small_taskset, long_k=5, short_k=5)


class TestBacktestEngine:
    def test_perfect_alpha_on_test_split(self, small_taskset, engine):
        labels = small_taskset.split_labels("test")
        result = engine.evaluate(labels, split="test", name="oracle")
        assert result.ic == pytest.approx(1.0)
        assert result.sharpe > 5.0
        assert result.portfolio_returns.shape == (small_taskset.split.test,)
        assert (result.portfolio_returns > 0).all()
        assert result.max_drawdown == pytest.approx(0.0)

    def test_inverse_alpha_is_bad(self, small_taskset, engine):
        labels = small_taskset.split_labels("test")
        result = engine.evaluate(-labels, split="test")
        assert result.ic == pytest.approx(-1.0)
        assert result.sharpe < 0

    def test_summary_keys(self, small_taskset, engine):
        labels = small_taskset.split_labels("valid")
        summary = engine.evaluate(labels, split="valid").summary()
        assert set(summary) == {"sharpe", "ic", "annual_return", "annual_volatility",
                                "max_drawdown"}

    def test_correlation_between_results(self, small_taskset, engine, rng):
        labels = small_taskset.split_labels("test")
        oracle = engine.evaluate(labels, split="test")
        noise = engine.evaluate(rng.normal(size=labels.shape), split="test")
        assert abs(oracle.correlation_with(noise)) < 0.6
        assert oracle.correlation_with(oracle) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self, small_taskset, engine):
        with pytest.raises(BacktestError):
            engine.evaluate(np.zeros((3, small_taskset.num_tasks)), split="test")
        with pytest.raises(BacktestError):
            engine.portfolio_returns(np.zeros((3, 2)), split="valid")

    def test_portfolio_returns_match_evaluate(self, small_taskset, engine):
        labels = small_taskset.split_labels("valid")
        np.testing.assert_allclose(
            engine.portfolio_returns(labels, split="valid"),
            engine.evaluate(labels, split="valid").portfolio_returns,
        )
