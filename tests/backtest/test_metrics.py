"""Tests for portfolio and prediction metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.backtest import (
    annualized_return,
    annualized_volatility,
    daily_information_coefficient,
    information_coefficient,
    max_drawdown,
    pearson_correlation,
    sharpe_ratio,
)
from repro.errors import BacktestError


class TestPearsonCorrelation:
    def test_matches_numpy(self, rng):
        x, y = rng.normal(size=100), rng.normal(size=100)
        np.testing.assert_allclose(
            pearson_correlation(x, y), np.corrcoef(x, y)[0, 1], rtol=1e-12
        )

    def test_perfect_and_inverse(self, rng):
        x = rng.normal(size=50)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_series_returns_zero(self):
        assert pearson_correlation(np.ones(10), np.arange(10)) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(BacktestError):
            pearson_correlation(np.ones(5), np.ones(6))

    def test_single_point_returns_zero(self):
        assert pearson_correlation(np.array([1.0]), np.array([2.0])) == 0.0

    @given(hnp.arrays(np.float64, 30, elements=st.floats(-1e4, 1e4)),
           hnp.arrays(np.float64, 30, elements=st.floats(-1e4, 1e4)))
    @settings(max_examples=40, deadline=None)
    def test_bounded(self, x, y):
        assert abs(pearson_correlation(x, y)) <= 1.0 + 1e-9


class TestSharpeRatio:
    def test_positive_drift(self):
        returns = np.full(252, 0.001) + np.linspace(-1e-4, 1e-4, 252)
        assert sharpe_ratio(returns) > 0

    def test_zero_volatility_returns_zero(self):
        assert sharpe_ratio(np.full(10, 0.001)) == 0.0

    def test_sign_flip(self, rng):
        returns = rng.normal(0.001, 0.01, size=252)
        assert sharpe_ratio(returns) == pytest.approx(-sharpe_ratio(-returns), rel=1e-9)

    def test_matches_manual_formula(self, rng):
        returns = rng.normal(0.0005, 0.01, size=100)
        expected = returns.mean() * 252 / (returns.std(ddof=1) * np.sqrt(252))
        assert sharpe_ratio(returns) == pytest.approx(expected)

    def test_risk_free_rate_subtracted(self, rng):
        returns = rng.normal(0.001, 0.01, size=100)
        assert sharpe_ratio(returns, risk_free_rate=0.05) < sharpe_ratio(returns)

    def test_empty_rejected(self):
        with pytest.raises(BacktestError):
            sharpe_ratio(np.array([]))


class TestAnnualization:
    def test_annualized_return(self):
        assert annualized_return(np.full(10, 0.001)) == pytest.approx(0.252)

    def test_annualized_volatility_scaling(self, rng):
        returns = rng.normal(0, 0.01, size=300)
        expected = returns.std(ddof=1) * np.sqrt(252)
        assert annualized_volatility(returns) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(BacktestError):
            annualized_return(np.array([]))
        with pytest.raises(BacktestError):
            annualized_volatility(np.array([]))


class TestMaxDrawdown:
    def test_monotone_growth_has_zero_drawdown(self):
        assert max_drawdown(np.full(50, 0.01)) == pytest.approx(0.0)

    def test_known_drawdown(self):
        returns = np.array([0.10, -0.50, 0.20])
        assert max_drawdown(returns) == pytest.approx(0.5)

    def test_bounded_below_one_for_sane_returns(self, rng):
        returns = rng.normal(0, 0.02, size=500)
        assert 0.0 <= max_drawdown(returns) < 1.0

    def test_empty_rejected(self):
        with pytest.raises(BacktestError):
            max_drawdown(np.array([]))


class TestInformationCoefficient:
    def test_daily_shape(self, rng):
        predictions = rng.normal(size=(7, 40))
        labels = rng.normal(size=(7, 40))
        assert daily_information_coefficient(predictions, labels).shape == (7,)

    def test_mean_relationship(self, rng):
        predictions = rng.normal(size=(7, 40))
        labels = rng.normal(size=(7, 40))
        np.testing.assert_allclose(
            information_coefficient(predictions, labels),
            daily_information_coefficient(predictions, labels).mean(),
        )

    def test_consistent_with_core_fitness(self, rng):
        from repro.core import mean_ic

        predictions = rng.normal(size=(6, 25))
        labels = rng.normal(size=(6, 25))
        np.testing.assert_allclose(
            information_coefficient(predictions, labels), mean_ic(predictions, labels),
            rtol=1e-9,
        )

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(BacktestError):
            information_coefficient(rng.normal(size=(5, 4)), rng.normal(size=(4, 5)))
