"""Tests for the long-short portfolio construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.backtest import LongShortPortfolio, long_short_returns
from repro.errors import BacktestError


class TestDailyWeights:
    def test_dollar_neutral(self, rng):
        portfolio = LongShortPortfolio(long_k=5, short_k=5)
        books = portfolio.daily_weights(rng.normal(size=40))
        assert books.weights.sum() == pytest.approx(0.0)
        assert books.weights[books.long_indices].sum() == pytest.approx(0.5)
        assert books.weights[books.short_indices].sum() == pytest.approx(-0.5)

    def test_top_and_bottom_selected(self):
        portfolio = LongShortPortfolio(long_k=2, short_k=2)
        predictions = np.array([0.5, -0.3, 0.9, 0.0, -0.8, 0.1])
        books = portfolio.daily_weights(predictions)
        assert set(books.long_indices) == {0, 2}
        assert set(books.short_indices) == {1, 4}

    def test_books_never_overlap_small_universe(self, rng):
        portfolio = LongShortPortfolio(long_k=50, short_k=50)
        books = portfolio.daily_weights(rng.normal(size=12))
        assert not set(books.long_indices) & set(books.short_indices)

    def test_effective_books_cap(self):
        portfolio = LongShortPortfolio(long_k=50, short_k=50)
        long_k, short_k = portfolio.effective_books(30)
        assert long_k == short_k == 10

    def test_invalid_parameters(self):
        with pytest.raises(BacktestError):
            LongShortPortfolio(long_k=0)
        with pytest.raises(BacktestError):
            LongShortPortfolio(long_k=5, short_k=-1)
        with pytest.raises(BacktestError):
            LongShortPortfolio().effective_books(1)

    @given(hnp.arrays(np.float64, 25, elements=st.floats(-10, 10)))
    @settings(max_examples=40, deadline=None)
    def test_weights_always_sum_to_zero(self, predictions):
        portfolio = LongShortPortfolio(long_k=5, short_k=5)
        books = portfolio.daily_weights(predictions)
        assert books.weights.sum() == pytest.approx(0.0, abs=1e-12)


class TestPortfolioReturns:
    def test_perfect_foresight_is_profitable(self, rng):
        realized = rng.normal(0, 0.02, size=(30, 40))
        returns = long_short_returns(realized, realized, long_k=5, short_k=5)
        assert (returns > 0).all()

    def test_inverted_foresight_loses(self, rng):
        realized = rng.normal(0, 0.02, size=(30, 40))
        returns = long_short_returns(-realized, realized, long_k=5, short_k=5)
        assert (returns < 0).all()

    def test_random_predictions_near_zero_mean(self, rng):
        predictions = rng.normal(size=(200, 50))
        realized = rng.normal(0, 0.02, size=(200, 50))
        returns = long_short_returns(predictions, realized, long_k=10, short_k=10)
        assert abs(returns.mean()) < 0.005

    def test_market_neutrality(self, rng):
        """Adding a common market move to every stock leaves returns unchanged."""
        portfolio = LongShortPortfolio(long_k=5, short_k=5)
        predictions = rng.normal(size=(20, 30))
        realized = rng.normal(0, 0.02, size=(20, 30))
        base = portfolio.returns(predictions, realized)
        shifted = portfolio.returns(predictions, realized + 0.05)
        np.testing.assert_allclose(base, shifted, atol=1e-12)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(BacktestError):
            long_short_returns(rng.normal(size=(5, 10)), rng.normal(size=(5, 9)))

    def test_net_asset_value_compounds(self, rng):
        portfolio = LongShortPortfolio(long_k=5, short_k=5)
        predictions = rng.normal(size=(10, 30))
        realized = rng.normal(0, 0.02, size=(10, 30))
        nav = portfolio.net_asset_value(predictions, realized, initial_nav=100.0)
        returns = portfolio.returns(predictions, realized)
        np.testing.assert_allclose(nav, 100.0 * np.cumprod(1 + returns))

    def test_invalid_initial_nav(self, rng):
        portfolio = LongShortPortfolio(long_k=2, short_k=2)
        with pytest.raises(BacktestError):
            portfolio.net_asset_value(rng.normal(size=(5, 10)),
                                      rng.normal(size=(5, 10)), initial_nav=0.0)
