"""Tests for the numpy autograd engine, including numerical gradient checks."""

import numpy as np
import pytest

from repro.baselines.neural import Tensor, as_tensor, concatenate, stack, uniform, zeros
from repro.errors import BaselineError


def numerical_gradient(fn, value, epsilon=1e-6):
    """Central-difference gradient of scalar-valued ``fn`` at ``value``."""
    gradient = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = fn(value)
        flat[index] = original - epsilon
        lower = fn(value)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * epsilon)
    return gradient


def check_gradient(build, shape, rng, rtol=1e-4, atol=1e-6):
    """Compare autograd gradients with numerical differentiation."""
    value = rng.normal(size=shape)

    def forward(array):
        tensor = Tensor(array.copy(), requires_grad=True)
        return build(tensor).item()

    tensor = Tensor(value.copy(), requires_grad=True)
    build(tensor).backward()
    numeric = numerical_gradient(forward, value.copy())
    np.testing.assert_allclose(tensor.grad, numeric, rtol=rtol, atol=atol)


class TestTensorBasics:
    def test_as_tensor_passthrough(self):
        tensor = Tensor([1.0, 2.0])
        assert as_tensor(tensor) is tensor
        assert isinstance(as_tensor([1.0]), Tensor)

    def test_item_requires_scalar(self):
        with pytest.raises(BaselineError):
            Tensor([1.0, 2.0]).item()

    def test_backward_requires_grad(self):
        with pytest.raises(BaselineError):
            Tensor([1.0]).backward()

    def test_backward_requires_scalar_without_gradient(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(BaselineError):
            (tensor * 2).backward()

    def test_detach_cuts_graph(self):
        tensor = Tensor([1.0], requires_grad=True)
        assert not tensor.detach().requires_grad

    def test_zeros_and_uniform_helpers(self):
        assert zeros(3, 2).shape == (3, 2)
        sampled = uniform(4, 4, scale=0.5, rng=np.random.default_rng(0))
        assert np.abs(sampled.data).max() <= 0.5


class TestGradients:
    def test_add_mul(self, rng):
        check_gradient(lambda x: ((x * 3.0 + 1.0) * x).sum(), (4, 3), rng)

    def test_sub_div_pow(self, rng):
        check_gradient(lambda x: ((x - 2.0) / 3.0).sum() + (x**2).sum(), (5,), rng)

    def test_matmul(self, rng):
        weight = rng.normal(size=(3, 2))
        check_gradient(lambda x: x.matmul(Tensor(weight)).sum(), (4, 3), rng)

    def test_matmul_right_operand(self, rng):
        inputs = Tensor(rng.normal(size=(4, 3)))
        weight = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        inputs.matmul(weight).sum().backward()
        numeric = numerical_gradient(
            lambda w: (inputs.data @ w).sum(), weight.data.copy()
        )
        np.testing.assert_allclose(weight.grad, numeric, rtol=1e-5, atol=1e-7)

    def test_tanh_sigmoid_relu(self, rng):
        check_gradient(lambda x: x.tanh().sum(), (6,), rng)
        check_gradient(lambda x: x.sigmoid().sum(), (6,), rng)
        check_gradient(lambda x: (x.relu() * x).sum(), (6,), rng, atol=1e-5)

    def test_exp_log(self, rng):
        check_gradient(lambda x: x.exp().sum(), (5,), rng)
        check_gradient(lambda x: (x * x + 1.0).log().sum(), (5,), rng)

    def test_mean_and_axis_sum(self, rng):
        check_gradient(lambda x: x.mean().reshape(1).sum(), (3, 4), rng)
        check_gradient(lambda x: x.sum(axis=1).sum(), (3, 4), rng)

    def test_broadcast_bias(self, rng):
        bias = Tensor(rng.normal(size=3), requires_grad=True)
        inputs = Tensor(rng.normal(size=(5, 3)))
        (inputs + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(3, 5.0))

    def test_slicing(self, rng):
        check_gradient(lambda x: x[:, 1].sum(), (4, 3), rng)

    def test_reshape_transpose(self, rng):
        check_gradient(lambda x: x.reshape(12).sum(), (3, 4), rng)
        check_gradient(lambda x: x.transpose().sum(), (3, 4), rng)

    def test_concatenate_and_stack(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        concatenate([a, b], axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))

        a.zero_grad()
        b.zero_grad()
        stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_gradient_accumulates_over_multiple_uses(self, rng):
        x = Tensor(rng.normal(size=4), requires_grad=True)
        ((x * 2.0).sum() + (x * 3.0).sum()).backward()
        np.testing.assert_allclose(x.grad, np.full(4, 5.0))

    def test_empty_concatenate_rejected(self):
        with pytest.raises(BaselineError):
            concatenate([])
        with pytest.raises(BaselineError):
            stack([])
