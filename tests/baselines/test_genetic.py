"""Tests for the genetic-programming baseline."""

import numpy as np
import pytest

from repro.backtest import BacktestEngine
from repro.baselines.genetic import (
    ConstantTerminal,
    ExpressionTree,
    FeatureTerminal,
    FunctionNode,
    GeneticAlphaMiner,
    GeneticConfig,
    get_function,
    list_functions,
    random_tree,
)
from repro.core import CorrelationFilter
from repro.core.fitness import INVALID_FITNESS
from repro.errors import BaselineError


class TestFunctions:
    def test_known_functions(self):
        for name in ("add", "sub", "mul", "div", "log", "sqrt", "neg", "abs"):
            assert get_function(name).name == name

    def test_unknown_function(self):
        with pytest.raises(BaselineError):
            get_function("nope")

    def test_protected_division(self, rng):
        div = get_function("div")
        result = div(rng.normal(size=10), np.zeros(10))
        assert np.isfinite(result).all()

    def test_protected_log_and_sqrt(self):
        assert np.isfinite(get_function("log")(np.array([-1.0, 0.0, 2.0]))).all()
        assert np.isfinite(get_function("sqrt")(np.array([-4.0]))).all()

    def test_wrong_arity(self):
        with pytest.raises(BaselineError):
            get_function("add")(np.ones(3))

    def test_list_functions_sorted_and_stable(self):
        names = [fn.name for fn in list_functions()]
        assert names == sorted(names)


class TestExpressionTree:
    def test_evaluation_matches_formula(self, rng):
        # (x0 - x1) / x2
        tree = ExpressionTree(
            FunctionNode(get_function("div"), [
                FunctionNode(get_function("sub"), [FeatureTerminal(0), FeatureTerminal(1)]),
                FeatureTerminal(2),
            ])
        )
        terminals = rng.normal(size=(5, 7, 3)) + 3.0
        expected = (terminals[..., 0] - terminals[..., 1]) / terminals[..., 2]
        np.testing.assert_allclose(tree.evaluate(terminals), expected, rtol=1e-9)

    def test_constant_terminal(self):
        tree = ExpressionTree(ConstantTerminal(2.5))
        result = tree.evaluate(np.zeros((4, 3, 2)))
        np.testing.assert_allclose(result, 2.5)
        assert result.shape == (4, 3)

    def test_render(self):
        tree = ExpressionTree(
            FunctionNode(get_function("add"), [FeatureTerminal(0, "close"),
                                               ConstantTerminal(1.0)])
        )
        assert tree.render() == "(close + 1)"

    def test_size_and_depth(self):
        tree = ExpressionTree(
            FunctionNode(get_function("neg"), [
                FunctionNode(get_function("add"), [FeatureTerminal(0), FeatureTerminal(1)])
            ])
        )
        assert tree.size() == 4
        assert tree.depth() == 3

    def test_copy_is_deep(self):
        tree = ExpressionTree(
            FunctionNode(get_function("add"), [FeatureTerminal(0), FeatureTerminal(1)])
        )
        clone = tree.copy()
        clone.root.operands[0] = ConstantTerminal(9.0)
        assert isinstance(tree.root.operands[0], FeatureTerminal)

    def test_random_tree_properties(self):
        for seed in range(10):
            tree = random_tree(num_features=13, max_depth=5, seed=seed)
            assert tree.depth() <= 5 + 1
            assert tree.size() >= 2

    def test_random_tree_invalid_args(self):
        with pytest.raises(BaselineError):
            random_tree(0)
        with pytest.raises(BaselineError):
            random_tree(5, max_depth=0)

    def test_nodes_and_replace(self):
        tree = ExpressionTree(
            FunctionNode(get_function("add"), [FeatureTerminal(0), FeatureTerminal(1)])
        )
        nodes = tree.nodes()
        assert len(nodes) == 3
        tree.replace_node(None, 0, ConstantTerminal(1.0))
        assert isinstance(tree.root, ConstantTerminal)


class TestGeneticConfig:
    def test_probabilities_must_not_exceed_one(self):
        with pytest.raises(BaselineError):
            GeneticConfig(crossover_prob=0.9, subtree_mutation_prob=0.2)

    def test_budget_required(self):
        with pytest.raises(BaselineError):
            GeneticConfig(max_candidates=None, max_seconds=None)

    def test_paper_defaults(self):
        config = GeneticConfig()
        assert config.crossover_prob == pytest.approx(0.4)
        assert config.subtree_mutation_prob == pytest.approx(0.01)
        assert config.hoist_mutation_prob == pytest.approx(0.0)
        assert config.point_mutation_prob == pytest.approx(0.01)
        assert config.point_replace_prob == pytest.approx(0.4)


class TestGeneticAlphaMiner:
    def make_miner(self, taskset, max_candidates=200, correlation_filter=None, seed=0):
        return GeneticAlphaMiner(
            taskset,
            GeneticConfig(population_size=20, tournament_size=5,
                          max_candidates=max_candidates),
            correlation_filter=correlation_filter,
            backtest_engine=BacktestEngine(taskset, long_k=5, short_k=5),
            seed=seed,
        )

    def test_run_respects_budget(self, small_taskset):
        miner = self.make_miner(small_taskset, max_candidates=100)
        result = miner.run()
        assert result.evaluations <= 120  # one final generation may finish
        assert result.best.fitness > INVALID_FITNESS

    def test_history_is_monotone(self, small_taskset):
        result = self.make_miner(small_taskset, max_candidates=150).run()
        assert result.history == sorted(result.history)

    def test_better_than_random_guess(self, small_taskset):
        result = self.make_miner(small_taskset, max_candidates=300).run()
        assert result.best.fitness > 0.0

    def test_deterministic_given_seed(self, small_taskset):
        a = self.make_miner(small_taskset, max_candidates=100, seed=5).run()
        b = self.make_miner(small_taskset, max_candidates=100, seed=5).run()
        assert a.best.tree.render() == b.best.tree.render()
        assert a.best.fitness == pytest.approx(b.best.fitness)

    def test_correlation_filter_discards_clones(self, small_taskset):
        engine = BacktestEngine(small_taskset, long_k=5, short_k=5)
        labels = small_taskset.split_labels("valid")
        correlation_filter = CorrelationFilter()
        # Register the oracle portfolio as an existing alpha.
        correlation_filter.add_reference(
            "oracle", engine.portfolio.returns(labels, labels)
        )
        miner = GeneticAlphaMiner(
            small_taskset,
            GeneticConfig(population_size=10, tournament_size=3, max_candidates=30),
            correlation_filter=correlation_filter,
            backtest_engine=engine,
            seed=1,
        )
        # A tree that predicts the label-like close feature strongly correlates
        # with the oracle and must be discarded.
        strong = miner.run().best
        assert strong.fitness > INVALID_FITNESS or strong.valid_predictions is not None

    def test_evaluate_tree_shapes(self, small_taskset):
        miner = self.make_miner(small_taskset, max_candidates=50)
        tree = random_tree(miner.num_terminal_features, seed=0)
        predictions = miner.evaluate_tree(tree, "test")
        assert predictions.shape == (small_taskset.split.test, small_taskset.num_tasks)
